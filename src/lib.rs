//! # cms — Collective, Probabilistic Schema-Mapping Selection
//!
//! A from-scratch Rust reproduction of Kimmig, Memory, Miller & Getoor,
//! *"A Collective, Probabilistic Approach to Schema Mapping"* (ICDE 2017).
//!
//! Given a source schema, a target schema, a data example `(I, J)`, and a
//! set of candidate st tgds (generated Clio-style from attribute
//! correspondences), the library selects the subset that best explains the
//! data example — trading off unexplained target tuples, invented target
//! tuples, and mapping size — by MAP inference in a hinge-loss Markov
//! random field (probabilistic soft logic), with exact and heuristic
//! baselines for comparison.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`obs`] | `cms-obs` | telemetry: spans, metrics registry, event journal |
//! | [`data`] | `cms-data` | schemas, instances, labeled nulls, homomorphisms |
//! | [`tgd`] | `cms-tgd` | st tgds, conjunctive matching, the chase |
//! | [`psl`] | `cms-psl` | a full PSL/HL-MRF engine with ADMM MAP inference |
//! | [`candgen`] | `cms-candgen` | Clio-style candidate generation |
//! | [`ibench`] | `cms-ibench` | iBench-style scenario + noise generation |
//! | [`select`] | `cms-select` | the selection objective, selectors, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use cms::prelude::*;
//!
//! // Schemas for the paper's running example.
//! let mut src = Schema::new("s");
//! src.add_relation("proj", &["name", "code", "firm"]);
//! src.add_relation("team", &["pcode", "emp"]);
//! let mut tgt = Schema::new("t");
//! tgt.add_relation("task", &["pname", "emp", "oid"]);
//! tgt.add_relation("org", &["oid", "firm"]);
//!
//! // Candidate mappings (θ1 and θ3 of the paper).
//! let theta1 = parse_tgd("proj(x,c,f) & team(c,e) -> task(x,e,o)", &src, &tgt).unwrap();
//! let theta3 = parse_tgd("proj(x,c,f) & team(c,e) -> task(x,e,o) & org(o,f)", &src, &tgt).unwrap();
//!
//! // A data example. (With too little data the empty mapping wins — the
//! // paper's overfitting guard — so give it a handful of projects.)
//! let mut i = Instance::new();
//! let mut j = Instance::new();
//! i.insert_ground(src.rel_id("team").unwrap(), &["9", "Alice"]);
//! j.insert_ground(tgt.rel_id("org").unwrap(), &["111", "SAP"]);
//! for name in ["ML", "NLP", "Search", "Vision", "Infra", "Mobile"] {
//!     i.insert_ground(src.rel_id("proj").unwrap(), &[name, "9", "SAP"]);
//!     j.insert_ground(tgt.rel_id("task").unwrap(), &[name, "Alice", "111"]);
//! }
//!
//! // Select collectively with PSL.
//! let model = CoverageModel::build(&i, &j, &[theta1, theta3]);
//! let selection = PslCollective::default()
//!     .select(&model, &ObjectiveWeights::unweighted())
//!     .expect("the CMS program grounds cleanly");
//! assert_eq!(selection.selected, vec![1], "θ3 explains the join evidence");
//! ```

#![forbid(unsafe_code)]

pub use cms_candgen as candgen;
pub use cms_data as data;
pub use cms_ibench as ibench;
pub use cms_obs as obs;
pub use cms_psl as psl;
pub use cms_select as select;
pub use cms_tgd as tgd;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use cms_candgen::{corr, generate_candidates, CandGenConfig, Correspondence};
    pub use cms_data::{
        homomorphic, pattern_multiset, tuple_match, AttrRef, ForeignKey, Instance, NullFactory,
        RelId, Schema, Sym, Tuple, TuplePattern, Value,
    };
    pub use cms_ibench::{
        generate, ground_instance, DataNoiseReport, NoiseConfig, Primitive, Scenario,
        ScenarioConfig,
    };
    pub use cms_psl::{AdmmConfig, GroundAtom, Program, RuleBuilder, Vocabulary};
    pub use cms_select::{
        build_reduction, data_prf, evaluate_scenario, mapping_prf, preprocess, BranchBound,
        CoverageModel, Exhaustive, FixedSelection, Greedy, IndependentBaseline, LocalSearch,
        Objective, ObjectiveWeights, Prf, PslCollective, Selection, SelectionOutcome, Selector,
        SetCoverInstance,
    };
    pub use cms_tgd::{
        chase, chase_one, parse_tgd, var, ChaseEngine, ChaseError, ChaseStats, StTgd, TgdBuilder,
    };
}

//! End-to-end equivalence of delta regrounding against full grounding on
//! the real programs the pipeline produces for seeded iBench scenarios —
//! the same harness as `tests/grounding_equivalence.rs`, but driving
//! mutation sequences through `Program::reground` instead of comparing
//! engines on a fixed database.
//!
//! Two program shapes are exercised:
//!
//! * the **selection-evaluation** program (`cms_select::relaxation`),
//!   where `inMap` is observed and a local-search move is a single value
//!   flip — the regrounder's seeded fast path;
//! * the **declarative** collective program, where `covers`/`creates`
//!   observations are re-weighted, added, and retracted — value and pool
//!   deltas through logical *and* arithmetic rules.

use cms::prelude::*;
use cms_psl::GroundProgram;
use cms_select::build_eval_program;

fn assert_equivalent(label: &str, incremental: &GroundProgram, fresh: &GroundProgram) {
    assert_eq!(
        incremental.canonical_terms(),
        fresh.canonical_terms(),
        "{label}: reground diverged from full ground"
    );
    assert!(
        (incremental.constant_loss - fresh.constant_loss).abs() < 1e-9,
        "{label}: constant loss {} vs {}",
        incremental.constant_loss,
        fresh.constant_loss
    );
}

/// Tiny deterministic generator (no external RNG needed here).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

#[test]
fn flip_sequences_on_eval_programs_match_full_grounding() {
    for (invocations, seed) in [(1usize, 1u64), (2, 3)] {
        let config = ScenarioConfig {
            rows_per_relation: 10,
            noise: NoiseConfig::uniform(25.0),
            seed,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let weights = ObjectiveWeights::unweighted();
        let (mut program, preds) = build_eval_program(&model, &weights, &[]);
        let mut prior = program.ground().expect("eval program grounds");
        let _ = program.db.take_delta();

        let mut rng = Lcg(seed ^ 0xC0FFEE);
        let mut reused_total = 0usize;
        for step in 0..12 {
            let c = rng.next(model.num_candidates);
            let on = step % 3 != 2;
            program.db.observe(
                cms_psl::GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")]),
                f64::from(u8::from(on)),
            );
            let delta = program.db.take_delta();
            assert!(
                !delta.pools_changed(),
                "flips must be value-only deltas (fast path)"
            );
            prior = program
                .reground_owned(prior, &delta)
                .expect("reground succeeds");
            let fresh = program.ground().expect("full ground succeeds");
            assert_equivalent(
                &format!("inv={invocations} seed={seed} step={step} flip c{c}={on}"),
                &prior,
                &fresh,
            );
            reused_total += prior.total_stats().terms_reused;
        }
        assert!(
            reused_total > 0,
            "inv={invocations} seed={seed}: flips never reused a term"
        );
    }
}

#[test]
fn mutation_sequences_on_declarative_programs_match_full_grounding() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 7,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let selector = PslCollective::default();
    let (mut program, _) =
        selector.build_declarative_program(&model, &ObjectiveWeights::unweighted());
    let covers = program.vocab.id_of("covers").expect("covers predicate");
    let creates = program.vocab.id_of("creates").expect("creates predicate");

    let mut prior = program.ground().expect("declarative program grounds");
    let _ = program.db.take_delta();
    let mut rng = Lcg(0xDECADE);
    for step in 0..10 {
        match step % 4 {
            // Re-weight an existing covers observation (value-only delta
            // through the arithmetic explain-cap rule).
            0 | 1 => {
                let pool = program.db.atoms_of(covers).to_vec();
                if pool.is_empty() {
                    continue;
                }
                let atom = pool[rng.next(pool.len())].clone();
                let v = 0.1 * rng.next(11) as f64;
                program.db.observe(atom, v);
            }
            // Add a brand-new creates edge (pool delta through the
            // error-link join rule).
            2 => {
                let atom = cms_psl::GroundAtom::from_strs(
                    creates,
                    &[&format!("c{}", rng.next(model.num_candidates)), "g0"],
                );
                if program.db.observed_value(&atom).is_none() {
                    program.db.observe(atom, 1.0);
                }
            }
            // Retract a covers observation (pool delta).
            _ => {
                let pool = program.db.atoms_of(covers).to_vec();
                if pool.is_empty() {
                    continue;
                }
                let atom = pool[rng.next(pool.len())].clone();
                program.db.retract(&atom);
            }
        }
        let delta = program.db.take_delta();
        prior = program
            .reground_owned(prior, &delta)
            .expect("reground succeeds");
        let fresh = program.ground().expect("full ground succeeds");
        assert_equivalent(&format!("declarative step={step}"), &prior, &fresh);
    }
}

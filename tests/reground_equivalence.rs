//! End-to-end equivalence of delta regrounding against full grounding on
//! the real programs the pipeline produces for seeded iBench scenarios —
//! the same harness as `tests/grounding_equivalence.rs`, but driving
//! mutation sequences through `Program::reground` instead of comparing
//! engines on a fixed database.
//!
//! Two program shapes are exercised:
//!
//! * the **selection-evaluation** program (`cms_select::relaxation`),
//!   where `inMap` is observed and a local-search move is a single value
//!   flip — the regrounder's seeded fast path;
//! * the **declarative** collective program, where `covers`/`creates`
//!   observations are re-weighted, added, and retracted — value and pool
//!   deltas through logical *and* arithmetic rules.

use cms::prelude::*;
use cms_psl::{DualState, GroundProgram};
use cms_select::build_eval_program;

fn assert_equivalent(label: &str, incremental: &GroundProgram, fresh: &GroundProgram) {
    assert_eq!(
        incremental.canonical_terms(),
        fresh.canonical_terms(),
        "{label}: reground diverged from full ground"
    );
    assert!(
        (incremental.constant_loss - fresh.constant_loss).abs() < 1e-9,
        "{label}: constant loss {} vs {}",
        incremental.constant_loss,
        fresh.constant_loss
    );
}

/// Tiny deterministic generator (no external RNG needed here).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

#[test]
fn flip_sequences_on_eval_programs_match_full_grounding() {
    for (invocations, seed) in [(1usize, 1u64), (2, 3)] {
        let config = ScenarioConfig {
            rows_per_relation: 10,
            noise: NoiseConfig::uniform(25.0),
            seed,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let weights = ObjectiveWeights::unweighted();
        let (mut program, preds) = build_eval_program(&model, &weights, &[]);
        let mut prior = program.ground().expect("eval program grounds");
        let _ = program.db.take_delta();

        let mut rng = Lcg(seed ^ 0xC0FFEE);
        let mut reused_total = 0usize;
        for step in 0..12 {
            let c = rng.next(model.num_candidates);
            let on = step % 3 != 2;
            program.db.observe(
                cms_psl::GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")]),
                f64::from(u8::from(on)),
            );
            let delta = program.db.take_delta();
            assert!(
                !delta.pools_changed(),
                "flips must be value-only deltas (fast path)"
            );
            prior = program
                .reground_owned(prior, &delta)
                .expect("reground succeeds");
            let fresh = program.ground().expect("full ground succeeds");
            assert_equivalent(
                &format!("inv={invocations} seed={seed} step={step} flip c{c}={on}"),
                &prior,
                &fresh,
            );
            reused_total += prior.total_stats().terms_reused;
        }
        assert!(
            reused_total > 0,
            "inv={invocations} seed={seed}: flips never reused a term"
        );
    }
}

/// Warm-dual reuse: after a value-only reground, every term the splice
/// left unchanged must keep its scaled-dual vector bit-for-bit, while
/// recomputed terms start cold — and the resumed solve must land on the
/// same optimum as a cold solve of the new program.
#[test]
fn spliced_terms_retain_duals_across_reground() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 1,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let weights = ObjectiveWeights::unweighted();
    let (mut program, preds) = build_eval_program(&model, &weights, &[]);
    let prior = program.ground().expect("eval program grounds");
    let _ = program.db.take_delta();
    let admm = AdmmConfig::default();
    let (cold, duals0) = prior.solve_warm_dual(&admm, &[], None);
    assert!(cold.admm.converged);
    assert_eq!(duals0.potential_duals().len(), prior.potentials.len());
    assert_eq!(duals0.constraint_duals().len(), prior.constraints.len());

    // Flip a candidate that actually covers something so the reground has
    // dirty terms to recompute.
    let c = (0..model.num_candidates)
        .find(|&c| !model.covers[c].is_empty())
        .expect("some candidate covers a target");
    program.db.observe(
        cms_psl::GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")]),
        1.0,
    );
    let delta = program.db.take_delta();
    assert!(!delta.pools_changed(), "flips are value-only deltas");
    let incremental = program.reground(&prior, &delta).unwrap();
    let carried = incremental
        .carry_duals(&duals0)
        .expect("regrounds carry a term-identity map");

    // The clean `explain-reward` rule is the first segment of the term
    // pool both before and after the reground, so its potentials sit at
    // identical indices: their duals must transfer bit-for-bit.
    let er_terms = incremental
        .potentials
        .iter()
        .take_while(|p| p.origin == "explain-reward")
        .count();
    assert!(er_terms > 0, "expected explain-reward potentials up front");
    for i in 0..er_terms {
        assert!(
            !carried.potential_duals()[i].is_empty(),
            "spliced potential {i} lost its duals"
        );
        assert_eq!(
            carried.potential_duals()[i],
            duals0.potential_duals()[i],
            "spliced potential {i} must keep its dual vector exactly"
        );
    }
    // Some terms were recomputed (they touch the flipped atom) and must
    // start cold; everything else carried over.
    let total = incremental.potentials.len() + incremental.constraints.len();
    let seeded = carried.seeded_terms();
    assert!(seeded > 0, "no duals carried at all");
    assert!(
        seeded < total,
        "the flip must have recomputed at least one term ({seeded} of {total} seeded)"
    );

    // Resuming from consensus + carried duals reaches the same optimum as
    // a cold solve of the new program, in no more iterations than the
    // consensus-only warm start.
    let consensus_only = incremental.solve_warm(&admm, &cold.admm.values);
    let (resumed, _) = incremental.solve_warm_dual(&admm, &cold.admm.values, Some(&carried));
    let fresh = incremental.solve(&admm);
    assert!(resumed.admm.converged);
    assert!(
        (resumed.total_objective() - fresh.total_objective()).abs() < 1e-3,
        "resumed {} vs cold {}",
        resumed.total_objective(),
        fresh.total_objective()
    );
    assert!(
        resumed.admm.iterations <= consensus_only.admm.iterations,
        "dual-seeded warm solve took {} iterations, consensus-only took {}",
        resumed.admm.iterations,
        consensus_only.admm.iterations
    );
}

/// Over an `all_primitives(4)` flip sequence, carrying the duals across
/// every reground must never need more ADMM iterations in total than
/// consensus-only warm starts, and both must track the same objectives.
#[test]
fn warm_dual_flip_sequences_use_no_more_iterations_than_consensus_only() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 3,
        ..ScenarioConfig::all_primitives(4)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let weights = ObjectiveWeights::unweighted();
    let (mut program, preds) = build_eval_program(&model, &weights, &[]);
    let mut ground = program.ground().expect("eval program grounds");
    let _ = program.db.take_delta();
    let admm = AdmmConfig::default();
    let (cold, mut duals) = ground.solve_warm_dual(&admm, &[], None);
    let mut values_consensus = cold.admm.values.clone();
    let mut values_dual = cold.admm.values;

    let mut rng = Lcg(0xF11B5);
    let mut iters_consensus = 0usize;
    let mut iters_dual = 0usize;
    for step in 0..10 {
        let c = rng.next(model.num_candidates);
        let on = step % 3 != 2;
        program.db.observe(
            cms_psl::GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")]),
            f64::from(u8::from(on)),
        );
        let delta = program.db.take_delta();
        if delta.is_empty() {
            continue;
        }
        ground = program.reground_owned(ground, &delta).expect("regrounds");

        let consensus_only = ground.solve_warm(&admm, &values_consensus);
        iters_consensus += consensus_only.admm.iterations;
        values_consensus.clone_from(&consensus_only.admm.values);

        let carried = ground.carry_duals(&duals).expect("reuse map present");
        let (resumed, next_duals) = ground.solve_warm_dual(&admm, &values_dual, Some(&carried));
        iters_dual += resumed.admm.iterations;
        values_dual.clone_from(&resumed.admm.values);
        duals = next_duals;

        assert!(
            (resumed.total_objective() - consensus_only.total_objective()).abs() < 1e-2,
            "step {step}: dual-warm {} vs consensus-warm {}",
            resumed.total_objective(),
            consensus_only.total_objective()
        );
    }
    assert!(iters_dual > 0 && iters_consensus > 0);
    assert!(
        iters_dual <= iters_consensus,
        "dual reuse took {iters_dual} total iterations, consensus-only took {iters_consensus}"
    );
}

/// The retraction path: `Removed` deltas shift pool positions, invalidate
/// the argument-position index, and force per-source regrounds — the
/// result must still match a fresh grounding, and sources whose predicates
/// were untouched must still splice.
#[test]
fn removed_deltas_invalidate_index_and_match_fresh_ground() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 5,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let selector = PslCollective::default();
    let (mut program, _) =
        selector.build_declarative_program(&model, &ObjectiveWeights::unweighted());
    let covers = program.vocab.id_of("covers").expect("covers predicate");
    let creates = program.vocab.id_of("creates").expect("creates predicate");

    let mut prior = program.ground().expect("declarative program grounds");
    let _ = program.db.take_delta();
    let (_, duals) = prior.solve_warm_dual(&AdmmConfig::default(), &[], None);

    // Retract two covers observations: the arith explain-cap rule must
    // re-ground, the error-link join rule must splice untouched.
    program.db.ensure_index();
    assert!(
        program.db.index_stamp().is_some(),
        "index built before the retraction"
    );
    let pool = program.db.atoms_of(covers).to_vec();
    assert!(pool.len() >= 2, "scenario must have covers atoms");
    assert!(program.db.retract(&pool[0]));
    assert!(program.db.retract(&pool[pool.len() - 1]));
    assert!(
        program.db.index_stamp().is_none(),
        "retraction must invalidate the argument-position index"
    );
    let delta = program.db.take_delta();
    assert!(delta.pools_changed());
    assert!(delta
        .entries()
        .iter()
        .all(|e| matches!(e.kind, cms_psl::DeltaKind::Removed)));
    prior = program.reground_owned(prior, &delta).expect("regrounds");
    let fresh = program.ground().expect("full ground succeeds");
    assert_equivalent("retract covers ×2", &prior, &fresh);
    assert_eq!(
        prior.rule_stats["error-link"].terms_recomputed, 0,
        "error-link does not depend on covers and must splice"
    );
    // explain-cap depends on covers, but the per-binding splice table
    // means only the bindings the retracted atoms fed are re-folded (or
    // compacted out if they vanished) — the rest splice unchanged.
    assert!(
        prior.rule_stats["explain-cap"].arith_bindings_spliced > 0,
        "untouched explain-cap bindings must splice through a retraction: {:?}",
        prior.rule_stats["explain-cap"]
    );
    assert!(
        prior.rule_stats["explain-cap"].terms_reused > 0,
        "spliced explain-cap bindings must reuse their terms"
    );
    // Even through a pool delta, the clean sources keep dual identity.
    let carried = prior.carry_duals(&duals).expect("reuse map present");
    assert!(
        carried.seeded_terms() > 0,
        "clean segments must carry duals through a retraction"
    );

    // Retract a creates edge: now the error-link join rule re-grounds.
    let pool = program.db.atoms_of(creates).to_vec();
    assert!(!pool.is_empty(), "scenario must have creates atoms");
    assert!(program.db.retract(&pool[0]));
    let delta = program.db.take_delta();
    prior = program.reground_owned(prior, &delta).expect("regrounds");
    let fresh = program.ground().expect("full ground succeeds");
    assert_equivalent("retract creates", &prior, &fresh);
    assert!(
        prior.rule_stats["error-link"].terms_reused == 0,
        "error-link depends on creates and must re-ground"
    );

    // Mixed delta: re-add one retracted atom and retract another in the
    // same batch (Added + Removed entries in one DbDelta).
    let pool = program.db.atoms_of(covers).to_vec();
    program.db.observe(pool[0].clone(), 0.9); // value change on survivor
    program
        .db
        .observe(cms_psl::GroundAtom::from_strs(covers, &["c0", "t0"]), 0.7);
    let last = pool[pool.len() - 1].clone();
    program.db.retract(&last);
    let delta = program.db.take_delta();
    assert!(delta.pools_changed());
    prior = program.reground_owned(prior, &delta).expect("regrounds");
    let fresh = program.ground().expect("full ground succeeds");
    assert_equivalent("mixed add/remove/change", &prior, &fresh);

    // A chain of retractions down to (nearly) empty pools stays coherent.
    for _ in 0..3 {
        let pool = program.db.atoms_of(covers).to_vec();
        let Some(atom) = pool.first() else { break };
        program.db.retract(&atom.clone());
        let delta = program.db.take_delta();
        prior = program.reground_owned(prior, &delta).expect("regrounds");
    }
    let fresh = program.ground().expect("full ground succeeds");
    assert_equivalent("retraction chain", &prior, &fresh);
}

/// Dual state survives use via the high-level selector plumbing too: a
/// `DualState` round-trips through `carry_duals` as a no-op when nothing
/// changed (every term maps to itself after an untouched-value write).
#[test]
fn dual_state_roundtrips_through_noop_regrounds() {
    let config = ScenarioConfig {
        rows_per_relation: 8,
        noise: NoiseConfig::uniform(25.0),
        seed: 2,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let weights = ObjectiveWeights::unweighted();
    let (mut program, preds) = build_eval_program(&model, &weights, &[]);
    let prior = program.ground().expect("grounds");
    let _ = program.db.take_delta();
    let (_, duals) = prior.solve_warm_dual(&AdmmConfig::default(), &[], None);

    // Flip a candidate on and back off: the chained reground returns to a
    // program of identical shape; the carried duals must stay aligned
    // (same term count) through both steps.
    let atom = cms_psl::GroundAtom::from_strs(preds.in_map, &["c0"]);
    program.db.observe(atom.clone(), 1.0);
    let d1 = program.db.take_delta();
    let mid = program.reground(&prior, &d1).unwrap();
    let carried1: DualState = mid.carry_duals(&duals).unwrap();
    assert_eq!(carried1.potential_duals().len(), mid.potentials.len());
    assert_eq!(carried1.constraint_duals().len(), mid.constraints.len());

    program.db.observe(atom, 0.0);
    let d2 = program.db.take_delta();
    let back = program.reground_owned(mid, &d2).unwrap();
    let carried2 = back.carry_duals(&carried1).unwrap();
    assert_eq!(carried2.potential_duals().len(), back.potentials.len());
    assert_eq!(carried2.constraint_duals().len(), back.constraints.len());
    let (sol, _) = back.solve_warm_dual(&AdmmConfig::default(), &[], Some(&carried2));
    assert!(sol.admm.converged);
    let fresh = back.solve(&AdmmConfig::default());
    assert!(
        (sol.total_objective() - fresh.total_objective()).abs() < 1e-3,
        "warm {} vs cold {}",
        sol.total_objective(),
        fresh.total_objective()
    );
}

/// The arithmetic splice table: a value-only delta on a
/// summation-contributing atom must re-fold only the free bindings that
/// atom feeds — every other binding splices byte-identically and keeps its
/// ADMM scaled duals bit-for-bit.
#[test]
fn arith_value_flips_splice_per_binding_and_retain_duals() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 4,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let selector = PslCollective::default();
    let (mut program, _) =
        selector.build_declarative_program(&model, &ObjectiveWeights::unweighted());
    let covers = program.vocab.id_of("covers").expect("covers predicate");

    let prior = program.ground().expect("declarative program grounds");
    let _ = program.db.take_delta();
    let cap_bindings = prior.rule_stats["explain-cap"].substitutions;
    assert!(cap_bindings > 1, "need several explain-cap bindings");
    let (_, duals0) = prior.solve_warm_dual(&AdmmConfig::default(), &[], None);

    // Re-weight one covers observation: a value-only delta through the
    // explain-cap summation.
    let atom = program.db.atoms_of(covers)[0].clone();
    let old = program.db.observed_value(&atom).expect("covers observed");
    let new = if old > 0.5 { old - 0.45 } else { old + 0.45 };
    program.db.observe(atom.clone(), new);
    let delta = program.db.take_delta();
    assert_eq!(delta.len(), 1, "the re-weight must log one Changed entry");
    assert!(!delta.pools_changed(), "re-weights are value-only deltas");

    let incremental = program.reground(&prior, &delta).expect("regrounds");
    let fresh = program.ground().expect("full ground succeeds");
    assert_equivalent("covers re-weight", &incremental, &fresh);

    let cap = &incremental.rule_stats["explain-cap"];
    assert!(
        cap.terms_recomputed > 0,
        "the mutated atom's binding must re-fold: {cap:?}"
    );
    assert!(
        cap.arith_bindings_spliced > 0,
        "untouched bindings must splice: {cap:?}"
    );
    assert_eq!(
        cap.arith_bindings_spliced + cap.terms_recomputed,
        cap_bindings,
        "explain-cap is hard (one constraint per binding), so spliced + \
         re-folded bindings must cover the segment: {cap:?}"
    );
    // The size-prior arith rule does not depend on covers: wholesale splice.
    let sp = &incremental.rule_stats["size-prior"];
    assert_eq!(sp.terms_recomputed, 0, "size-prior must splice: {sp:?}");

    // Value-only regrounds keep every term's position, so the carried
    // duals line up index-for-index: spliced terms keep their vectors
    // bit-for-bit, re-folded ones start cold (empty).
    assert_eq!(incremental.constraints.len(), prior.constraints.len());
    assert_eq!(incremental.potentials.len(), prior.potentials.len());
    let carried = incremental
        .carry_duals(&duals0)
        .expect("regrounds carry a term-identity map");
    let mut kept = 0usize;
    let mut cold = 0usize;
    for (i, d) in carried.constraint_duals().iter().enumerate() {
        if d.is_empty() {
            cold += 1;
        } else {
            assert_eq!(
                d,
                &duals0.constraint_duals()[i],
                "spliced constraint {i} must keep its dual vector exactly"
            );
            kept += 1;
        }
    }
    for (i, d) in carried.potential_duals().iter().enumerate() {
        if !d.is_empty() {
            assert_eq!(
                d,
                &duals0.potential_duals()[i],
                "spliced potential {i} must keep its dual vector exactly"
            );
        }
    }
    assert!(kept > 0, "untouched arith bindings must carry duals");
    assert_eq!(
        cold, cap.terms_recomputed,
        "exactly the re-folded bindings start cold"
    );

    // An added covers atom (pool delta) still splices the untouched
    // bindings: new bindings ground fresh, surviving unaffected ones keep
    // their terms.
    let new_atom = (0..model.num_candidates)
        .flat_map(|c| (0..model.num_targets()).map(move |t| (c, t)))
        .map(|(c, t)| cms_psl::GroundAtom::from_strs(covers, &[&format!("c{c}"), &format!("t{t}")]))
        .find(|a| program.db.observed_value(a).is_none())
        .expect("some covers pair is unobserved");
    program.db.observe(new_atom, 0.6);
    let delta = program.db.take_delta();
    assert!(delta.pools_changed());
    let incremental = program
        .reground_owned(incremental, &delta)
        .expect("regrounds");
    let fresh = program.ground().expect("full ground succeeds");
    assert_equivalent("covers add", &incremental, &fresh);
    let cap = &incremental.rule_stats["explain-cap"];
    assert!(
        cap.arith_bindings_spliced > 0,
        "a pool delta must still splice the bindings the added atom cannot \
         reach: {cap:?}"
    );
}

/// Batch-vs-sequential: applying a mutation stream as coalesced batches
/// (all writes land in ONE drained delta per batch, one reground serves
/// them all) must land on exactly the same ground program as draining and
/// regrounding after every single mutation — on the declarative program,
/// so the batches mix value re-weights, pool adds, retractions, and an
/// injected a→b→a round-trip that must coalesce away.
#[test]
fn batched_regrounds_match_sequential_regrounds() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 9,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let selector = PslCollective::default();
    let weights = ObjectiveWeights::unweighted();
    // Two identically-built programs: one regrounds per mutation, the
    // other per batch. Their databases start equal, so index-based op
    // picks resolve to the same atoms in both.
    let (mut seq_prog, _) = selector.build_declarative_program(&model, &weights);
    let (mut bat_prog, _) = selector.build_declarative_program(&model, &weights);
    let covers = seq_prog.vocab.id_of("covers").expect("covers predicate");
    let creates = seq_prog.vocab.id_of("creates").expect("creates predicate");
    let mut seq = seq_prog.ground().expect("grounds");
    let mut bat = bat_prog.ground().expect("grounds");
    let _ = seq_prog.db.take_delta();
    let _ = bat_prog.db.take_delta();

    // (kind, pick, value) ops; `pick` resolves against the live pool, and
    // kind 3 writes a→b→a — two raw entries with zero net effect.
    let apply = |program: &mut cms_psl::Program, (kind, pick, v): (usize, usize, f64)| match kind {
        0 => {
            let pool = program.db.atoms_of(covers).to_vec();
            if !pool.is_empty() {
                program.db.observe(pool[pick % pool.len()].clone(), v);
            }
        }
        1 => {
            let atom = cms_psl::GroundAtom::from_strs(
                creates,
                &[&format!("c{}", pick % model.num_candidates), "g0"],
            );
            program.db.observe(atom, 1.0);
        }
        2 => {
            let pool = program.db.atoms_of(covers).to_vec();
            if !pool.is_empty() {
                program.db.retract(&pool[pick % pool.len()].clone());
            }
        }
        _ => {
            let pool = program.db.atoms_of(covers).to_vec();
            if let Some(atom) = pool.first() {
                let old = program
                    .db
                    .observed_value(atom)
                    .expect("pooled atom observed");
                // Bump away from the clamp boundary so the intermediate
                // write is effective, then restore: two raw entries, zero
                // net effect.
                let bump = if old >= 0.5 { old - 0.05 } else { old + 0.05 };
                program.db.observe(atom.clone(), bump);
                program.db.observe(atom.clone(), old);
            }
        }
    };

    let mut rng = Lcg(0xBA7C4);
    let mut coalesced_total = 0usize;
    for chunk in 0..4 {
        let mut ops: Vec<(usize, usize, f64)> = (0..4)
            .map(|_| (rng.next(3), rng.next(1 << 16), 0.1 * rng.next(11) as f64))
            .collect();
        // Every chunk carries one a→b→a round-trip so coalescing is
        // exercised deterministically.
        ops.push((3, 0, 0.0));
        for &op in &ops {
            apply(&mut seq_prog, op);
            let delta = seq_prog.db.take_delta();
            seq = seq_prog.reground_owned(seq, &delta).expect("seq regrounds");
            apply(&mut bat_prog, op);
        }
        let delta = bat_prog.db.take_delta();
        coalesced_total += delta.raw_entries() - delta.len();
        bat = bat_prog
            .reground_owned(bat, &delta)
            .expect("batch regrounds");
        assert_eq!(
            bat.canonical_terms(),
            seq.canonical_terms(),
            "chunk {chunk}: batched reground diverged from sequential"
        );
        assert_equivalent(
            &format!("chunk {chunk} vs fresh"),
            &bat,
            &bat_prog.ground().expect("full ground succeeds"),
        );
    }
    assert!(
        coalesced_total > 0,
        "the stream must have exercised coalescing"
    );
}

#[test]
fn mutation_sequences_on_declarative_programs_match_full_grounding() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 7,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let selector = PslCollective::default();
    let (mut program, _) =
        selector.build_declarative_program(&model, &ObjectiveWeights::unweighted());
    let covers = program.vocab.id_of("covers").expect("covers predicate");
    let creates = program.vocab.id_of("creates").expect("creates predicate");

    let mut prior = program.ground().expect("declarative program grounds");
    let _ = program.db.take_delta();
    let mut rng = Lcg(0xDECADE);
    for step in 0..10 {
        match step % 4 {
            // Re-weight an existing covers observation (value-only delta
            // through the arithmetic explain-cap rule).
            0 | 1 => {
                let pool = program.db.atoms_of(covers).to_vec();
                if pool.is_empty() {
                    continue;
                }
                let atom = pool[rng.next(pool.len())].clone();
                let v = 0.1 * rng.next(11) as f64;
                program.db.observe(atom, v);
            }
            // Add a brand-new creates edge (pool delta through the
            // error-link join rule).
            2 => {
                let atom = cms_psl::GroundAtom::from_strs(
                    creates,
                    &[&format!("c{}", rng.next(model.num_candidates)), "g0"],
                );
                if program.db.observed_value(&atom).is_none() {
                    program.db.observe(atom, 1.0);
                }
            }
            // Retract a covers observation (pool delta).
            _ => {
                let pool = program.db.atoms_of(covers).to_vec();
                if pool.is_empty() {
                    continue;
                }
                let atom = pool[rng.next(pool.len())].clone();
                program.db.retract(&atom);
            }
        }
        let delta = program.db.take_delta();
        prior = program
            .reground_owned(prior, &delta)
            .expect("reground succeeds");
        let fresh = program.ground().expect("full ground succeeds");
        assert_equivalent(&format!("declarative step={step}"), &prior, &fresh);
    }
}

//! Integration tests for degenerate and boundary inputs — the cases a
//! downstream user will eventually feed the library.

use cms::prelude::*;
use cms::tgd::{core_of, is_core};

fn tiny_schemas() -> (Schema, Schema) {
    let mut src = Schema::new("s");
    src.add_relation("a", &["x", "y"]);
    let mut tgt = Schema::new("t");
    tgt.add_relation("t", &["x", "y"]);
    (src, tgt)
}

#[test]
fn no_candidates_means_empty_selection() {
    let (_, _) = tiny_schemas();
    let mut j = Instance::new();
    j.insert_ground(RelId(0), &["p", "q"]);
    let model = CoverageModel::build(&Instance::new(), &j, &[]);
    let w = ObjectiveWeights::unweighted();
    for selector in all_selectors() {
        let sel = selector.select(&model, &w).expect("selector runs");
        assert!(sel.selected.is_empty(), "{}", selector.name());
        assert!(
            (sel.objective - 1.0).abs() < 1e-9,
            "{}: F = {}",
            selector.name(),
            sel.objective
        );
    }
}

#[test]
fn empty_target_instance_selects_nothing() {
    let (src, tgt) = tiny_schemas();
    let tgd = parse_tgd("a(x, y) -> t(x, y)", &src, &tgt).unwrap();
    let mut i = Instance::new();
    i.insert_ground(RelId(0), &["p", "q"]);
    let model = CoverageModel::build(&i, &Instance::new(), &[tgd]);
    let w = ObjectiveWeights::unweighted();
    for selector in all_selectors() {
        let sel = selector.select(&model, &w).expect("selector runs");
        assert!(
            sel.selected.is_empty(),
            "{} selected {:?}",
            selector.name(),
            sel.selected
        );
        assert_eq!(sel.objective, 0.0, "{}", selector.name());
    }
}

#[test]
fn empty_source_instance_makes_all_candidates_useless() {
    let (src, tgt) = tiny_schemas();
    let tgd = parse_tgd("a(x, y) -> t(x, y)", &src, &tgt).unwrap();
    let mut j = Instance::new();
    j.insert_ground(tgt.rel_id("t").unwrap(), &["p", "q"]);
    let model = CoverageModel::build(&Instance::new(), &j, &[tgd]);
    assert_eq!(model.useless_candidates(), vec![0]);
    let (reduced, report) = cms::select::preprocess(&model);
    assert_eq!(report.certain_unexplained, 1);
    assert_eq!(reduced.num_targets(), 0);
    let sel = PslCollective::default()
        .select(&reduced, &ObjectiveWeights::unweighted())
        .expect("selector runs");
    assert!(sel.selected.is_empty());
}

#[test]
fn single_row_scenario_pipeline_survives() {
    let config = ScenarioConfig {
        rows_per_relation: 1,
        noise: NoiseConfig::uniform(50.0),
        seed: 64,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    assert!(scenario.stats.source_tuples >= 1);
    let outcome =
        evaluate_scenario(&scenario, &Greedy, &ObjectiveWeights::unweighted()).expect("runs");
    // With one row per relation the empty mapping often wins — that is the
    // paper's overfitting guard, not a failure. Just require coherence.
    assert!(outcome.selection.objective.is_finite());
    assert!(outcome.mapping.precision >= 0.0);
}

#[test]
fn join_free_candidate_generation_still_covers_copy_primitives() {
    // max_join_atoms = 1 disables FK closure: VP/VNM gold tgds cannot be
    // produced by candgen (multi-atom heads), so the scenario generator
    // must append them and report it.
    let config = ScenarioConfig {
        candgen: cms::candgen::CandGenConfig {
            max_join_atoms: 1,
            max_alternatives_per_pair: 8,
        },
        seed: 12,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    assert!(
        scenario.stats.gold_missing_from_candgen > 0,
        "join-free candgen cannot rebuild VP/VNM gold"
    );
    // The pipeline is still coherent and gold is selectable.
    let outcome = evaluate_scenario(
        &scenario,
        &FixedSelection::new("gold", scenario.gold.clone()),
        &ObjectiveWeights::unweighted(),
    )
    .expect("runs");
    assert_eq!(outcome.mapping.f1, 1.0);
}

#[test]
fn zero_weight_axes_behave() {
    let (src, tgt) = tiny_schemas();
    let tgd = parse_tgd("a(x, y) -> t(x, y)", &src, &tgt).unwrap();
    let mut i = Instance::new();
    i.insert_ground(RelId(0), &["p", "q"]);
    let mut j = Instance::new();
    j.insert_ground(tgt.rel_id("t").unwrap(), &["p", "q"]);
    let model = CoverageModel::build(&i, &j, &[tgd]);
    // w_size = 0: free mappings — selecting is always at least as good.
    let w = ObjectiveWeights {
        w_explain: 1.0,
        w_error: 1.0,
        w_size: 0.0,
    };
    let sel = BranchBound::default()
        .select(&model, &w)
        .expect("selector runs");
    assert_eq!(sel.selected, vec![0]);
    assert_eq!(sel.objective, 0.0);
    // w_explain = 0: nothing to gain — empty wins.
    let w = ObjectiveWeights {
        w_explain: 0.0,
        w_error: 1.0,
        w_size: 1.0,
    };
    let sel = BranchBound::default()
        .select(&model, &w)
        .expect("selector runs");
    assert!(sel.selected.is_empty());
}

#[test]
fn core_of_chase_outputs_is_equivalent_and_idempotent() {
    let scenario = generate(&ScenarioConfig {
        rows_per_relation: 4,
        seed: 31,
        ..ScenarioConfig::all_primitives(1)
    });
    for tgd in scenario.gold_tgds() {
        let k = chase_one(&scenario.source, tgd);
        let core = core_of(&k);
        assert!(core.total_len() <= k.total_len());
        assert!(cms::data::hom_equivalent(&core, &k));
        assert!(is_core(&core), "core must be a fixpoint");
    }
}

#[test]
fn selection_is_stable_under_candidate_reordering() {
    // Reversing the candidate list must not change the *set* of selected
    // tgds (indices remap but the mapping is the same).
    let scenario = generate(&ScenarioConfig {
        noise: NoiseConfig::uniform(25.0),
        seed: 8,
        ..ScenarioConfig::all_primitives(1)
    });
    let w = ObjectiveWeights::unweighted();
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let fwd = BranchBound::default()
        .select(&model, &w)
        .expect("selector runs");

    let reversed: Vec<StTgd> = scenario.candidates.iter().rev().cloned().collect();
    let model_rev = CoverageModel::build(&scenario.source, &scenario.target, &reversed);
    let rev = BranchBound::default()
        .select(&model_rev, &w)
        .expect("selector runs");
    assert!((fwd.objective - rev.objective).abs() < 1e-9);
    let n = scenario.candidates.len();
    let mut remapped: Vec<usize> = rev.selected.iter().map(|&i| n - 1 - i).collect();
    remapped.sort_unstable();
    assert_eq!(fwd.selected, remapped);
}

fn all_selectors() -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(Exhaustive::default()),
        Box::new(BranchBound::default()),
        Box::new(Greedy),
        Box::new(LocalSearch::default()),
        Box::new(PslCollective::default()),
        Box::new(IndependentBaseline),
    ]
}

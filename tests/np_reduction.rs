//! Integration test: the SET COVER reduction of appendix §III.
//!
//! Verifies — on concrete families — every claim the proof makes: the
//! construction sizes, the closed-form objective, the decision-threshold
//! equivalence, and the weighted generalization.

use cms::prelude::*;
use cms::select::reduction::{closed_form_objective, generic_objective, is_cover_within_bound};

fn instance() -> SetCoverInstance {
    SetCoverInstance {
        universe: 5,
        sets: vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4], vec![1]],
        bound: 2,
    }
}

#[test]
fn construction_is_polynomial_sized() {
    let sc = instance();
    let red = build_reduction(&sc);
    let m = 2 * sc.bound;
    assert_eq!(red.domain_size, m + 1);
    assert_eq!(red.target.total_len(), sc.universe * (m + 1));
    let total_set_elems: usize = sc.sets.iter().map(Vec::len).sum();
    assert_eq!(red.source.total_len(), total_set_elems * (m + 1));
    assert_eq!(red.candidates.len(), sc.sets.len());
    for c in &red.candidates {
        assert!(c.is_full(), "reduction uses full st tgds only");
        assert_eq!(c.size(), 2);
        assert!(c.validate(&red.source_schema, &red.target_schema).is_ok());
    }
}

#[test]
fn closed_form_equals_generic_on_all_subsets() {
    let sc = instance();
    let red = build_reduction(&sc);
    let n = sc.sets.len();
    for subset in 0u32..(1 << n) {
        let sel: Vec<usize> = (0..n).filter(|&b| subset & (1 << b) != 0).collect();
        let closed = closed_form_objective(&sc, &sel);
        let generic = generic_objective(&red, &sel);
        assert!(
            (closed - generic).abs() < 1e-9,
            "subset {sel:?}: closed {closed}, generic {generic}"
        );
    }
}

#[test]
fn decision_threshold_equivalence() {
    // F(M) ≤ 2n  ⟺  M is a cover of size ≤ n, over all subsets.
    let sc = instance();
    let n = sc.sets.len();
    let threshold = 2.0 * sc.bound as f64;
    for subset in 0u32..(1 << n) {
        let sel: Vec<usize> = (0..n).filter(|&b| subset & (1 << b) != 0).collect();
        let f = closed_form_objective(&sc, &sel);
        assert_eq!(
            f <= threshold,
            is_cover_within_bound(&sc, &sel),
            "subset {sel:?} (F = {f})"
        );
    }
}

#[test]
fn exact_solvers_answer_the_decision_problem() {
    // YES instance: {0, 2} covers {0,1,2} ∪ {3,4}.
    let sc = instance();
    let red = build_reduction(&sc);
    let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
    let w = ObjectiveWeights::unweighted();
    for selector in [
        Box::new(Exhaustive::default()) as Box<dyn Selector>,
        Box::new(BranchBound::default()),
    ] {
        let sel = selector.select(&model, &w).expect("selector runs");
        assert!(
            sel.objective <= red.threshold,
            "{} must answer YES (F = {})",
            selector.name(),
            sel.objective
        );
        assert!(is_cover_within_bound(&sc, &sel.selected));
    }

    // NO instance: same sets with bound 1.
    let no = SetCoverInstance {
        bound: 1,
        ..instance()
    };
    let red = build_reduction(&no);
    let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
    let sel = BranchBound::default()
        .select(&model, &w)
        .expect("selector runs");
    assert!(
        sel.objective > red.threshold,
        "bound-1 instance is a NO (F = {})",
        sel.objective
    );
}

#[test]
fn weighted_generalization_preserves_hardness_structure() {
    // The appendix: with weights (w1, w2, w3) and threshold
    // size(θ)·w3·n the same equivalence holds. Check that scaling w3
    // rescales the size term exactly.
    let sc = instance();
    let red = build_reduction(&sc);
    let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
    let w = ObjectiveWeights {
        w_explain: 1.0,
        w_error: 1.0,
        w_size: 3.0,
    };
    let f = Objective::new(&model, w);
    let unit = Objective::new(&model, ObjectiveWeights::unweighted());
    for sel in [vec![0usize], vec![0, 2], vec![1, 3, 4]] {
        let (u, e, s) = unit.components(&sel);
        assert!((f.value(&sel) - (u + e + 3.0 * s)).abs() < 1e-9);
    }
}

#[test]
fn psl_relaxation_recovers_minimum_covers_on_families() {
    // PSL is a relaxation + rounding: not guaranteed optimal, but on these
    // small families it must return covers and be competitive with exact.
    let families = vec![
        instance(),
        SetCoverInstance {
            universe: 6,
            sets: vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![4, 5],
                vec![5, 0],
            ],
            bound: 3,
        },
    ];
    let w = ObjectiveWeights::unweighted();
    for sc in families {
        let red = build_reduction(&sc);
        let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
        let exact = BranchBound::default()
            .select(&model, &w)
            .expect("selector runs");
        let psl = PslCollective::default()
            .select(&model, &w)
            .expect("selector runs");
        assert!(
            psl.objective >= exact.objective - 1e-9,
            "relaxation can't beat exact"
        );
        assert!(
            psl.objective <= exact.objective + 2.0 + 1e-9,
            "PSL must stay within one extra set of optimal: {} vs {}",
            psl.objective,
            exact.objective
        );
        assert!(
            is_cover_within_bound(&sc, &psl.selected),
            "PSL selection must cover"
        );
    }
}

//! Integration test: the PSL relaxation against exact search on scenario
//! batches — the internal consistency the paper's approach rests on.

use cms::prelude::*;

fn small_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for seed in [1u64, 5, 9, 13] {
        out.push(generate(&ScenarioConfig {
            rows_per_relation: 8,
            noise: NoiseConfig::uniform(25.0),
            seed,
            ..ScenarioConfig::all_primitives(1)
        }));
    }
    out
}

#[test]
fn exhaustive_and_branch_bound_always_agree() {
    let w = ObjectiveWeights::unweighted();
    for scenario in small_scenarios() {
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let (reduced, _) = cms::select::preprocess(&model);
        let useful = reduced.useless_candidates().len();
        if reduced.num_candidates - useful > 20 {
            continue; // keep exhaustive tractable
        }
        let ex = Exhaustive {
            max_candidates: Some(20),
        }
        .select(&reduced, &w)
        .expect("selector runs");
        let bb = BranchBound::default()
            .select(&reduced, &w)
            .expect("selector runs");
        assert!(
            (ex.objective - bb.objective).abs() < 1e-9,
            "seed mismatch: exhaustive {} vs B&B {}",
            ex.objective,
            bb.objective
        );
    }
}

#[test]
fn psl_stays_near_exact_across_batch() {
    let w = ObjectiveWeights::unweighted();
    let mut gaps = Vec::new();
    for scenario in small_scenarios() {
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let (reduced, _) = cms::select::preprocess(&model);
        let exact = BranchBound::default()
            .select(&reduced, &w)
            .expect("selector runs");
        let psl = PslCollective::default()
            .select(&reduced, &w)
            .expect("selector runs");
        assert!(psl.objective >= exact.objective - 1e-9);
        let gap = (psl.objective - exact.objective) / exact.objective.max(1.0);
        gaps.push(gap);
    }
    let mean_gap: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!(
        mean_gap < 0.02,
        "mean relative optimality gap of PSL too large: {mean_gap} ({gaps:?})"
    );
}

#[test]
fn relaxed_truths_are_informative() {
    // The relaxation should separate gold from junk candidates: mean
    // relaxed inMap of gold candidates above mean of non-gold.
    let w = ObjectiveWeights::unweighted();
    let scenario = generate(&ScenarioConfig {
        noise: NoiseConfig {
            pi_corresp: 100.0,
            pi_errors: 10.0,
            pi_unexplained: 10.0,
        },
        seed: 21,
        ..ScenarioConfig::all_primitives(1)
    });
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let (reduced, _) = cms::select::preprocess(&model);
    let run = PslCollective::default().infer(&reduced, &w).expect("runs");
    assert!(run.converged, "ADMM must converge on this size");
    let (mut gold_sum, mut other_sum, mut other_n) = (0.0, 0.0, 0usize);
    for (c, &v) in run.relaxed.iter().enumerate() {
        if scenario.gold.contains(&c) {
            gold_sum += v;
        } else {
            other_sum += v;
            other_n += 1;
        }
    }
    let gold_mean = gold_sum / scenario.gold.len() as f64;
    let other_mean = if other_n == 0 {
        0.0
    } else {
        other_sum / other_n as f64
    };
    assert!(
        gold_mean > other_mean + 0.2,
        "relaxation separates gold ({gold_mean:.3}) from junk ({other_mean:.3})"
    );
}

#[test]
fn admm_convergence_within_budget_on_scenario_scale() {
    let w = ObjectiveWeights::unweighted();
    let scenario = generate(&ScenarioConfig {
        noise: NoiseConfig::uniform(50.0),
        seed: 2,
        rows_per_relation: 20,
        ..ScenarioConfig::all_primitives(2)
    });
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let run = PslCollective::default().infer(&model, &w).expect("runs");
    assert!(
        run.converged,
        "did not converge in {} iterations",
        run.iterations
    );
    for &v in &run.relaxed {
        assert!((0.0..=1.0).contains(&v));
    }
}

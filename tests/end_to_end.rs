//! Integration test: the full scenario pipeline — generation, candidate
//! generation, selection, metrics — across primitives and noise settings.

use cms::prelude::*;

#[test]
fn clean_scenarios_recover_gold_per_primitive() {
    // On noise-free scenarios the gold mapping is (one of) the optimal
    // selections; selection must reproduce its exchanged data exactly.
    for p in Primitive::ALL {
        let config = ScenarioConfig {
            rows_per_relation: 12,
            seed: 100 + p as u64,
            ..ScenarioConfig::single_primitive(p, 2)
        };
        let scenario = generate(&config);
        let outcome = evaluate_scenario(
            &scenario,
            &PslCollective::default(),
            &ObjectiveWeights::unweighted(),
        )
        .expect("runs");
        assert!(
            outcome.data.f1 > 0.999,
            "{p}: data F1 = {:?} (selected {:?}, gold {:?})",
            outcome.data,
            outcome.selection.selected,
            scenario.gold
        );
        assert!(
            outcome.selection.objective <= outcome.gold_objective + 1e-9,
            "{p}: selection must be at least as good as gold"
        );
    }
}

#[test]
fn all_primitives_mixed_scenario_under_noise() {
    let config = ScenarioConfig {
        noise: NoiseConfig {
            pi_corresp: 50.0,
            pi_errors: 20.0,
            pi_unexplained: 20.0,
        },
        seed: 4242,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    assert!(scenario.stats.noise_corrs > 0);
    assert!(scenario.stats.data_noise.deleted > 0);
    assert!(scenario.stats.data_noise.added > 0);

    let w = ObjectiveWeights::unweighted();
    let psl = evaluate_scenario(&scenario, &PslCollective::default(), &w).expect("runs");
    let all = evaluate_scenario(
        &scenario,
        &FixedSelection::all(scenario.candidates.len()),
        &w,
    )
    .expect("runs");
    // The collective selection must clearly beat "take everything" on both
    // the objective and mapping quality.
    assert!(psl.selection.objective < all.selection.objective);
    assert!(psl.mapping.f1 > all.mapping.f1);
    assert!(psl.mapping.f1 > 0.6, "mapping F1 = {:?}", psl.mapping);
}

#[test]
fn heuristics_never_beat_exact_and_psl_matches_on_small_scenarios() {
    let config = ScenarioConfig {
        rows_per_relation: 10,
        noise: NoiseConfig::uniform(25.0),
        seed: 7,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let (reduced, _) = cms::select::preprocess(&model);
    let w = ObjectiveWeights::unweighted();

    let exact = BranchBound::default()
        .select(&reduced, &w)
        .expect("selector runs");
    for selector in [
        Box::new(Greedy) as Box<dyn Selector>,
        Box::new(LocalSearch::default()),
        Box::new(PslCollective::default()),
        Box::new(IndependentBaseline),
    ] {
        let sel = selector.select(&reduced, &w).expect("selector runs");
        assert!(
            sel.objective >= exact.objective - 1e-9,
            "{} beat the exact optimum?!",
            selector.name()
        );
    }
    let psl = PslCollective::default()
        .select(&reduced, &w)
        .expect("selector runs");
    assert!(
        (psl.objective - exact.objective).abs() < 1e-6,
        "PSL should match exact on this scenario: {} vs {}",
        psl.objective,
        exact.objective
    );
}

#[test]
fn selection_outcome_reports_are_consistent() {
    let scenario = generate(&ScenarioConfig {
        noise: NoiseConfig::uniform(10.0),
        seed: 99,
        ..ScenarioConfig::all_primitives(1)
    });
    let outcome =
        evaluate_scenario(&scenario, &Greedy, &ObjectiveWeights::unweighted()).expect("runs");
    assert_eq!(outcome.selector, "greedy");
    assert!(outcome.wall >= outcome.select_wall);
    assert!(outcome.mapping.precision >= 0.0 && outcome.mapping.precision <= 1.0);
    assert!(outcome.selection.evaluations > 0);
    // Selected indices are valid and deduplicated.
    let mut seen = std::collections::HashSet::new();
    for &c in &outcome.selection.selected {
        assert!(c < scenario.candidates.len());
        assert!(seen.insert(c));
    }
}

#[test]
fn determinism_across_runs() {
    let config = ScenarioConfig {
        noise: NoiseConfig::uniform(25.0),
        seed: 555,
        ..ScenarioConfig::all_primitives(1)
    };
    let s1 = generate(&config);
    let s2 = generate(&config);
    let w = ObjectiveWeights::unweighted();
    let o1 = evaluate_scenario(&s1, &PslCollective::default(), &w).expect("runs");
    let o2 = evaluate_scenario(&s2, &PslCollective::default(), &w).expect("runs");
    assert_eq!(o1.selection.selected, o2.selection.selected);
    assert_eq!(o1.mapping.f1, o2.mapping.f1);
}

//! Acceptance test for the flight recorder: the bounded journal ring
//! keeps a run longer than its capacity to exactly `capacity` retained
//! events with an exact drop count, a rung ≥ 2 degradation persists a
//! black-box dump, and an injected `SolverStall` shows up as a solve-side
//! regression in both the journal counters and the span profile.
//!
//! One `#[test]` because the journal, span store, ring configuration and
//! level override are process-wide.

use cms::obs;
use cms::prelude::*;

fn scenario() -> Scenario {
    generate(&ScenarioConfig {
        noise: NoiseConfig::uniform(25.0),
        seed: 20170419,
        ..ScenarioConfig::all_primitives(1)
    })
}

/// Sum of (iterations, restarts) over the solve events in a snapshot.
fn solve_counters(snap: &obs::JournalSnapshot) -> (u64, u64) {
    let mut iters = 0;
    let mut restarts = 0;
    for r in &snap.records {
        if let obs::Event::Solve {
            iterations,
            restarts: rs,
            ..
        } = &r.event
        {
            iters += iterations;
            restarts += rs;
        }
    }
    (iters, restarts)
}

#[test]
fn ring_bounds_retention_dumps_on_degradation_and_attributes_stalls() {
    obs::set_level_override(obs::ObsLevel::Journal);
    let scenario = scenario();
    let weights = ObjectiveWeights::unweighted();
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);

    // --- Bounded capture: a run emitting more events than the ring
    // holds keeps exactly `capacity` records and accounts for every
    // drop, with the retained window contiguous from base_seq + dropped.
    obs::set_ring_capacity_override(Some(4));
    let _ = obs::drain_journal_snapshot();
    let _ = obs::drain_spans();
    let _ = LocalSearch::default()
        .select(&model, &weights)
        .expect("selects");
    let snap = obs::drain_journal_snapshot();
    assert_eq!(snap.records.len(), 4, "ring retains exactly its capacity");
    assert!(
        snap.header.events_dropped > 0,
        "a full pipeline run overflows a 4-slot ring"
    );
    assert_eq!(snap.header.events, 4);
    assert_eq!(snap.header.ring_capacity, 4);
    assert_eq!(
        snap.records[0].seq,
        snap.header.base_seq + snap.header.events_dropped,
        "first retained seq notes the gap the drop count reports"
    );
    for pair in snap.records.windows(2) {
        assert_eq!(
            pair[1].seq,
            pair[0].seq + 1,
            "retained window is contiguous"
        );
    }
    // The export carries the header and round-trips exactly.
    let jsonl = snap.to_jsonl();
    assert!(jsonl.starts_with("{\"type\":\"journal-header\""));
    let back = obs::JournalSnapshot::parse(&jsonl).expect("snapshot re-parses");
    assert_eq!(back, snap);
    obs::clear_ring_capacity_override();

    // --- Black box: a rung ≥ 2 degradation (corrupted splice ordinal →
    // fresh ground) persists the journal window to the dump path.
    let dump =
        std::env::temp_dir().join(format!("cms-flight-recorder-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    obs::set_dump_path_override(Some(dump.to_str().expect("utf-8 temp path")));
    let _ = obs::drain_journal_snapshot();
    let _ = obs::drain_spans();
    cms::psl::fault::arm(cms::psl::Fault::CorruptSpliceOrdinal);
    let _ = LocalSearch::default()
        .select(&model, &weights)
        .expect("selects through the ladder");
    cms::psl::fault::disarm();
    obs::clear_dump_path_override();
    let dumped = std::fs::read_to_string(&dump).expect("degradation wrote the dump");
    let dumped = obs::JournalSnapshot::parse(&dumped).expect("dump is a valid snapshot");
    let rungs: Vec<u32> = dumped
        .records
        .iter()
        .filter_map(|r| match &r.event {
            obs::Event::Degradation(rung) => Some(rung.rung()),
            _ => None,
        })
        .collect();
    assert!(
        rungs.iter().any(|&r| r >= 2),
        "dump captures the rung ≥ 2 degradation that triggered it, got {rungs:?}"
    );
    let _ = std::fs::remove_file(&dump);

    // --- Attribution: an injected solver stall must surface as extra
    // solve-side work relative to a clean run — deterministically in the
    // journal's iteration/restart counters, and as a solve entry in the
    // span profile.
    let _ = obs::drain_journal_snapshot();
    let _ = obs::drain_spans();
    let _ = LocalSearch::default()
        .select(&model, &weights)
        .expect("clean run selects");
    let clean = obs::drain_journal_snapshot();
    let clean_profile = obs::profile(&obs::drain_spans(), 0);

    cms::psl::fault::arm(cms::psl::Fault::SolverStall);
    let _ = LocalSearch::default()
        .select(&model, &weights)
        .expect("stalled run selects");
    cms::psl::fault::disarm();
    let stalled = obs::drain_journal_snapshot();
    let stalled_profile = obs::profile(&obs::drain_spans(), 0);
    obs::clear_level_override();

    let (clean_iters, clean_restarts) = solve_counters(&clean);
    let (stalled_iters, stalled_restarts) = solve_counters(&stalled);
    assert!(
        stalled_restarts > clean_restarts,
        "stall forces a watchdog restart: {stalled_restarts} vs {clean_restarts}"
    );
    assert!(
        stalled_iters >= clean_iters,
        "restarted solves never spend fewer iterations: {stalled_iters} vs {clean_iters}"
    );
    assert!(stalled.records.iter().any(|r| matches!(
        &r.event,
        obs::Event::Fault { fault } if fault == "solver-stall"
    )));

    // Both profiles attribute wall time to the solve phase, and
    // self-time never exceeds inclusive time anywhere.
    for (name, profile) in [("clean", &clean_profile), ("stalled", &stalled_profile)] {
        let solve = profile
            .entry("solve")
            .unwrap_or_else(|| panic!("{name} profile has a solve entry"));
        assert!(solve.count >= 1);
        assert!(solve.wall_inclusive_ns > 0);
        for entry in &profile.entries {
            assert!(
                entry.wall_self_ns <= entry.wall_inclusive_ns,
                "{name}: self ≤ inclusive for {}",
                entry.label
            );
        }
    }
    // The stalled run's profile round-trips through its JSON form, so
    // obs_diff can consume what `cms-bench profile` writes.
    let json = stalled_profile.to_json();
    let back = obs::Profile::parse(&json).expect("profile re-parses");
    assert_eq!(back, stalled_profile);
}

//! End-to-end equivalence of the batched chase engine against the retained
//! naive per-tgd chase, on the real candidate sets candgen emits for
//! seeded iBench scenarios — plus equality of the coverage models built on
//! top of either chase.
//!
//! The contract under test (see `cms_tgd::engine`):
//!
//! * `ChaseEngine::chase_all` equals `chase_one` per candidate up to null
//!   renaming, and `chase_one_canonical` bit for bit;
//! * `ChaseEngine::chase_merged` equals `chase` up to null renaming, and
//!   `chase_canonical` bit for bit;
//! * `CoverageModel` built on the engine is identical — cover degrees,
//!   sizes, error groups, error counts — to one built on the naive chase.

use cms::prelude::*;
use cms::tgd::{chase_canonical, chase_one_canonical, ChaseEngine};
use cms_select::{CoverageModel, CoverageOptions};

/// Error groups as an order-insensitive multiset: creators plus the
/// null-canonicalized pattern of the representative tuple (engine and
/// naive builds may order null-error groups differently and use different
/// null ids).
fn error_multiset(model: &CoverageModel) -> Vec<(Vec<usize>, TuplePattern)> {
    let mut groups: Vec<(Vec<usize>, TuplePattern)> = model
        .errors
        .iter()
        .map(|g| {
            (
                g.creators.clone(),
                TuplePattern::of(g.example.rel, &g.example.args),
            )
        })
        .collect();
    groups.sort();
    groups
}

fn assert_models_identical(engine: &CoverageModel, naive: &CoverageModel, label: &str) {
    assert_eq!(engine.num_candidates, naive.num_candidates, "{label}");
    assert_eq!(engine.targets, naive.targets, "{label}: target tuples");
    assert_eq!(engine.sizes, naive.sizes, "{label}: sizes");
    assert_eq!(engine.covers, naive.covers, "{label}: cover degrees");
    assert_eq!(
        engine.error_counts, naive.error_counts,
        "{label}: error counts"
    );
    assert_eq!(
        error_multiset(engine),
        error_multiset(naive),
        "{label}: error groups"
    );
}

#[test]
fn engine_matches_naive_chase_on_seeded_scenarios() {
    for (invocations, seed) in [(1usize, 1u64), (1, 7), (2, 3)] {
        let config = ScenarioConfig {
            rows_per_relation: 12,
            noise: NoiseConfig::uniform(25.0),
            seed,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        let label = format!("all_primitives({invocations}) seed {seed}");
        let engine = ChaseEngine::new(&scenario.candidates)
            .unwrap_or_else(|e| panic!("{label}: candidates must validate: {e}"));
        let (solutions, stats) = engine.chase_all_stats(&scenario.source);
        assert_eq!(solutions.len(), scenario.candidates.len(), "{label}");

        for (i, (k, tgd)) in solutions.iter().zip(&scenario.candidates).enumerate() {
            let naive = chase_one(&scenario.source, tgd);
            assert_eq!(
                pattern_multiset(k),
                pattern_multiset(&naive),
                "{label}: candidate {i} patterns diverged"
            );
            assert_eq!(k.total_len(), naive.total_len(), "{label}: candidate {i}");
            let canonical = chase_one_canonical(&scenario.source, tgd).expect("valid tgd");
            assert_eq!(
                k.to_tuples(),
                canonical.to_tuples(),
                "{label}: candidate {i} not bit-identical to the canonical reference"
            );
        }

        // Merged solution (the metrics path).
        let merged = engine.chase_merged(&scenario.source);
        let canonical = chase_canonical(&scenario.source, &scenario.candidates).unwrap();
        assert_eq!(merged.to_tuples(), canonical.to_tuples(), "{label}: merged");
        assert_eq!(
            pattern_multiset(&merged),
            pattern_multiset(&chase(&scenario.source, &scenario.candidates)),
            "{label}: merged patterns"
        );

        // Candgen reuses one body per source logical relation across many
        // heads: the trie must actually share work on these sets.
        assert!(
            stats.prefix_bindings_reused > 0,
            "{label}: no prefix sharing on a candgen candidate set ({stats:?})"
        );
        assert!(
            stats.trie_nodes > 0 && stats.firings > 0,
            "{label}: {stats:?}"
        );
    }
}

#[test]
fn coverage_model_identical_on_engine_and_naive_chase() {
    for (invocations, seed) in [(1usize, 5u64), (2, 11)] {
        let config = ScenarioConfig {
            rows_per_relation: 10,
            noise: NoiseConfig::uniform(25.0),
            seed,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        let label = format!("coverage all_primitives({invocations}) seed {seed}");
        let options = CoverageOptions::default();
        let engine_model = CoverageModel::build_with(
            &scenario.source,
            &scenario.target,
            &scenario.candidates,
            &options,
        );
        let naive_model = CoverageModel::build_reference(
            &scenario.source,
            &scenario.target,
            &scenario.candidates,
            &options,
        );
        assert_models_identical(&engine_model, &naive_model, &label);
    }
}

#[test]
fn coverage_model_identical_under_use_core() {
    // Core computation is superlinear — keep the scenario small.
    let config = ScenarioConfig {
        rows_per_relation: 5,
        seed: 2,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let options = CoverageOptions { use_core: true };
    let engine_model = CoverageModel::build_with(
        &scenario.source,
        &scenario.target,
        &scenario.candidates,
        &options,
    );
    let naive_model = CoverageModel::build_reference(
        &scenario.source,
        &scenario.target,
        &scenario.candidates,
        &options,
    );
    assert_models_identical(&engine_model, &naive_model, "use_core");
}

#[test]
fn build_with_stats_reports_trie_sharing() {
    let config = ScenarioConfig {
        rows_per_relation: 12,
        seed: 4,
        ..ScenarioConfig::all_primitives(2)
    };
    let scenario = generate(&config);
    let (model, stats) = CoverageModel::build_with_stats(
        &scenario.source,
        &scenario.target,
        &scenario.candidates,
        &CoverageOptions::default(),
    )
    .expect("scenario candidates validate");
    assert_eq!(model.num_candidates, scenario.candidates.len());
    assert_eq!(stats.tgds, scenario.candidates.len());
    assert!(
        stats.prefix_bindings_reused > 0,
        "coverage build must share prefix bindings: {stats:?}"
    );
}

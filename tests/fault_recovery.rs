//! Fault-injection recovery suite: every fault class in
//! [`cms_fault::ALL_FAULTS`] is injected into a live incremental solve
//! pipeline ([`cms_select::WarmRelaxation`] driving delta regrounds and
//! warm ADMM solves), and the suite asserts the full chain per class:
//!
//! 1. the fault is **detected** by its documented guard (nothing panics,
//!    nothing silently corrupts);
//! 2. the documented **ladder rung** fires (dropped duals, fresh-ground
//!    fallback, or solver restart — see `docs/robustness.md`);
//! 3. the pipeline **recovers**: every post-fault objective matches the
//!    fault-free run of the identical flip sequence.
//!
//! The seeded scenario is driven by [`cms_fault::FaultPlan`]; CI runs it
//! under `CMS_FAULT_SEED={1,2}` so the injection order varies across legs
//! while staying reproducible.

use cms_fault::{disarm, Fault, FaultPlan};
use cms_psl::AdmmConfig;
use cms_select::{
    build_reduction, CoverageModel, LocalSearch, ObjectiveWeights, Selector, SetCoverInstance,
    WarmRelaxation,
};

fn model() -> CoverageModel {
    let sc = SetCoverInstance {
        universe: 4,
        sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
        bound: 2,
    };
    let red = build_reduction(&sc);
    CoverageModel::build(&red.source, &red.target, &red.candidates)
}

/// The flip sequence every scenario replays (same walk as the relaxation
/// unit tests: add, add, retract, add, re-add).
const FLIPS: [(usize, bool); 5] = [(0, true), (2, true), (0, false), (1, true), (0, true)];

fn warm(model: &CoverageModel) -> WarmRelaxation {
    WarmRelaxation::new(
        model,
        &ObjectiveWeights::unweighted(),
        AdmmConfig::default(),
    )
    .unwrap()
}

/// Run the flip sequence with no faults armed; returns the per-step soft
/// objectives — the ground truth every recovery scenario must reproduce.
fn fault_free_reference(model: &CoverageModel) -> Vec<f64> {
    let mut w = warm(model);
    FLIPS.iter().map(|&(c, on)| w.set(c, on).unwrap()).collect()
}

/// Assert `got` matches the fault-free objective at `step` (loose ADMM
/// tolerance: recovered solves may land on a different eps-accurate point).
fn assert_recovered(step: usize, got: f64, reference: &[f64], fault: Fault) {
    assert!(
        (got - reference[step]).abs() < 5e-3,
        "{fault:?} step {step}: recovered {got} vs fault-free {}",
        reference[step]
    );
}

/// Inject one fault class at one step of the flip sequence and assert the
/// documented ladder rung fired and the objective recovered. Returns the
/// relaxation for extra per-class assertions.
fn run_with_fault_at(
    model: &CoverageModel,
    reference: &[f64],
    fault: Fault,
    at: usize,
) -> WarmRelaxation {
    disarm();
    let mut w = warm(model);
    for (step, &(c, on)) in FLIPS.iter().enumerate() {
        if step == at {
            cms_fault::arm(fault);
        }
        let soft = w.set(c, on).unwrap();
        assert_recovered(step, soft, reference, fault);
        if step == at {
            assert_eq!(
                cms_fault::armed(),
                None,
                "{fault:?} was never consumed — the injection point did not fire"
            );
        } else {
            assert_eq!(w.last_degradation, None, "{fault:?} leaked to step {step}");
        }
        disarm();
    }
    w
}

/// Which ladder rung a fault class must fire (the per-class contract the
/// docs table promises).
fn assert_rung(fault: Fault, w: &WarmRelaxation) {
    match fault {
        Fault::PoisonDuals => {
            assert_eq!(w.duals_dropped, 1, "poisoned duals must be dropped");
            assert_eq!(w.fallback_fresh_grounds, 0, "no reground fallback needed");
        }
        Fault::DropDeltaEntry | Fault::DuplicateDeltaEntry => {
            assert_eq!(w.fallback_fresh_grounds, 1, "tampered delta ⇒ fresh ground");
            assert_eq!(w.duals_dropped, 0);
        }
        Fault::CorruptSpliceOrdinal | Fault::InvalidateIndex => {
            assert_eq!(w.fallback_fresh_grounds, 1, "broken splice ⇒ fresh ground");
        }
        Fault::SolverStall => {
            assert!(w.solver_restarts >= 1, "stall must trigger a restart");
            assert_eq!(w.fallback_fresh_grounds, 0);
            assert!(w.last_health.is_nominal(), "restart must recover");
        }
    }
}

#[test]
fn every_fault_class_is_detected_and_recovered() {
    let model = model();
    let reference = fault_free_reference(&model);
    for fault in cms_fault::ALL_FAULTS {
        // Inject at step 1 (a plain add with live prior state).
        let w = run_with_fault_at(&model, &reference, fault, 1);
        assert_rung(fault, &w);
    }
}

#[test]
fn faults_on_a_retraction_step_recover_too() {
    let model = model();
    let reference = fault_free_reference(&model);
    for fault in cms_fault::ALL_FAULTS {
        run_with_fault_at(&model, &reference, fault, 2);
    }
}

/// Drop/DuplicateDeltaEntry stay detected when the drained delta is a
/// *coalesced batch*: tampering perturbs the raw entry count, and the
/// guard checks that count — not the (smaller) net entry list — against
/// the generation span, so coalescing cannot mask the fault.
#[test]
fn tampered_coalesced_batches_are_detected_and_recovered() {
    let model = model();
    // Candidate 0 flips on and back off inside the batch, so the drain
    // genuinely coalesces (4 raw entries, 2 net) before the guard runs.
    const BATCH: [(usize, bool); 4] = [(0, true), (2, true), (0, false), (1, true)];
    disarm();
    let mut clean = warm(&model);
    let reference = clean.set_members(&BATCH).unwrap();
    assert_eq!(clean.entries_coalesced, 2, "the batch must coalesce");
    assert_eq!(clean.fallback_fresh_grounds, 0);
    for fault in [Fault::DropDeltaEntry, Fault::DuplicateDeltaEntry] {
        disarm();
        let mut w = warm(&model);
        cms_fault::arm(fault);
        let soft = w.set_members(&BATCH).unwrap();
        assert_eq!(
            cms_fault::armed(),
            None,
            "{fault:?} was never consumed on the batched drain"
        );
        assert_eq!(
            w.fallback_fresh_grounds, 1,
            "{fault:?}: tampered batch ⇒ fresh ground"
        );
        assert!(
            (soft - reference).abs() < 5e-3,
            "{fault:?}: recovered {soft} vs fault-free {reference}"
        );
        // The pipeline is re-armed: a follow-up batch splices again.
        let after = w.set_members(&[(3, true), (0, true), (0, false)]).unwrap();
        let mut check = warm(&model);
        let expect = check
            .set_members(&[(2, true), (1, true), (3, true)])
            .unwrap();
        assert!(
            (after - expect).abs() < 5e-3,
            "{fault:?}: post-recovery batch {after} vs {expect}"
        );
        assert_eq!(w.fallback_fresh_grounds, 1, "{fault:?} must not fire twice");
    }
}

/// The seeded whole-plan scenario CI varies by `CMS_FAULT_SEED`: walk the
/// plan's shuffled fault order, one fault per flip, and require the final
/// state to match the fault-free run.
#[test]
fn seeded_fault_plan_recovers_end_to_end() {
    let plan = FaultPlan::from_env().unwrap_or_else(|| FaultPlan::from_seed(1));
    let model = model();
    let reference = fault_free_reference(&model);
    disarm();
    let mut w = warm(&model);
    for (step, &(c, on)) in FLIPS.iter().enumerate() {
        let fault = plan.arm_step(step);
        let soft = w.set(c, on).unwrap();
        assert_recovered(step, soft, &reference, fault);
        disarm();
    }
    assert!(
        w.fallback_fresh_grounds + w.duals_dropped + w.solver_restarts > 0,
        "seed {}: at least one ladder rung must have fired",
        plan.seed()
    );
}

/// End-to-end: a full local search with a fault armed mid-flight selects
/// the same mapping as the fault-free search.
#[test]
fn local_search_selection_survives_injection() {
    let model = model();
    let w = ObjectiveWeights::unweighted();
    disarm();
    let clean = LocalSearch::default().select(&model, &w).unwrap();
    for fault in cms_fault::ALL_FAULTS {
        cms_fault::arm(fault);
        let faulted = LocalSearch::default().select(&model, &w).unwrap();
        disarm();
        assert_eq!(
            clean.selected, faulted.selected,
            "{fault:?} changed the selected mapping"
        );
        assert!(
            (clean.objective - faulted.objective).abs() < 1e-9,
            "{fault:?} changed the objective"
        );
    }
}

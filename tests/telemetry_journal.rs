//! Acceptance test for the unified telemetry layer: one pipeline run at
//! the `journal` level must emit typed events covering every subsystem
//! (chase, ground, reground, solve, degradation), and the journal's
//! counters must reconcile *exactly* with the stats the engines report
//! through their own APIs ([`cms::tgd::ChaseStats`],
//! `GroundStats`-backed selection telemetry, ADMM iteration totals).
//!
//! Everything runs in a single `#[test]` because the journal, span store,
//! and level override are process-wide.

use cms::obs;
use cms::prelude::*;
use cms::select::build_eval_program;

fn scenario() -> Scenario {
    generate(&ScenarioConfig {
        noise: NoiseConfig::uniform(25.0),
        seed: 20170419,
        ..ScenarioConfig::all_primitives(1)
    })
}

#[test]
fn journal_covers_the_pipeline_and_reconciles_with_engine_stats() {
    obs::set_level_override(obs::ObsLevel::Journal);
    let scenario = scenario();
    let weights = ObjectiveWeights::unweighted();
    // Scenario generation chases too — start the ledger clean after it.
    let _ = obs::drain_journal();
    let _ = obs::drain_spans();

    // --- Chase: the journal's chase event mirrors ChaseStats exactly. ---
    let (model, chase_stats) = CoverageModel::build_with_stats(
        &scenario.source,
        &scenario.target,
        &scenario.candidates,
        &Default::default(),
    )
    .expect("candidates chase");
    let events = obs::drain_journal();
    let chase: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.event {
            obs::Event::Chase {
                tgds,
                firings,
                tuples_emitted,
                candidates_probed,
                candidates_scanned,
                prefix_bindings_computed,
                prefix_bindings_reused,
                ..
            } => Some((
                *tgds,
                *firings,
                *tuples_emitted,
                *candidates_probed,
                *candidates_scanned,
                *prefix_bindings_computed,
                *prefix_bindings_reused,
            )),
            _ => None,
        })
        .collect();
    assert_eq!(chase.len(), 1, "one chase_all run = one chase event");
    assert_eq!(
        chase[0],
        (
            chase_stats.tgds as u64,
            chase_stats.firings as u64,
            chase_stats.tuples_emitted as u64,
            chase_stats.candidates_probed as u64,
            chase_stats.candidates_scanned as u64,
            chase_stats.prefix_bindings_computed as u64,
            chase_stats.prefix_bindings_reused as u64,
        ),
        "chase event must mirror ChaseStats"
    );

    // --- Ground: per-rule events absorb to GroundProgram::total_stats. ---
    let (program, _) = build_eval_program(&model, &weights, &[]);
    let ground = program.ground().expect("grounds");
    let total = ground.total_stats();
    let events = obs::drain_journal();
    let mut subs = 0u64;
    let mut pots = 0u64;
    let mut cons = 0u64;
    let mut ground_events = 0usize;
    for e in &events {
        if let obs::Event::Ground { counters, .. } = &e.event {
            ground_events += 1;
            subs += counters.substitutions;
            pots += counters.potentials;
            cons += counters.constraints;
        }
    }
    assert!(ground_events > 0, "grounding must journal per-rule events");
    assert_eq!(subs, total.substitutions as u64);
    assert_eq!(pots, total.potentials as u64);
    assert_eq!(cons, total.constraints as u64);

    // --- Full run: local search through the warm relaxation, with one
    // fault forcing rung 1 of the degradation ladder. ---
    let _ = obs::drain_journal();
    cms::psl::fault::arm(cms::psl::Fault::PoisonDuals);
    let sel = LocalSearch::default()
        .select(&model, &weights)
        .expect("selects");
    cms::psl::fault::disarm();
    let events = obs::drain_journal();
    obs::clear_level_override();

    let t = &sel.telemetry;
    let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.event.kind()).collect();
    for kind in ["ground", "reground", "solve", "degradation", "fault"] {
        assert!(kinds.contains(kind), "missing {kind} events in {kinds:?}");
    }

    // Reground events absorb the same per-rule stats the relaxation
    // accumulates into its public counters — sums must agree exactly.
    let mut reused = 0u64;
    let mut recomputed = 0u64;
    let mut spliced = 0u64;
    for e in &events {
        if let obs::Event::Reground { counters, .. } = &e.event {
            reused += counters.terms_reused;
            recomputed += counters.terms_recomputed;
            spliced += counters.arith_bindings_spliced;
        }
    }
    assert_eq!(reused, t.terms_reused as u64, "terms_reused reconciles");
    assert_eq!(recomputed, t.terms_recomputed as u64);
    assert_eq!(spliced, t.arith_bindings_spliced as u64);

    // Solve events carry AdmmSolution fields; iteration and restart sums
    // must equal the relaxation's cumulative counters, and the last
    // event's health must be the reported last_health.
    let solves: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.event {
            obs::Event::Solve {
                iterations,
                restarts,
                health,
                ..
            } => Some((*iterations, *restarts, health.clone())),
            _ => None,
        })
        .collect();
    assert!(!solves.is_empty());
    let iters: u64 = solves.iter().map(|s| s.0).sum();
    let restarts: u64 = solves.iter().map(|s| s.1).sum();
    assert_eq!(iters, t.admm_iterations as u64, "ADMM iterations reconcile");
    assert_eq!(restarts, t.solver_restarts as u64);
    assert_eq!(
        solves.last().unwrap().2,
        t.last_health.unwrap().to_string(),
        "last solve event carries the reported health"
    );

    // The armed fault fired exactly once and took exactly rung 1, which
    // the selection telemetry records as a typed DegradationRung.
    let faults: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.event {
            obs::Event::Fault { fault } => Some(fault.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(faults, vec!["poison-duals".to_owned()]);
    let rungs: Vec<u32> = events
        .iter()
        .filter_map(|e| match &e.event {
            obs::Event::Degradation(r) => Some(r.rung()),
            _ => None,
        })
        .collect();
    assert_eq!(rungs, vec![1], "poisoned duals degrade via rung 1 only");
    assert_eq!(
        t.degradations.iter().map(|r| r.rung()).collect::<Vec<_>>(),
        rungs,
        "selection telemetry mirrors the journal's rungs"
    );
    assert_eq!(t.duals_dropped, 1);

    // The journal round-trips through the JSONL exporter losslessly.
    let jsonl = obs::export_jsonl(&events);
    let back = obs::parse_jsonl(&jsonl).expect("exported journal re-parses");
    assert_eq!(back, events);
}

//! Integration test: the appendix §II noise machinery, end to end.

use cms::prelude::*;

#[test]
fn pi_corresp_inflates_candidates_monotonically_in_expectation() {
    // Averaged over seeds, more metadata noise ⇒ more candidates.
    let avg_candidates = |pi: f64| -> f64 {
        let mut total = 0usize;
        for seed in [1u64, 2, 3, 4] {
            let s = generate(&ScenarioConfig {
                noise: NoiseConfig {
                    pi_corresp: pi,
                    ..NoiseConfig::clean()
                },
                seed,
                ..ScenarioConfig::all_primitives(1)
            });
            total += s.stats.candidates;
        }
        total as f64 / 4.0
    };
    let c0 = avg_candidates(0.0);
    let c50 = avg_candidates(50.0);
    let c100 = avg_candidates(100.0);
    assert!(c0 < c50, "{c0} !< {c50}");
    assert!(c50 < c100, "{c50} !< {c100}");
}

#[test]
fn pi_errors_only_deletes_and_pi_unexplained_only_adds() {
    let base = ScenarioConfig {
        seed: 31,
        ..ScenarioConfig::all_primitives(1)
    };
    let clean = generate(&base);

    let del = generate(&ScenarioConfig {
        noise: NoiseConfig {
            pi_errors: 50.0,
            ..NoiseConfig::clean()
        },
        ..base.clone()
    });
    assert!(del.stats.data_noise.deleted > 0);
    assert_eq!(del.stats.data_noise.added, 0);
    assert!(del.stats.target_tuples < clean.stats.target_tuples);

    let add = generate(&ScenarioConfig {
        noise: NoiseConfig {
            pi_unexplained: 50.0,
            ..NoiseConfig::clean()
        },
        ..base.clone()
    });
    assert!(add.stats.data_noise.added > 0);
    assert_eq!(add.stats.data_noise.deleted, 0);
    assert!(add.stats.target_tuples > clean.stats.target_tuples);
}

#[test]
fn hundred_percent_noise_exhausts_the_pools() {
    let s = generate(&ScenarioConfig {
        noise: NoiseConfig {
            pi_errors: 100.0,
            pi_unexplained: 100.0,
            pi_corresp: 0.0,
        },
        seed: 13,
        ..ScenarioConfig::all_primitives(1)
    });
    let r = s.stats.data_noise;
    assert_eq!(r.deleted, r.error_pool, "100% must delete the whole pool");
    assert_eq!(r.added, r.unexplained_pool, "100% must add the whole pool");
}

#[test]
fn data_noise_hurts_even_the_gold_mapping() {
    // Under data noise the gold mapping's objective must be strictly worse
    // than on the clean scenario — the premise of the robustness
    // experiments (EX3/EX4).
    let base = ScenarioConfig {
        seed: 77,
        ..ScenarioConfig::all_primitives(1)
    };
    let w = ObjectiveWeights::unweighted();
    let clean = generate(&base);
    let noisy = generate(&ScenarioConfig {
        noise: NoiseConfig {
            pi_errors: 40.0,
            pi_unexplained: 40.0,
            pi_corresp: 0.0,
        },
        ..base
    });
    let gold_f = |s: &Scenario| -> f64 {
        let outcome =
            evaluate_scenario(s, &FixedSelection::new("gold", s.gold.clone()), &w).expect("runs");
        outcome.selection.objective
    };
    // Normalize by |J| (the two scenarios have different target sizes).
    let clean_rate = gold_f(&clean) / clean.stats.target_tuples as f64;
    let noisy_rate = gold_f(&noisy) / noisy.stats.target_tuples as f64;
    assert!(
        noisy_rate > clean_rate,
        "noise must raise the gold objective rate ({clean_rate} vs {noisy_rate})"
    );
}

#[test]
fn unexplained_additions_are_truly_unexplainable_by_gold() {
    // Tuples added by πUnexplained come from C−MG outputs: the gold
    // mapping must not fully explain them.
    let clean = generate(&ScenarioConfig {
        noise: NoiseConfig {
            pi_corresp: 100.0,
            ..NoiseConfig::clean()
        },
        seed: 3,
        ..ScenarioConfig::all_primitives(1)
    });
    let noisy = generate(&ScenarioConfig {
        noise: NoiseConfig {
            pi_corresp: 100.0,
            pi_unexplained: 100.0,
            pi_errors: 0.0,
        },
        seed: 3,
        ..ScenarioConfig::all_primitives(1)
    });
    // Same seed ⇒ same schemas/candidates; only J differs.
    assert_eq!(clean.stats.candidates, noisy.stats.candidates);
    let w = ObjectiveWeights::unweighted();
    let gold_clean =
        evaluate_scenario(&clean, &FixedSelection::new("g", clean.gold.clone()), &w).expect("runs");
    let gold_noisy =
        evaluate_scenario(&noisy, &FixedSelection::new("g", noisy.gold.clone()), &w).expect("runs");
    let added = noisy.stats.data_noise.added as f64;
    assert!(added > 0.0);
    // Each added tuple contributes some unexplained mass for the gold.
    assert!(
        gold_noisy.selection.objective >= gold_clean.selection.objective + added * 0.2,
        "gold objective must grow with additions: {} vs {} (+{added} tuples)",
        gold_noisy.selection.objective,
        gold_clean.selection.objective
    );
}

//! End-to-end equivalence of the plan-compiled, index-probing grounding
//! engine against the retained naive reference grounder, on the real
//! programs the pipeline produces for seeded iBench scenarios.
//!
//! For each scenario we build the coverage model and both PSL encodings
//! (hand-compiled raw terms and declarative rules), then require that
//! `Program::ground()` (parallel, plan-compiled), `ground_with(1)`
//! (sequential, plan-compiled) and `ground_naive()` (reference) describe
//! the identical HL-MRF via [`cms_psl::GroundProgram::canonical_terms`].

use cms::prelude::*;
use cms_psl::Program;

fn assert_all_engines_agree(program: &Program, label: &str) {
    let parallel = program.ground().expect("parallel grounding succeeds");
    let sequential = program
        .ground_with(1)
        .expect("sequential grounding succeeds");
    let naive = program.ground_naive().expect("naive grounding succeeds");

    // Parallel vs sequential plan grounding: bit-identical, variable order
    // included (the deterministic two-phase merge guarantees it).
    assert_eq!(
        parallel.num_vars(),
        sequential.num_vars(),
        "{label}: var count"
    );
    for v in 0..parallel.num_vars() {
        assert_eq!(
            parallel.atom_of(v),
            sequential.atom_of(v),
            "{label}: var order"
        );
    }

    // Plan vs naive: identical HL-MRF up to term/variable ordering.
    assert_eq!(
        parallel.num_vars(),
        naive.num_vars(),
        "{label}: naive var count"
    );
    assert_eq!(
        parallel.canonical_terms(),
        naive.canonical_terms(),
        "{label}: ground terms differ between plan and naive engines"
    );
    assert!(
        (parallel.constant_loss - naive.constant_loss).abs() < 1e-9,
        "{label}: constant loss drifted"
    );
}

#[test]
fn all_engines_agree_on_seeded_scenarios() {
    for (invocations, seed) in [(1usize, 1u64), (1, 7), (2, 3)] {
        let config = ScenarioConfig {
            rows_per_relation: 10,
            noise: NoiseConfig::uniform(25.0),
            seed,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let selector = PslCollective::default();
        let weights = ObjectiveWeights::unweighted();

        let (raw_program, _) = selector.build_program(&model, &weights);
        assert_all_engines_agree(&raw_program, &format!("raw inv={invocations} seed={seed}"));

        let (decl_program, _) = selector.build_declarative_program(&model, &weights);
        assert_all_engines_agree(
            &decl_program,
            &format!("decl inv={invocations} seed={seed}"),
        );
    }
}

#[test]
fn index_short_circuits_the_declarative_join() {
    // The declarative encoding's error-link rule is a two-literal join:
    // with the index, grounding it must probe (not scan) the inner
    // literal's pool.
    let config = ScenarioConfig {
        rows_per_relation: 12,
        noise: NoiseConfig::uniform(25.0),
        seed: 5,
        ..ScenarioConfig::all_primitives(2)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let (program, _) =
        PslCollective::default().build_declarative_program(&model, &ObjectiveWeights::unweighted());
    let ground = program.ground().expect("grounds");
    let stats = ground.total_stats();
    assert!(
        stats.candidates_probed > 0,
        "no index probes recorded: {stats:?}"
    );
    let naive = program.ground_naive().expect("grounds naively");
    let naive_stats = naive.total_stats();
    assert!(
        stats.candidates_probed + stats.candidates_scanned < naive_stats.candidates_scanned,
        "index did not reduce candidate work: plan={stats:?} naive={naive_stats:?}"
    );
}

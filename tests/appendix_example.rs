//! Integration test: the appendix §I worked example, verified end-to-end
//! through the public `cms` facade. These are the *published numbers* of
//! the paper — any regression here means the semantics drifted.

use cms::prelude::*;

fn running_example() -> (Schema, Schema, Instance, Instance, Vec<StTgd>) {
    let mut src = Schema::new("s");
    src.add_relation("proj", &["name", "code", "firm"]);
    src.add_relation("team", &["pcode", "emp"]);
    let mut tgt = Schema::new("t");
    tgt.add_relation("task", &["pname", "emp", "oid"]);
    tgt.add_relation("org", &["oid", "firm"]);

    let mut i = Instance::new();
    i.insert_ground(src.rel_id("proj").unwrap(), &["BigData", "7", "IBM"]);
    i.insert_ground(src.rel_id("proj").unwrap(), &["ML", "9", "SAP"]);
    i.insert_ground(src.rel_id("team").unwrap(), &["7", "Bob"]);
    i.insert_ground(src.rel_id("team").unwrap(), &["9", "Alice"]);

    let mut j = Instance::new();
    j.insert_ground(tgt.rel_id("task").unwrap(), &["ML", "Alice", "111"]);
    j.insert_ground(tgt.rel_id("org").unwrap(), &["111", "SAP"]);
    j.insert_ground(tgt.rel_id("task").unwrap(), &["Web", "Carol", "333"]);
    j.insert_ground(tgt.rel_id("org").unwrap(), &["444", "Oracle"]);

    let theta1 = parse_tgd("proj(x,c,f) & team(c,e) -> task(x,e,o)", &src, &tgt).unwrap();
    let theta3 = parse_tgd(
        "proj(x,c,f) & team(c,e) -> task(x,e,o) & org(o,f)",
        &src,
        &tgt,
    )
    .unwrap();
    (src, tgt, i, j, vec![theta1, theta3])
}

/// The published objective table:
///   {}: 4 | {θ1}: 7 1/3 | {θ3}: 8 | {θ1,θ3}: 12.
#[test]
fn published_objective_table() {
    let (_, _, i, j, cands) = running_example();
    let model = CoverageModel::build(&i, &j, &cands);
    let f = Objective::new(&model, ObjectiveWeights::unweighted());
    let eps = 1e-9;
    assert!((f.value(&[]) - 4.0).abs() < eps);
    assert!((f.value(&[0]) - (22.0 / 3.0)).abs() < eps);
    assert!((f.value(&[1]) - 8.0).abs() < eps);
    assert!((f.value(&[0, 1]) - 12.0).abs() < eps);
}

/// Published component columns for {θ1}: 3 1/3 unexplained, 1 error, 3 size
/// and for {θ3}: 2, 2, 4.
#[test]
fn published_component_columns() {
    let (_, _, i, j, cands) = running_example();
    let model = CoverageModel::build(&i, &j, &cands);
    let f = Objective::new(&model, ObjectiveWeights::unweighted());
    let eps = 1e-9;
    let (u, e, s) = f.components(&[0]);
    assert!((u - 10.0 / 3.0).abs() < eps && (e - 1.0).abs() < eps && (s - 3.0).abs() < eps);
    let (u, e, s) = f.components(&[1]);
    assert!((u - 2.0).abs() < eps && (e - 2.0).abs() < eps && (s - 4.0).abs() < eps);
    let (u, e, s) = f.components(&[0, 1]);
    assert!((u - 2.0).abs() < eps && (e - 3.0).abs() < eps && (s - 7.0).abs() < eps);
}

/// "θ1 is preferred over θ3, which in turn is preferred over {θ1, θ3}",
/// and the empty mapping wins on this tiny example.
#[test]
fn published_preference_order() {
    let (_, _, i, j, cands) = running_example();
    let model = CoverageModel::build(&i, &j, &cands);
    let f = Objective::new(&model, ObjectiveWeights::unweighted());
    assert!(f.value(&[]) < f.value(&[0]));
    assert!(f.value(&[0]) < f.value(&[1]));
    assert!(f.value(&[1]) < f.value(&[0, 1]));
}

/// "If we add at least five more projects X of the same kind as the ML
/// one … the preferred mapping is {θ3}."
#[test]
fn published_flip_with_more_data() {
    let (src, tgt, mut i, mut j, cands) = running_example();
    for n in 0..5 {
        let name = format!("X{n}");
        i.insert_ground(src.rel_id("proj").unwrap(), &[&name, "9", "SAP"]);
        j.insert_ground(tgt.rel_id("task").unwrap(), &[&name, "Alice", "111"]);
    }
    let model = CoverageModel::build(&i, &j, &cands);
    let weights = ObjectiveWeights::unweighted();
    // Every selector — exact and collective — must now pick exactly {θ3}.
    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(Exhaustive::default()),
        Box::new(BranchBound::default()),
        Box::new(PslCollective::default()),
    ];
    for s in selectors {
        let sel = s.select(&model, &weights).expect("selector runs");
        assert_eq!(
            sel.selected,
            vec![1],
            "{} picked {:?}",
            s.name(),
            sel.selected
        );
    }
}

/// The universal-solution structure behind the example: θ3's chase output
/// maps homomorphically into the (relevant fragment of) J, θ1's does not
/// create the org tuples at all.
#[test]
fn chase_structure_of_the_example() {
    let (src, tgt, i, _, cands) = running_example();
    let k1 = chase_one(&i, &cands[0]);
    let k3 = chase_one(&i, &cands[1]);
    let task = tgt.rel_id("task").unwrap();
    let org = tgt.rel_id("org").unwrap();
    assert_eq!(k1.rows(task).len(), 2);
    assert!(k1.rows(org).is_empty());
    assert_eq!(k3.rows(task).len(), 2);
    assert_eq!(k3.rows(org).len(), 2);
    // Each θ3 task tuple shares its null with an org tuple.
    for row in k3.rows(task) {
        let o = row[2];
        assert!(o.is_null());
        assert!(k3.rows(org).iter().any(|r| r[0] == o));
    }
    let _ = src;
}

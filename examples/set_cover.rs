//! The NP-hardness construction as a runnable artifact (appendix §III).
//!
//! Builds the SET COVER → mapping-selection reduction, verifies the
//! closed-form objective `F(M) = (m+1)·(|U| − |⋃ R_i|) + 2·|M|` against
//! the generic machinery, and shows that both exact search and the PSL
//! relaxation recover minimum covers.
//!
//! Run with: `cargo run --example set_cover`

use cms::prelude::*;
use cms_select::reduction::{closed_form_objective, is_cover_within_bound};

fn main() {
    // U = {0..5}; six subsets, optimal cover size 3: {0,1}, {2,3}, {4,5}.
    let sc = SetCoverInstance {
        universe: 6,
        sets: vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![5, 0],
        ],
        bound: 3,
    };
    println!(
        "SET COVER: |U| = {}, {} sets, bound n = {}",
        sc.universe,
        sc.sets.len(),
        sc.bound
    );

    let red = build_reduction(&sc);
    println!(
        "reduction: |I| = {}, |J| = {}, |C| = {}, decision threshold m = {}",
        red.source.total_len(),
        red.target.total_len(),
        red.candidates.len(),
        red.threshold
    );
    for (n, c) in red.candidates.iter().enumerate() {
        println!(
            "  θ{n}: {}",
            c.display(&red.source_schema, &red.target_schema)
        );
    }

    // The appendix's equivalence, spot-checked on a few selections.
    let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
    let objective = Objective::new(&model, ObjectiveWeights::unweighted());
    println!("\nclosed-form vs generic objective:");
    for sel in [vec![], vec![0, 2, 4], vec![0, 1, 2, 3, 4, 5]] {
        let closed = closed_form_objective(&sc, &sel);
        let generic = objective.value(&sel);
        assert!((closed - generic).abs() < 1e-9);
        println!("  F({sel:?}) = {closed} (both)");
    }

    // Exact search finds a minimum cover...
    let weights = ObjectiveWeights::unweighted();
    let exact = BranchBound::default()
        .select(&model, &weights)
        .expect("selector runs");
    println!(
        "\nbranch-and-bound: {:?}, F = {} (≤ 2n = {} ⟺ YES instance)",
        exact.selected, exact.objective, red.threshold
    );
    assert!(is_cover_within_bound(&sc, &exact.selected));
    assert!(exact.objective <= red.threshold);

    // ...and so does the PSL relaxation after rounding.
    let psl = PslCollective::default()
        .select(&model, &weights)
        .expect("selector runs");
    println!(
        "psl-collective:   {:?}, F = {}",
        psl.selected, psl.objective
    );
    assert!(is_cover_within_bound(&sc, &psl.selected));

    // Greedy also covers, but may pay for an extra set on adversarial
    // families; report rather than assert.
    let greedy = Greedy.select(&model, &weights).expect("selector runs");
    println!(
        "greedy:           {:?}, F = {}",
        greedy.selected, greedy.objective
    );
    println!("\nmapping selection is NP-hard: this construction is the appendix §III proof.");
}

//! Quickstart: the paper's running example, end to end.
//!
//! Reconstructs appendix §I — two candidate mappings θ1 and θ3 over a
//! project-management schema pair — prints the exact objective table from
//! the appendix, and shows how more data flips the optimal selection from
//! the empty mapping to θ3.
//!
//! Run with: `cargo run --example quickstart`

use cms::prelude::*;

fn main() {
    // --- schemas -----------------------------------------------------
    let mut src = Schema::new("source");
    src.add_relation("proj", &["name", "code", "firm"]);
    src.add_relation("team", &["pcode", "emp"]);
    let mut tgt = Schema::new("target");
    tgt.add_relation("task", &["pname", "emp", "oid"]);
    tgt.add_relation("org", &["oid", "firm"]);
    println!("{src}\n\n{tgt}\n");

    // --- candidate mappings -----------------------------------------
    let theta1 = parse_tgd("proj(x,c,f) & team(c,e) -> task(x,e,o)", &src, &tgt).unwrap();
    let theta3 = parse_tgd(
        "proj(x,c,f) & team(c,e) -> task(x,e,o) & org(o,f)",
        &src,
        &tgt,
    )
    .unwrap();
    println!("θ1: {}", theta1.display(&src, &tgt));
    println!("θ3: {}\n", theta3.display(&src, &tgt));

    // --- the data example of appendix §I ------------------------------
    let proj = src.rel_id("proj").unwrap();
    let team = src.rel_id("team").unwrap();
    let task = tgt.rel_id("task").unwrap();
    let org = tgt.rel_id("org").unwrap();

    let mut i = Instance::new();
    i.insert_ground(proj, &["BigData", "7", "IBM"]);
    i.insert_ground(proj, &["ML", "9", "SAP"]);
    i.insert_ground(team, &["7", "Bob"]);
    i.insert_ground(team, &["9", "Alice"]);

    let mut j = Instance::new();
    j.insert_ground(task, &["ML", "Alice", "111"]);
    j.insert_ground(org, &["111", "SAP"]);
    j.insert_ground(task, &["Web", "Carol", "333"]);
    j.insert_ground(org, &["444", "Oracle"]);

    let candidates = vec![theta1, theta3];
    let model = CoverageModel::build(&i, &j, &candidates);
    let objective = Objective::new(&model, ObjectiveWeights::unweighted());

    // --- the appendix's objective table --------------------------------
    println!("Objective Eq. (9), per selection (appendix §I table):");
    println!(
        "{:<12} {:>14} {:>9} {:>6} {:>9}",
        "M", "Σ 1−explains", "Σ error", "size", "Eq.(9)"
    );
    for (label, sel) in [
        ("{}", vec![]),
        ("{θ1}", vec![0]),
        ("{θ3}", vec![1]),
        ("{θ1,θ3}", vec![0usize, 1]),
    ] {
        let (u, e, s) = objective.components(&sel);
        println!(
            "{label:<12} {u:>14.3} {e:>9.0} {s:>6.0} {:>9.3}",
            objective.value(&sel)
        );
    }

    // --- selectors agree on the optimum --------------------------------
    let weights = ObjectiveWeights::unweighted();
    for selector in selectors() {
        let sel = selector.select(&model, &weights).expect("selector runs");
        println!(
            "{:<16} -> {:?}  F = {:.3}",
            selector.name(),
            sel.selected,
            sel.objective
        );
    }
    println!("(the empty mapping wins: the example data is too small — the overfitting guard)\n");

    // --- the appendix's flip: five more ML-like projects ----------------
    for n in 0..5 {
        let name = format!("X{n}");
        i.insert_ground(proj, &[&name, "9", "SAP"]);
        j.insert_ground(task, &[&name, "Alice", "111"]);
    }
    let model = CoverageModel::build(&i, &j, &candidates);
    let objective = Objective::new(&model, weights);
    println!("After adding five more projects of the ML kind:");
    for (label, sel) in [("{}", vec![]), ("{θ1}", vec![0]), ("{θ3}", vec![1])] {
        println!("  F({label}) = {:.3}", objective.value(&sel));
    }
    let psl = PslCollective::default()
        .select(&model, &weights)
        .expect("selector runs");
    println!(
        "psl-collective now selects {:?} (θ3), F = {:.3}",
        psl.selected, psl.objective
    );
    assert_eq!(psl.selected, vec![1]);
}

fn selectors() -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(Exhaustive::default()),
        Box::new(BranchBound::default()),
        Box::new(Greedy),
        Box::new(LocalSearch::default()),
        Box::new(PslCollective::default()),
        Box::new(IndependentBaseline),
    ]
}

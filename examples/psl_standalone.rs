//! The PSL engine as a standalone library: collective classification on a
//! small social network (the "smokers" example every PSL tutorial uses).
//!
//! Nothing here involves schema mapping — this demonstrates that
//! `cms-psl` is a general hinge-loss MRF engine: closed evidence
//! predicates, open query predicates, weighted logical rules, a hard
//! mutual-exclusion arithmetic rule, and MAP inference.
//!
//! Run with: `cargo run --example psl_standalone`

use cms::psl::{
    rvar, AdmmConfig, ArithRuleBuilder, GroundAtom, Program, RAtom, RTerm, RuleBuilder, Vocabulary,
};

fn main() {
    let mut vocab = Vocabulary::new();
    let friend = vocab.closed("friend", 2);
    let stress = vocab.closed("stress", 1);
    let smokes = vocab.open("smokes", 1);
    let cancer_risk = vocab.open("cancerRisk", 1);

    let mut program = Program::new(vocab);

    // Evidence: a small friendship graph and who is stressed.
    let people = ["anna", "bob", "carol", "dave", "erin"];
    let friendships = [
        ("anna", "bob"),
        ("bob", "carol"),
        ("carol", "dave"),
        ("dave", "erin"),
        ("anna", "carol"),
    ];
    for (a, b) in friendships {
        program
            .db
            .observe(GroundAtom::from_strs(friend, &[a, b]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(friend, &[b, a]), 1.0);
    }
    program
        .db
        .observe(GroundAtom::from_strs(stress, &["anna"]), 1.0);
    program
        .db
        .observe(GroundAtom::from_strs(stress, &["erin"]), 0.6);
    for p in people {
        program.db.target(GroundAtom::from_strs(smokes, &[p]));
        program.db.target(GroundAtom::from_strs(cancer_risk, &[p]));
    }

    // w=3.0 : stress(P) → smokes(P)
    program.add_rule(
        RuleBuilder::new("stress-smokes")
            .body(stress, vec![rvar("P")])
            .head(smokes, vec![rvar("P")])
            .weight(3.0)
            .build(),
    );
    // w=0.7 : friend(P,Q) ∧ smokes(P) → smokes(Q)   (peer influence)
    program.add_rule(
        RuleBuilder::new("peer-influence")
            .body(friend, vec![rvar("P"), rvar("Q")])
            .body(smokes, vec![rvar("P")])
            .head(smokes, vec![rvar("Q")])
            .weight(0.7)
            .build(),
    );
    // w=1.0 : smokes(P) → cancerRisk(P)
    program.add_rule(
        RuleBuilder::new("smoking-risk")
            .body(smokes, vec![rvar("P")])
            .head(cancer_risk, vec![rvar("P")])
            .weight(1.0)
            .build(),
    );
    // w=0.3 priors toward not smoking / no risk.
    for (name, pred) in [("prior-smokes", smokes), ("prior-risk", cancer_risk)] {
        program.add_rule(
            RuleBuilder::new(name)
                .body(pred, vec![rvar("P")])
                .weight(0.3)
                .build(),
        );
    }
    // Arithmetic rule: risk is bounded by smoking level (hard):
    //   cancerRisk(P) − smokes(P) ≤ 0.
    let ratom = |pred, v: &str| RAtom {
        pred,
        args: vec![RTerm::Var(v.to_owned())],
    };
    program.add_arith_rule(
        ArithRuleBuilder::new("risk-cap")
            .term(1.0, vec![ratom(cancer_risk, "P")])
            .term(-1.0, vec![ratom(smokes, "P")])
            .build()
            .expect("risk-cap rule is valid"),
    );

    let ground = program.ground().expect("program grounds");
    println!(
        "ground model: {} variables, {} potentials, {} constraints",
        ground.num_vars(),
        ground.potentials.len(),
        ground.constraints.len()
    );
    let solution = ground.solve(&AdmmConfig::default());
    println!(
        "ADMM: {} iterations, converged = {}, MAP objective = {:.3}\n",
        solution.admm.iterations,
        solution.admm.converged,
        solution.total_objective()
    );

    println!("{:<8} {:>8} {:>12}", "person", "smokes", "cancerRisk");
    for p in people {
        let s = solution
            .value(&ground, &GroundAtom::from_strs(smokes, &[p]))
            .unwrap_or(0.0);
        let r = solution
            .value(&ground, &GroundAtom::from_strs(cancer_risk, &[p]))
            .unwrap_or(0.0);
        println!("{p:<8} {s:>8.3} {r:>12.3}");
        assert!(r <= s + 1e-3, "hard cap must hold");
    }
    // Stressed anna smokes most; influence decays over the graph.
    let val = |p: &str| {
        solution
            .value(&ground, &GroundAtom::from_strs(smokes, &[p]))
            .unwrap()
    };
    assert!(
        val("anna") >= val("dave") - 1e-6,
        "influence decays with distance"
    );
    assert!(
        val("anna") > 0.5,
        "stressed anna should smoke: {}",
        val("anna")
    );
    println!("\n(risk ≤ smoking everywhere: the hard arithmetic rule held.)");
}

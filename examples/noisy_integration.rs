//! Selection under noise: an iBench-style scenario with all three noise
//! knobs turned on, evaluated with every selector.
//!
//! This is the shape of the paper's main experiments in miniature: noisy
//! correspondences inflate the candidate set, data noise makes the gold
//! mapping imperfect, and the collective selector must still find a
//! near-gold mapping.
//!
//! Run with: `cargo run --release --example noisy_integration`

use cms::prelude::*;

fn main() {
    let config = ScenarioConfig {
        noise: NoiseConfig {
            pi_corresp: 50.0,
            pi_errors: 25.0,
            pi_unexplained: 25.0,
        },
        seed: 20170419,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let s = &scenario.stats;
    println!(
        "scenario: {} invocations over all 7 iBench primitives",
        s.invocations
    );
    println!(
        "  schemas: {} source rels, {} target rels | correspondences: {} true + {} noise",
        s.source_rels, s.target_rels, s.true_corrs, s.noise_corrs
    );
    println!(
        "  candidates: {} (gold = {}) | data: |I| = {}, |J| = {} ({} deleted, {} added)",
        s.candidates,
        s.gold_size,
        s.source_tuples,
        s.target_tuples,
        s.data_noise.deleted,
        s.data_noise.added
    );
    println!("\ngold mapping:");
    for g in scenario.gold_tgds() {
        println!(
            "  {}",
            g.display(&scenario.source_schema, &scenario.target_schema)
        );
    }

    let weights = ObjectiveWeights::unweighted();
    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(FixedSelection::new("gold-oracle", scenario.gold.clone())),
        Box::new(FixedSelection::all(scenario.candidates.len())),
        Box::new(IndependentBaseline),
        Box::new(Greedy),
        Box::new(LocalSearch::default()),
        Box::new(PslCollective::default()),
    ];

    println!(
        "\n{:<16} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "selector", "|M|", "F", "map-P", "map-R", "map-F1", "data-F1", "time"
    );
    for selector in selectors {
        let outcome =
            evaluate_scenario(&scenario, selector.as_ref(), &weights).expect("selector runs");
        println!(
            "{:<16} {:>8} {:>7.1} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.1?}",
            outcome.selector,
            outcome.selection.selected.len(),
            outcome.selection.objective,
            outcome.mapping.precision,
            outcome.mapping.recall,
            outcome.mapping.f1,
            outcome.data.f1,
            outcome.wall,
        );
    }
    println!("\n(gold-oracle F is not 0 under noise: the paper's point — under data noise");
    println!(" even the true mapping leaves errors and unexplained tuples behind.)");
}

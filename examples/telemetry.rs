//! The unified telemetry layer end to end: run the full pipeline (chase →
//! ground → reground → solve) under the `cms-obs` event journal, force one
//! degradation-ladder rung via the fault harness, and export what was
//! recorded.
//!
//! Run with: `CMS_OBS=journal cargo run --release --example telemetry`
//!
//! Writes the JSONL journal to `telemetry.jsonl` (or the path given as the
//! first argument) and prints the metrics snapshot plus — at
//! `CMS_OBS=spans` or higher — the span/event tree. At lower `CMS_OBS`
//! levels the run still works; it just records less.

use cms::obs;
use cms::prelude::*;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "telemetry.jsonl".to_owned());
    println!("telemetry level: {}", obs::level().name());

    let before = obs::registry().snapshot();

    // A noisy scenario: generation chases the gold mapping and the noise
    // model over it (chase events), model building chases every candidate.
    let config = ScenarioConfig {
        noise: NoiseConfig::uniform(25.0),
        seed: 20170419,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);

    // Force rung 1 of the self-healing ladder on the first warm solve:
    // the armed fault NaN-poisons the first carried dual vector, the
    // `all_finite` guard drops it, and the journal gets both the fault
    // and the degradation event.
    cms::psl::fault::arm(cms::psl::Fault::PoisonDuals);

    // Local search mirrors every accepted flip through the warm
    // relaxation: one reground + one warm ADMM solve per move.
    let outcome = evaluate_scenario(
        &scenario,
        &LocalSearch::default(),
        &ObjectiveWeights::unweighted(),
    )
    .expect("pipeline runs");
    cms::psl::fault::disarm();

    println!(
        "selector {}: F = {:.3}, mapping F1 = {:.3} ({} evaluations)",
        outcome.selector,
        outcome.selection.objective,
        outcome.mapping.f1,
        outcome.selection.evaluations
    );
    println!("note: {}", outcome.selection.note);

    // Metrics: what this run added to the process-wide registry.
    let diff = obs::registry().snapshot().diff(&before);
    if diff.counters.is_empty() {
        println!("\nno counters recorded (set CMS_OBS=stats or higher)");
    } else {
        println!("\ncounters recorded by this run:");
        for (name, value) in &diff.counters {
            println!("  {name} = {value}");
        }
    }

    // Journal + spans: export the ring's window (header line first, so
    // the drop accounting travels with the records) and render.
    let snapshot = obs::drain_journal_snapshot();
    let events = snapshot.records.clone();
    let spans = obs::drain_spans();
    if events.is_empty() {
        println!("\nno journal events (set CMS_OBS=journal); nothing written");
        return;
    }
    let mut kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    println!(
        "\njournal: {} events ({}) across {} spans, {} dropped by the ring",
        events.len(),
        kinds.join(", "),
        spans.len(),
        snapshot.header.events_dropped
    );
    std::fs::write(&out_path, snapshot.to_jsonl()).expect("journal written");
    println!("JSONL journal written to {out_path}");
    if !spans.is_empty() {
        println!(
            "\nspan tree with events:\n{}",
            obs::render_tree(&spans, &events)
        );
    }
}

//! Weight learning: tune the objective weights (w1, w2, w3) on labeled
//! training scenarios, evaluate on held-out ones.
//!
//! The appendix's NP-hardness section introduces the weighted objective
//! `w1·unexplained + w2·errors + w3·size`; this example shows why the
//! weights matter in practice — under asymmetric noise the unweighted
//! objective is not the best operating point — and how the supervised
//! grid search of `cms::select::learn` picks a better one.
//!
//! Run with: `cargo run --release --example weight_tuning`

use cms::prelude::*;
use cms::select::learn::{learn_weights, LearnMetric, WeightGrid};

fn batch(seeds: &[u64]) -> Vec<Scenario> {
    seeds
        .iter()
        .map(|&seed| {
            generate(&ScenarioConfig {
                rows_per_relation: 12,
                // Asymmetric noise: many spurious candidates, some missing
                // target data — exactly when leaning on w2/w3 pays off.
                noise: NoiseConfig {
                    pi_corresp: 75.0,
                    pi_errors: 30.0,
                    pi_unexplained: 5.0,
                },
                seed,
                ..ScenarioConfig::all_primitives(1)
            })
        })
        .collect()
}

fn mean_f1(scenarios: &[Scenario], weights: &ObjectiveWeights) -> (f64, f64) {
    let selector = PslCollective::default();
    let (mut map_f1, mut data_f1) = (0.0, 0.0);
    for s in scenarios {
        let o = evaluate_scenario(s, &selector, weights).expect("selector runs");
        map_f1 += o.mapping.f1 / scenarios.len() as f64;
        data_f1 += o.data.f1 / scenarios.len() as f64;
    }
    (map_f1, data_f1)
}

fn main() {
    let train = batch(&[101, 102, 103]);
    let test = batch(&[900, 901, 902]);
    println!(
        "training on {} scenarios, evaluating on {} held-out scenarios\n",
        train.len(),
        test.len()
    );

    let learned = learn_weights(
        &train,
        &PslCollective::default(),
        &WeightGrid::default(),
        LearnMetric::MappingF1,
    )
    .expect("weight learning runs");
    println!("grid search over {} weight settings:", learned.evaluated);
    println!(
        "  default  w = (1.00, 1.00, 1.00)  train mapping-F1 = {:.3}",
        learned.default_score
    );
    println!(
        "  learned  w = ({:.2}, {:.2}, {:.2})  train mapping-F1 = {:.3}\n",
        learned.weights.w_explain,
        learned.weights.w_error,
        learned.weights.w_size,
        learned.train_score
    );

    let (map_default, data_default) = mean_f1(&test, &ObjectiveWeights::unweighted());
    let (map_learned, data_learned) = mean_f1(&test, &learned.weights);
    println!("held-out evaluation:");
    println!("  default : mapping-F1 = {map_default:.3}  data-F1 = {data_default:.3}");
    println!("  learned : mapping-F1 = {map_learned:.3}  data-F1 = {data_learned:.3}");

    assert!(
        learned.train_score >= learned.default_score - 1e-12,
        "learning must not lose on its own training data"
    );
}

//! A realistic migration: project-management suite → task-tracker SaaS.
//!
//! Demonstrates the full metadata pipeline on hand-built schemas: foreign
//! keys, attribute correspondences (with two spurious matches a sloppy
//! schema matcher might produce), Clio-style candidate generation, data
//! exchange, and collective selection — then prints which mapping the
//! system would ship.
//!
//! Run with: `cargo run --example project_management`

use cms::prelude::*;
use cms_data::ForeignKey;

fn main() {
    // --- source: a classical project-management schema ------------------
    let mut src = Schema::new("pm_suite");
    let dept = src.add_relation_full("department", &["did", "dname"], &[0], Vec::new());
    let employee = src.add_relation_full(
        "employee",
        &["eid", "ename", "dept"],
        &[0],
        vec![ForeignKey {
            cols: vec![2],
            target: dept,
            target_cols: vec![0],
        }],
    );
    let project = src.add_relation_full("project", &["pid", "pname", "budget"], &[0], Vec::new());
    let _assignment = src.add_relation_full(
        "assignment",
        &["proj", "emp", "role"],
        &[],
        vec![
            ForeignKey {
                cols: vec![0],
                target: project,
                target_cols: vec![0],
            },
            ForeignKey {
                cols: vec![1],
                target: employee,
                target_cols: vec![0],
            },
        ],
    );

    // --- target: a task-tracker SaaS -------------------------------------
    let mut tgt = Schema::new("tracker");
    let workspace = tgt.add_relation_full("workspace", &["wid", "title"], &[0], Vec::new());
    let _ticket = tgt.add_relation_full(
        "ticket",
        &["tid", "summary", "assignee", "ws"],
        &[0],
        vec![ForeignKey {
            cols: vec![3],
            target: workspace,
            target_cols: vec![0],
        }],
    );
    println!("{src}\n\n{tgt}\n");

    // --- correspondences: mostly right, two spurious ----------------------
    let mut matches = vec![
        corr(&src, "project", "pname", &tgt, "workspace", "title"),
        corr(&src, "assignment", "role", &tgt, "ticket", "summary"),
        corr(&src, "employee", "ename", &tgt, "ticket", "assignee"),
    ];
    // Spurious: a matcher confusing department names with workspace titles
    // and project budgets with ticket summaries.
    matches.push(corr(
        &src,
        "department",
        "dname",
        &tgt,
        "workspace",
        "title",
    ));
    matches.push(corr(&src, "project", "budget", &tgt, "ticket", "summary"));

    let candidates = generate_candidates(&src, &tgt, &matches, &CandGenConfig::default());
    println!(
        "Clio-style generation produced {} candidates:",
        candidates.len()
    );
    for (n, c) in candidates.iter().enumerate() {
        println!("  θ{n}: {}", c.display(&src, &tgt));
    }

    // --- data: I from operations, J from the tracker we migrated by hand --
    let mut i = Instance::new();
    i.insert_ground(dept, &["d1", "Research"]);
    i.insert_ground(dept, &["d2", "Platform"]);
    for (eid, ename, d) in [
        ("e1", "Alice", "d1"),
        ("e2", "Bob", "d1"),
        ("e3", "Carol", "d2"),
        ("e4", "Dave", "d2"),
    ] {
        i.insert_ground(employee, &[eid, ename, d]);
    }
    for (pid, pname, budget) in [
        ("p1", "Curiosity", "100"),
        ("p2", "Atlas", "250"),
        ("p3", "Beacon", "80"),
    ] {
        i.insert_ground(project, &[pid, pname, budget]);
    }
    let assignment = src.rel_id("assignment").unwrap();
    for (p, e, role) in [
        ("p1", "e1", "lead"),
        ("p1", "e2", "dev"),
        ("p2", "e3", "lead"),
        ("p2", "e4", "dev"),
        ("p3", "e1", "advisor"),
    ] {
        i.insert_ground(assignment, &[p, e, role]);
    }

    // The "hand-migrated" target: what the gold mapping
    //   assignment ⋈ project ⋈ employee → ticket ⋈ workspace
    // would produce. We build it by exchanging with the intended mapping
    // and grounding the invented ids.
    let gold = parse_tgd(
        "assignment(p, e, r) & project(p, n, b) & employee(e, en, d) \
         -> ticket(t, r, en, w) & workspace(w, n)",
        &src,
        &tgt,
    )
    .unwrap();
    let mut counter = 0u64;
    let j = ground_instance(&chase(&i, std::slice::from_ref(&gold)), "sk", &mut counter);
    println!(
        "\n|I| = {} tuples, |J| = {} tuples",
        i.total_len(),
        j.total_len()
    );

    // --- collective selection ---------------------------------------------
    let model = CoverageModel::build(&i, &j, &candidates);
    let weights = ObjectiveWeights::unweighted();
    let outcome = PslCollective::default()
        .select(&model, &weights)
        .expect("selector runs");
    println!(
        "\npsl-collective selected {:?} with F = {:.3}:",
        outcome.selected, outcome.objective
    );
    for &idx in &outcome.selected {
        println!("  θ{idx}: {}", candidates[idx].display(&src, &tgt));
    }

    // The selected mapping must reproduce the gold mapping's exchange
    // output (compared as null-canonicalized patterns).
    let chosen: Vec<StTgd> = outcome
        .selected
        .iter()
        .map(|&n| candidates[n].clone())
        .collect();
    let k = chase(&i, &chosen);
    let k_gold = chase(&i, std::slice::from_ref(&gold));
    let (kp, gp) = (pattern_multiset(&k), pattern_multiset(&k_gold));
    let overlap = cms_data::multiset_overlap(&kp, &gp);
    println!(
        "\nexchanged-instance agreement with gold: {overlap} shared patterns / {} produced / {} expected",
        kp.values().sum::<usize>(),
        gp.values().sum::<usize>()
    );
    assert_eq!(
        overlap,
        gp.values().sum::<usize>(),
        "selected mapping reproduces the gold exchange"
    );
    let exact = BranchBound::default()
        .select(&model, &weights)
        .expect("selector runs");
    assert!(
        (outcome.objective - exact.objective).abs() < 1e-9,
        "PSL must match the exact optimum here"
    );
    println!(
        "branch-and-bound confirms the optimum (F = {:.3})",
        exact.objective
    );
}

//! `cms-fault` — seeded deterministic fault-injection plans.
//!
//! The `cms_psl::fault` module provides the *primitives*: thread-local,
//! one-shot hooks that corrupt exactly one operation of the incremental
//! solve pipeline. This crate provides the *harness* on top: a
//! [`FaultPlan`] maps a seed to a reproducible sequence of faults, so a
//! recovery test suite (or a CI matrix leg via `CMS_FAULT_SEED`) can
//! hammer the pipeline with every fault class in a shuffled order and
//! assert that each one is detected, degrades down the documented ladder
//! rung, and still ends at the fault-free result. See `docs/robustness.md`
//! for the fault → guard → rung table.
//!
//! The permutation is derived with an inline splitmix64 — no RNG
//! dependency — and two equal seeds always produce the identical plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cms_psl::fault::{arm, armed, disarm, Fault};

/// Every injectable fault, in declaration order. [`FaultPlan::from_seed`]
/// permutes this set; tests can also iterate it directly to cover each
/// class exactly once.
pub const ALL_FAULTS: [Fault; 6] = [
    Fault::PoisonDuals,
    Fault::DropDeltaEntry,
    Fault::DuplicateDeltaEntry,
    Fault::CorruptSpliceOrdinal,
    Fault::InvalidateIndex,
    Fault::SolverStall,
];

/// The environment variable [`FaultPlan::from_env`] reads the seed from.
pub const SEED_ENV: &str = "CMS_FAULT_SEED";

/// splitmix64: the standard 64-bit finalizer-style mixer. Deterministic,
/// dependency-free, and plenty for shuffling six elements.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, reproducible schedule of faults to inject, one per pipeline
/// step. Two plans built from the same seed are identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Derive a plan from a seed: a Fisher–Yates shuffle of
    /// [`ALL_FAULTS`] driven by splitmix64. Every fault class appears
    /// exactly once, so a suite that walks the whole plan covers every
    /// guard regardless of the seed.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut state = seed;
        let mut faults = ALL_FAULTS.to_vec();
        for i in (1..faults.len()).rev() {
            // `% (i+1)` is negligibly biased for n = 6; determinism is
            // what matters here, not uniformity.
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            faults.swap(i, j);
        }
        FaultPlan { seed, faults }
    }

    /// Build a plan from the [`SEED_ENV`] environment variable. Returns
    /// `None` when the variable is unset; a set-but-malformed value also
    /// yields `None` (with a warning on stderr) rather than silently
    /// testing a different schedule than the caller asked for.
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var(SEED_ENV).ok()?;
        match raw.trim().parse::<u64>() {
            Ok(seed) => Some(FaultPlan::from_seed(seed)),
            Err(_) => {
                eprintln!("warning: ignoring malformed {SEED_ENV}={raw:?} (expected a u64)");
                None
            }
        }
    }

    /// The seed this plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full fault schedule, in injection order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Arm the fault for step `step` (wrapping past the end of the plan)
    /// on the current thread and return it. The caller performs the
    /// pipeline step, asserts recovery, and should [`disarm`] before the
    /// next step so an un-consumed fault never leaks across scenarios.
    pub fn arm_step(&self, step: usize) -> Fault {
        let fault = self.faults[step % self.faults.len()];
        arm(fault);
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(FaultPlan::from_seed(1), FaultPlan::from_seed(1));
        assert_eq!(FaultPlan::from_seed(42), FaultPlan::from_seed(42));
    }

    #[test]
    fn every_plan_covers_every_fault_class() {
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed);
            assert_eq!(plan.faults().len(), ALL_FAULTS.len());
            for f in ALL_FAULTS {
                assert!(plan.faults().contains(&f), "seed {seed} misses {f:?}");
            }
        }
    }

    #[test]
    fn seeds_produce_different_orders() {
        // Not a hard guarantee for any fixed pair, but across 16 seeds at
        // least two of the 720 orderings must appear.
        let first = FaultPlan::from_seed(0);
        assert!(
            (1..16).any(|s| FaultPlan::from_seed(s).faults() != first.faults()),
            "all seeds produced the identical order"
        );
    }

    #[test]
    fn arm_step_wraps_and_arms() {
        let plan = FaultPlan::from_seed(7);
        let f0 = plan.arm_step(0);
        assert_eq!(armed(), Some(f0));
        disarm();
        assert_eq!(plan.arm_step(ALL_FAULTS.len()), f0, "wraps modulo len");
        disarm();
    }
}

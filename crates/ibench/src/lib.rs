//! `cms-ibench` — iBench-style scenario generation for mapping-selection
//! experiments.
//!
//! Re-implements the scenario generator of the paper's evaluation
//! (appendix §II): seven iBench primitives (CP, ADD, DL, ADL, ME, VP, VNM)
//! with range parameters (2,4), source-instance generation, data exchange
//! with the gold mapping, Clio-style candidate generation over true +
//! spurious correspondences, and the three noise knobs πCorresp, πErrors,
//! πUnexplained. See DESIGN.md §5 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod data_gen;
pub mod noise;
pub mod primitive;
pub mod scenario;

pub use config::{NoiseConfig, ScenarioConfig};
pub use data_gen::populate_source;
pub use noise::{
    apply_data_noise, ground_instance, ground_tuple, noise_correspondences, DataNoiseReport,
};
pub use primitive::{instantiate, Invocation, Primitive};
pub use scenario::{generate, Scenario, ScenarioStats};

//! The seven iBench mapping primitives used by the paper (appendix §II).
//!
//! Each invocation of a primitive contributes fresh source and target
//! relations, the gold st tgd(s) relating them, and the true attribute
//! correspondences a perfect schema matcher would produce.
//!
//! | Primitive | Effect |
//! |-----------|--------|
//! | CP   | copy a source relation under a new name |
//! | ADD  | copy + add 2–4 new (existential) attributes |
//! | DL   | copy + remove 2–4 attributes |
//! | ADL  | copy + add and remove attributes |
//! | ME   | join two source relations into one target relation |
//! | VP   | vertically partition one source relation into two joined target relations |
//! | VNM  | like VP but with an N-to-M join relation in between |

use crate::config::ScenarioConfig;
use cms_candgen::Correspondence;
use cms_data::{AttrRef, ForeignKey, RelId, Schema};
use cms_tgd::{var, StTgd, TgdBuilder};
use rand::Rng;
use std::fmt;

/// The primitive kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Primitive {
    /// Copy.
    Cp,
    /// Copy and add attributes.
    Add,
    /// Copy and delete attributes.
    Dl,
    /// Copy, add, and delete attributes.
    Adl,
    /// Merge (join) two source relations.
    Me,
    /// Vertical partitioning into two target relations.
    Vp,
    /// Vertical partitioning with an N-to-M bridge relation.
    Vnm,
}

impl Primitive {
    /// All seven primitives, in the appendix's order.
    pub const ALL: [Primitive; 7] = [
        Primitive::Cp,
        Primitive::Add,
        Primitive::Dl,
        Primitive::Adl,
        Primitive::Me,
        Primitive::Vp,
        Primitive::Vnm,
    ];

    /// Short lowercase name (used in generated relation names).
    pub fn name(self) -> &'static str {
        match self {
            Primitive::Cp => "cp",
            Primitive::Add => "add",
            Primitive::Dl => "dl",
            Primitive::Adl => "adl",
            Primitive::Me => "me",
            Primitive::Vp => "vp",
            Primitive::Vnm => "vnm",
        }
    }

    /// One-line description (documentation / experiment tables).
    pub fn description(self) -> &'static str {
        match self {
            Primitive::Cp => "copies a source relation to the target, changing its name",
            Primitive::Add => "copies a source relation and adds attributes",
            Primitive::Dl => "copies a source relation and removes attributes",
            Primitive::Adl => "adds and removes attributes on the same relation",
            Primitive::Me => "copies two relations, after joining them, to form a target relation",
            Primitive::Vp => "copies a source relation to form two, joined, target relations",
            Primitive::Vnm => "like VP with an extra relation forming an N-to-M relationship",
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Primitive::Cp => "CP",
            Primitive::Add => "ADD",
            Primitive::Dl => "DL",
            Primitive::Adl => "ADL",
            Primitive::Me => "ME",
            Primitive::Vp => "VP",
            Primitive::Vnm => "VNM",
        })
    }
}

/// Everything one primitive invocation contributed to the scenario.
#[derive(Clone, Debug)]
pub struct Invocation {
    /// The primitive kind.
    pub primitive: Primitive,
    /// Unique label, e.g. `me3`.
    pub label: String,
    /// Source relations created.
    pub source_rels: Vec<RelId>,
    /// Target relations created.
    pub target_rels: Vec<RelId>,
    /// The gold st tgds of this invocation.
    pub gold: Vec<StTgd>,
    /// The true correspondences of this invocation.
    pub correspondences: Vec<Correspondence>,
}

/// Instantiate `primitive` as invocation number `idx`, extending both
/// schemas. Arities and add/remove counts are drawn from the config ranges.
pub fn instantiate(
    primitive: Primitive,
    idx: usize,
    src: &mut Schema,
    tgt: &mut Schema,
    rng: &mut impl Rng,
    cfg: &ScenarioConfig,
) -> Invocation {
    let label = format!("{}{}", primitive.name(), idx);
    let arity = rng
        .gen_range(cfg.source_arity.0..=cfg.source_arity.1)
        .max(2);
    let change = rng.gen_range(cfg.attr_change_range.0..=cfg.attr_change_range.1);
    match primitive {
        Primitive::Cp => copy_family(&label, arity, 0, arity, src, tgt),
        Primitive::Add => copy_family(&label, arity, change, arity, src, tgt),
        Primitive::Dl => {
            let keep = arity.saturating_sub(change).max(1);
            copy_family(&label, arity, 0, keep, src, tgt)
        }
        Primitive::Adl => {
            let keep = arity.saturating_sub(change).max(1);
            copy_family(&label, arity, change, keep, src, tgt)
        }
        Primitive::Me => merge(&label, arity, rng.gen_range(2..=arity.max(2)), src, tgt),
        Primitive::Vp => partition(&label, arity, src, tgt, false),
        Primitive::Vnm => partition(&label, arity, src, tgt, true),
    }
}

fn attr_names(prefix: &str, kind: char, n: usize) -> Vec<String> {
    (0..n).map(|j| format!("{prefix}_{kind}{j}")).collect()
}

fn as_str_refs(names: &[String]) -> Vec<&str> {
    names.iter().map(String::as_str).collect()
}

/// CP / ADD / DL / ADL: one source relation of arity `n`; the target keeps
/// the first `keep` attributes and appends `added` fresh (existential)
/// attributes.
fn copy_family(
    label: &str,
    n: usize,
    added: usize,
    keep: usize,
    src: &mut Schema,
    tgt: &mut Schema,
) -> Invocation {
    let primitive = match (added > 0, keep < n) {
        (false, false) => Primitive::Cp,
        (true, false) => Primitive::Add,
        (false, true) => Primitive::Dl,
        (true, true) => Primitive::Adl,
    };
    let s_attrs = attr_names(label, 'a', n);
    let s = src.add_relation(&format!("{label}_s"), &as_str_refs(&s_attrs));
    let mut t_attrs = attr_names(label, 'b', keep);
    t_attrs.extend(attr_names(label, 'x', added));
    let t = tgt.add_relation(&format!("{label}_t"), &as_str_refs(&t_attrs));

    let mut builder = TgdBuilder::new();
    let body_args: Vec<_> = (0..n).map(|j| var(format!("x{j}"))).collect();
    builder = builder.body(s, &body_args);
    let mut head_args: Vec<_> = (0..keep).map(|j| var(format!("x{j}"))).collect();
    head_args.extend((0..added).map(|j| var(format!("e{j}"))));
    builder = builder.head(t, &head_args);
    let gold = builder.build();

    let correspondences = (0..keep)
        .map(|j| Correspondence::new(AttrRef::new(s, j), AttrRef::new(t, j)))
        .collect();
    Invocation {
        primitive,
        label: label.to_owned(),
        source_rels: vec![s],
        target_rels: vec![t],
        gold: vec![gold],
        correspondences,
    }
}

/// ME: `s1(k, a...) ⋈ s2(k→s1.k, b...) → t(k, a..., b...)`.
fn merge(label: &str, n1: usize, n2: usize, src: &mut Schema, tgt: &mut Schema) -> Invocation {
    let s1_attrs = attr_names(label, 'a', n1);
    let s1 = src.add_relation_full(
        &format!("{label}_s1"),
        &as_str_refs(&s1_attrs),
        &[0],
        Vec::new(),
    );
    let s2_attrs = attr_names(label, 'c', n2);
    let s2 = src.add_relation_full(
        &format!("{label}_s2"),
        &as_str_refs(&s2_attrs),
        &[],
        vec![ForeignKey {
            cols: vec![0],
            target: s1,
            target_cols: vec![0],
        }],
    );
    let mut t_attrs = attr_names(label, 'b', n1);
    t_attrs.extend(attr_names(label, 'd', n2 - 1));
    let t = tgt.add_relation(&format!("{label}_t"), &as_str_refs(&t_attrs));

    let mut builder = TgdBuilder::new();
    let s1_args: Vec<_> = (0..n1).map(|j| var(format!("x{j}"))).collect();
    let mut s2_args = vec![var("x0")];
    s2_args.extend((1..n2).map(|j| var(format!("y{j}"))));
    let mut head_args: Vec<_> = (0..n1).map(|j| var(format!("x{j}"))).collect();
    head_args.extend((1..n2).map(|j| var(format!("y{j}"))));
    builder = builder
        .body(s1, &s1_args)
        .body(s2, &s2_args)
        .head(t, &head_args);

    let mut correspondences: Vec<Correspondence> = (0..n1)
        .map(|j| Correspondence::new(AttrRef::new(s1, j), AttrRef::new(t, j)))
        .collect();
    correspondences.extend(
        (1..n2).map(|j| Correspondence::new(AttrRef::new(s2, j), AttrRef::new(t, n1 + j - 1))),
    );
    Invocation {
        primitive: Primitive::Me,
        label: label.to_owned(),
        source_rels: vec![s1, s2],
        target_rels: vec![t],
        gold: vec![builder.build()],
        correspondences,
    }
}

/// VP / VNM: split `s(a0..an-1)` into `t1(k, first half)` and
/// `t2(k, second half)` joined on an invented key; VNM adds a bridge
/// relation `m(k1, k2)` instead of a direct foreign key.
fn partition(label: &str, n: usize, src: &mut Schema, tgt: &mut Schema, nm: bool) -> Invocation {
    let h = (n / 2).max(1);
    let s_attrs = attr_names(label, 'a', n);
    let s = src.add_relation(&format!("{label}_s"), &as_str_refs(&s_attrs));

    let mut t1_attrs = vec![format!("{label}_k1")];
    t1_attrs.extend(attr_names(label, 'b', h));
    let t1 = tgt.add_relation_full(
        &format!("{label}_t1"),
        &as_str_refs(&t1_attrs),
        &[0],
        Vec::new(),
    );

    let mut t2_attrs = vec![format!("{label}_k2")];
    t2_attrs.extend(attr_names(label, 'd', n - h));
    let (t2, bridge) = if nm {
        let t2 = tgt.add_relation_full(
            &format!("{label}_t2"),
            &as_str_refs(&t2_attrs),
            &[0],
            Vec::new(),
        );
        let m = tgt.add_relation_full(
            &format!("{label}_m"),
            &[&format!("{label}_mk1"), &format!("{label}_mk2")],
            &[],
            vec![
                ForeignKey {
                    cols: vec![0],
                    target: t1,
                    target_cols: vec![0],
                },
                ForeignKey {
                    cols: vec![1],
                    target: t2,
                    target_cols: vec![0],
                },
            ],
        );
        (t2, Some(m))
    } else {
        let t2 = tgt.add_relation_full(
            &format!("{label}_t2"),
            &as_str_refs(&t2_attrs),
            &[],
            vec![ForeignKey {
                cols: vec![0],
                target: t1,
                target_cols: vec![0],
            }],
        );
        (t2, None)
    };

    let mut builder = TgdBuilder::new();
    let body_args: Vec<_> = (0..n).map(|j| var(format!("x{j}"))).collect();
    builder = builder.body(s, &body_args);
    let mut t1_args = vec![var("k1")];
    t1_args.extend((0..h).map(|j| var(format!("x{j}"))));
    builder = builder.head(t1, &t1_args);
    let mut t2_args = vec![var(if nm { "k2" } else { "k1" })];
    t2_args.extend((h..n).map(|j| var(format!("x{j}"))));
    if let Some(m) = bridge {
        builder = builder.head(m, &[var("k1"), var("k2")]);
    }
    builder = builder.head(t2, &t2_args);

    let mut correspondences: Vec<Correspondence> = (0..h)
        .map(|j| Correspondence::new(AttrRef::new(s, j), AttrRef::new(t1, j + 1)))
        .collect();
    correspondences.extend(
        (h..n).map(|j| Correspondence::new(AttrRef::new(s, j), AttrRef::new(t2, j - h + 1))),
    );
    let mut target_rels = vec![t1, t2];
    if let Some(m) = bridge {
        target_rels.push(m);
    }
    Invocation {
        primitive: if nm { Primitive::Vnm } else { Primitive::Vp },
        label: label.to_owned(),
        source_rels: vec![s],
        target_rels,
        gold: vec![builder.build()],
        correspondences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(p: Primitive) -> (Schema, Schema, Invocation) {
        let mut src = Schema::new("source");
        let mut tgt = Schema::new("target");
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = ScenarioConfig::default();
        let inv = instantiate(p, 0, &mut src, &mut tgt, &mut rng, &cfg);
        (src, tgt, inv)
    }

    #[test]
    fn cp_copies_all_attributes() {
        let (src, tgt, inv) = run(Primitive::Cp);
        assert_eq!(inv.gold.len(), 1);
        let g = &inv.gold[0];
        assert!(g.is_full());
        assert!(g.validate(&src, &tgt).is_ok());
        let n = src.relation(inv.source_rels[0]).arity();
        assert_eq!(tgt.relation(inv.target_rels[0]).arity(), n);
        assert_eq!(inv.correspondences.len(), n);
    }

    #[test]
    fn add_appends_existentials() {
        let (src, tgt, inv) = run(Primitive::Add);
        let g = &inv.gold[0];
        assert!(!g.is_full());
        assert!(g.validate(&src, &tgt).is_ok());
        let n = src.relation(inv.source_rels[0]).arity();
        let extra = tgt.relation(inv.target_rels[0]).arity() - n;
        assert!((2..=4).contains(&extra));
        assert_eq!(g.existential_vars().len(), extra);
    }

    #[test]
    fn dl_projects_attributes() {
        let (src, tgt, inv) = run(Primitive::Dl);
        let g = &inv.gold[0];
        assert!(g.is_full());
        assert!(g.validate(&src, &tgt).is_ok());
        assert!(
            tgt.relation(inv.target_rels[0]).arity() < src.relation(inv.source_rels[0]).arity()
        );
    }

    #[test]
    fn adl_adds_and_removes() {
        let (src, tgt, inv) = run(Primitive::Adl);
        let g = &inv.gold[0];
        assert!(!g.is_full());
        assert!(g.validate(&src, &tgt).is_ok());
    }

    #[test]
    fn me_joins_two_sources() {
        let (src, tgt, inv) = run(Primitive::Me);
        assert_eq!(inv.source_rels.len(), 2);
        let g = &inv.gold[0];
        assert_eq!(g.body.len(), 2);
        assert_eq!(g.head.len(), 1);
        assert!(g.is_full());
        assert!(g.validate(&src, &tgt).is_ok());
        // FK from s2 to s1 was declared.
        assert_eq!(src.relation(inv.source_rels[1]).fks.len(), 1);
    }

    #[test]
    fn vp_splits_with_shared_existential_key() {
        let (src, tgt, inv) = run(Primitive::Vp);
        let g = &inv.gold[0];
        assert_eq!(g.head.len(), 2);
        assert_eq!(g.existential_vars().len(), 1, "one shared invented key");
        assert!(g.validate(&src, &tgt).is_ok());
        // T2 has an FK to T1.
        assert_eq!(tgt.relation(inv.target_rels[1]).fks.len(), 1);
    }

    #[test]
    fn vnm_adds_bridge_relation() {
        let (src, tgt, inv) = run(Primitive::Vnm);
        let g = &inv.gold[0];
        assert_eq!(g.head.len(), 3);
        assert_eq!(g.existential_vars().len(), 2, "two invented keys");
        assert_eq!(inv.target_rels.len(), 3);
        assert!(g.validate(&src, &tgt).is_ok());
        let bridge = inv.target_rels[2];
        assert_eq!(tgt.relation(bridge).fks.len(), 2);
    }

    #[test]
    fn labels_are_unique_per_invocation() {
        let mut src = Schema::new("source");
        let mut tgt = Schema::new("target");
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = ScenarioConfig::default();
        let a = instantiate(Primitive::Cp, 0, &mut src, &mut tgt, &mut rng, &cfg);
        let b = instantiate(Primitive::Cp, 1, &mut src, &mut tgt, &mut rng, &cfg);
        assert_ne!(a.label, b.label);
        assert_eq!(src.len(), 2);
        assert_eq!(tgt.len(), 2);
    }

    #[test]
    fn display_and_metadata() {
        assert_eq!(Primitive::Vnm.to_string(), "VNM");
        assert_eq!(Primitive::ALL.len(), 7);
        for p in Primitive::ALL {
            assert!(!p.description().is_empty());
            assert!(!p.name().is_empty());
        }
    }
}

//! Scenario assembly: the full metadata + data generation pipeline.
//!
//! A scenario bundles everything a mapping-selection experiment needs:
//!
//! 1. instantiate the configured primitive invocations, building the source
//!    and target schemas, the gold mapping `MG`, and the true
//!    correspondences;
//! 2. generate the source instance `I`;
//! 3. exchange: `J` = ground(chase(I, MG)) — existential nulls become fresh
//!    Skolem constants (iBench ships ground target data; grounding also
//!    gives the covers/support machinery real constants to corroborate);
//! 4. add πCorresp metadata noise;
//! 5. run Clio-style candidate generation over all correspondences and
//!    locate `MG` inside `C` (scenario construction guarantees `MG ⊆ C`);
//! 6. apply πErrors / πUnexplained data noise to `J`.

use crate::config::ScenarioConfig;
use crate::data_gen::populate_source;
use crate::noise::{apply_data_noise, ground_instance, noise_correspondences, DataNoiseReport};
use crate::primitive::{instantiate, Invocation};
use cms_candgen::{generate_candidates, Correspondence};
use cms_data::{Instance, Schema};
use cms_tgd::{canonical_key, chase, StTgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Summary statistics of a generated scenario.
#[derive(Clone, Debug, Default)]
pub struct ScenarioStats {
    /// Primitive invocations.
    pub invocations: usize,
    /// Source relations.
    pub source_rels: usize,
    /// Target relations.
    pub target_rels: usize,
    /// True correspondences.
    pub true_corrs: usize,
    /// Noise correspondences added by πCorresp.
    pub noise_corrs: usize,
    /// Candidate st tgds in `C`.
    pub candidates: usize,
    /// Gold st tgds in `MG`.
    pub gold_size: usize,
    /// Gold tgds the candidate generator failed to produce (appended
    /// manually; should be 0 — tested).
    pub gold_missing_from_candgen: usize,
    /// Tuples in `I`.
    pub source_tuples: usize,
    /// Tuples in `J` after noise.
    pub target_tuples: usize,
    /// Data-noise report.
    pub data_noise: DataNoiseReport,
}

/// A complete mapping-selection scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The generating configuration.
    pub config: ScenarioConfig,
    /// Source schema **S**.
    pub source_schema: Schema,
    /// Target schema **T**.
    pub target_schema: Schema,
    /// Source instance `I`.
    pub source: Instance,
    /// Target instance `J` (after data noise).
    pub target: Instance,
    /// Candidate set `C`.
    pub candidates: Vec<StTgd>,
    /// Indices of the gold mapping `MG` within `candidates`.
    pub gold: Vec<usize>,
    /// All correspondences (true + noise).
    pub correspondences: Vec<Correspondence>,
    /// Per-invocation records.
    pub invocations: Vec<Invocation>,
    /// Summary statistics.
    pub stats: ScenarioStats,
}

impl Scenario {
    /// The gold tgds themselves.
    pub fn gold_tgds(&self) -> Vec<&StTgd> {
        self.gold.iter().map(|&i| &self.candidates[i]).collect()
    }

    /// True iff candidate `idx` is part of the gold mapping.
    pub fn is_gold(&self, idx: usize) -> bool {
        self.gold.contains(&idx)
    }
}

/// Generate a scenario from a configuration (fully deterministic given the
/// seed).
pub fn generate(config: &ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut source_schema = Schema::new("source");
    let mut target_schema = Schema::new("target");

    // 1. primitives → schemas, gold, true correspondences
    let mut invocations: Vec<Invocation> = Vec::new();
    let mut idx = 0usize;
    for &(primitive, count) in &config.invocations {
        for _ in 0..count {
            invocations.push(instantiate(
                primitive,
                idx,
                &mut source_schema,
                &mut target_schema,
                &mut rng,
                config,
            ));
            idx += 1;
        }
    }
    let gold_tgds: Vec<StTgd> = invocations
        .iter()
        .flat_map(|inv| inv.gold.clone())
        .collect();
    let true_corrs: Vec<Correspondence> = invocations
        .iter()
        .flat_map(|inv| inv.correspondences.clone())
        .collect();

    // 2. source data
    let source = populate_source(
        &source_schema,
        config.rows_per_relation,
        config.value_pool,
        &mut rng,
    );

    // 3. exchange and ground
    let k_mg = chase(&source, &gold_tgds);
    let mut ground_counter: u64 = 0;
    let mut target = ground_instance(&k_mg, "sk", &mut ground_counter);

    // 4. metadata noise
    let noise_corrs = noise_correspondences(
        &source_schema,
        &target_schema,
        &invocations,
        config.noise.pi_corresp,
        &mut rng,
    );
    let mut correspondences = true_corrs.clone();
    correspondences.extend(noise_corrs.iter().copied());

    // 5. candidates; locate MG within C
    let mut candidates = generate_candidates(
        &source_schema,
        &target_schema,
        &correspondences,
        &config.candgen,
    );
    let keys: Vec<String> = candidates.iter().map(canonical_key).collect();
    let mut gold = Vec::with_capacity(gold_tgds.len());
    let mut gold_missing = 0usize;
    for g in &gold_tgds {
        let key = canonical_key(g);
        match keys.iter().position(|k| *k == key) {
            Some(i) => gold.push(i),
            None => {
                gold_missing += 1;
                gold.push(candidates.len());
                candidates.push(g.clone());
            }
        }
    }

    // 6. data noise
    let data_noise = apply_data_noise(
        &mut target,
        &source,
        &candidates,
        &gold,
        config.noise.pi_errors,
        config.noise.pi_unexplained,
        &mut rng,
        &mut ground_counter,
    );

    let stats = ScenarioStats {
        invocations: invocations.len(),
        source_rels: source_schema.len(),
        target_rels: target_schema.len(),
        true_corrs: true_corrs.len(),
        noise_corrs: noise_corrs.len(),
        candidates: candidates.len(),
        gold_size: gold.len(),
        gold_missing_from_candgen: gold_missing,
        source_tuples: source.total_len(),
        target_tuples: target.total_len(),
        data_noise,
    };

    Scenario {
        config: config.clone(),
        source_schema,
        target_schema,
        source,
        target,
        candidates,
        gold,
        correspondences,
        invocations,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoiseConfig;
    use crate::primitive::Primitive;

    #[test]
    fn clean_scenario_contains_gold_in_candidates() {
        let config = ScenarioConfig::default();
        let s = generate(&config);
        assert_eq!(
            s.stats.gold_missing_from_candgen, 0,
            "candgen must regenerate MG"
        );
        assert_eq!(s.gold.len(), 7);
        assert!(s.stats.candidates >= s.gold.len());
        assert!(s.stats.source_tuples > 0);
        assert!(s.stats.target_tuples > 0);
        for c in &s.candidates {
            assert!(c.validate(&s.source_schema, &s.target_schema).is_ok());
        }
    }

    #[test]
    fn every_single_primitive_round_trips() {
        for p in Primitive::ALL {
            let config = ScenarioConfig::single_primitive(p, 2);
            let s = generate(&config);
            assert_eq!(
                s.stats.gold_missing_from_candgen, 0,
                "candgen missed gold for {p}"
            );
            assert!(s.stats.target_tuples > 0, "no target data for {p}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let config = ScenarioConfig {
            seed: 99,
            ..ScenarioConfig::default()
        };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.target.to_tuples(), b.target.to_tuples());
        assert_eq!(a.stats.candidates, b.stats.candidates);
        assert_eq!(a.gold, b.gold);
    }

    #[test]
    fn corresp_noise_grows_candidate_set() {
        let clean = generate(&ScenarioConfig::default());
        let noisy = generate(&ScenarioConfig {
            noise: NoiseConfig {
                pi_corresp: 100.0,
                ..NoiseConfig::clean()
            },
            ..ScenarioConfig::default()
        });
        assert!(noisy.stats.noise_corrs > 0);
        assert!(
            noisy.stats.candidates > clean.stats.candidates,
            "noise correspondences must produce extra candidates ({} vs {})",
            noisy.stats.candidates,
            clean.stats.candidates
        );
        // Gold is still found.
        assert_eq!(noisy.stats.gold_missing_from_candgen, 0);
    }

    #[test]
    fn data_noise_modifies_target() {
        let base = ScenarioConfig::default();
        let clean = generate(&base);
        let noisy = generate(&ScenarioConfig {
            noise: NoiseConfig {
                pi_errors: 50.0,
                pi_unexplained: 50.0,
                pi_corresp: 50.0,
            },
            ..base
        });
        assert!(noisy.stats.data_noise.deleted > 0, "expected deletions");
        assert!(noisy.stats.data_noise.added > 0, "expected additions");
        assert_ne!(clean.stats.target_tuples, noisy.stats.target_tuples);
    }

    #[test]
    fn gold_accessors() {
        let s = generate(&ScenarioConfig::single_primitive(Primitive::Cp, 1));
        assert_eq!(s.gold_tgds().len(), 1);
        assert!(s.is_gold(s.gold[0]));
    }
}

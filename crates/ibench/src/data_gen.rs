//! Source-instance generation.
//!
//! Each source relation receives `rows_per_relation` tuples. Column values
//! follow the schema's structure:
//!
//! * **key columns** get unique values (`<rel>~k<i>`), so primary keys hold;
//! * **foreign-key columns** sample from the referenced column's generated
//!   values, so joins are non-empty (ME bodies actually fire);
//! * everything else samples uniformly from a per-column pool of
//!   `value_pool` constants (`v<rel>_<col>_<n>`), giving repeated values and
//!   realistic partial overlaps.

use cms_data::{Instance, RelId, Schema, Tuple, Value};
use rand::Rng;

/// Generate a source instance for `schema`.
///
/// Relations are generated in id order; a foreign key referencing a
/// relation with a *higher* id falls back to the pool strategy (our
/// generators always declare referenced relations first, so this never
/// happens in practice).
pub fn populate_source(
    schema: &Schema,
    rows_per_relation: usize,
    value_pool: usize,
    rng: &mut impl Rng,
) -> Instance {
    let mut inst = Instance::new();
    // Values generated per (relation, column), for FK sampling.
    let mut generated: Vec<Vec<Vec<Value>>> = Vec::with_capacity(schema.len());

    for (rel_id, rel) in schema.iter() {
        let arity = rel.arity();
        let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(rows_per_relation); arity];
        // Resolve which columns are FK-driven.
        let mut fk_source: Vec<Option<(RelId, usize)>> = vec![None; arity];
        for fk in &rel.fks {
            for (&from, &to) in fk.cols.iter().zip(fk.target_cols.iter()) {
                if fk.target.index() < rel_id.index() {
                    fk_source[from] = Some((fk.target, to));
                }
            }
        }
        for row in 0..rows_per_relation {
            let mut args = Vec::with_capacity(arity);
            for col in 0..arity {
                let value = if rel.key.contains(&col) {
                    Value::constant(&format!("{}~k{row}", rel.name))
                } else if let Some((target, tcol)) = fk_source[col] {
                    let pool = &generated[target.index()][tcol];
                    if pool.is_empty() {
                        Value::constant(&format!(
                            "v{}_{col}_{}",
                            rel_id.0,
                            rng.gen_range(0..value_pool.max(1))
                        ))
                    } else {
                        pool[rng.gen_range(0..pool.len())]
                    }
                } else {
                    Value::constant(&format!(
                        "v{}_{col}_{}",
                        rel_id.0,
                        rng.gen_range(0..value_pool.max(1))
                    ))
                };
                columns[col].push(value);
                args.push(value);
            }
            inst.insert(Tuple::new(rel_id, args));
        }
        generated.push(columns);
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_data::ForeignKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        let mut s = Schema::new("src");
        let a = s.add_relation_full("a", &["k", "x"], &[0], Vec::new());
        s.add_relation_full(
            "b",
            &["fk", "y"],
            &[],
            vec![ForeignKey {
                cols: vec![0],
                target: a,
                target_cols: vec![0],
            }],
        );
        s
    }

    #[test]
    fn generates_requested_rows() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(1);
        let inst = populate_source(&s, 20, 5, &mut rng);
        // Keyed relations get exactly the requested row count; unkeyed
        // relations may generate duplicate rows, which set semantics
        // collapses.
        assert_eq!(inst.rows(RelId(0)).len(), 20);
        let b_rows = inst.rows(RelId(1)).len();
        assert!(b_rows > 0 && b_rows <= 20, "got {b_rows}");
    }

    #[test]
    fn key_columns_are_unique() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(2);
        let inst = populate_source(&s, 30, 5, &mut rng);
        let mut keys: Vec<_> = inst.rows(RelId(0)).iter().map(|r| r[0]).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn fk_columns_reference_existing_keys() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(3);
        let inst = populate_source(&s, 15, 5, &mut rng);
        let keys: Vec<_> = inst.rows(RelId(0)).iter().map(|r| r[0]).collect();
        for row in inst.rows(RelId(1)) {
            assert!(keys.contains(&row[0]), "dangling FK value {:?}", row[0]);
        }
    }

    #[test]
    fn pool_columns_repeat_values() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(4);
        let inst = populate_source(&s, 50, 3, &mut rng);
        let mut distinct: Vec<_> = inst.rows(RelId(0)).iter().map(|r| r[1]).collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() <= 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let s = schema();
        let a = populate_source(&s, 10, 5, &mut StdRng::seed_from_u64(9));
        let b = populate_source(&s, 10, 5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.to_tuples(), b.to_tuples());
    }
}

//! Noise injection, implementing appendix §II exactly.
//!
//! **Metadata noise (πCorresp)** — select πCorresp% of target relations;
//! for each selected relation `T`, pick a source relation `S` from the
//! invocations *not involving* `T`, and add one correspondence from every
//! attribute of `T` to a random attribute of `S`.
//!
//! **Data noise (πErrors, πUnexplained)** — restricted to *non-certain*
//! modifications w.r.t. the gold mapping: every tuple of `K_C` is generated
//! by both `MG` and `C−MG`, only by `MG`, or only by `C−MG` (compared up to
//! per-tuple null renaming, i.e. [`cms_data::TuplePattern`] equivalence —
//! the homomorphism-aware comparison the appendix calls for). Tuples
//! generated **only by MG** become *non-certain errors* when deleted from
//! `J`; tuples generated **only by C−MG** become *non-certain unexplained*
//! tuples when added to `J` (grounding their nulls with fresh constants).

use crate::primitive::Invocation;
use cms_candgen::Correspondence;
use cms_data::{
    pattern_multiset, AttrRef, FxHashMap, Instance, NullId, RelId, Schema, Tuple, TuplePattern,
    Value,
};
use cms_tgd::{ChaseEngine, StTgd};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Round `pct`% of `n` to a count (banker's-free simple rounding).
fn pct_of(n: usize, pct: f64) -> usize {
    ((n as f64) * pct / 100.0).round() as usize
}

/// Appendix §II metadata noise. Returns the added correspondences.
pub fn noise_correspondences(
    source: &Schema,
    target: &Schema,
    invocations: &[Invocation],
    pi_corresp: f64,
    rng: &mut impl Rng,
) -> Vec<Correspondence> {
    if pi_corresp <= 0.0 {
        return Vec::new();
    }
    let target_rels: Vec<RelId> = target.rel_ids().collect();
    let n_selected = pct_of(target_rels.len(), pi_corresp);
    let mut shuffled = target_rels;
    shuffled.shuffle(rng);
    let mut out = Vec::new();
    for &t_rel in shuffled.iter().take(n_selected) {
        // Source relations of invocations not involving this target rel.
        let candidates: Vec<RelId> = invocations
            .iter()
            .filter(|inv| !inv.target_rels.contains(&t_rel))
            .flat_map(|inv| inv.source_rels.iter().copied())
            .collect();
        let Some(&s_rel) = candidates.choose(rng) else {
            continue;
        };
        let s_arity = source.relation(s_rel).arity();
        for col in 0..target.relation(t_rel).arity() {
            let s_col = rng.gen_range(0..s_arity);
            out.push(Correspondence::new(
                AttrRef::new(s_rel, s_col),
                AttrRef::new(t_rel, col),
            ));
        }
    }
    out
}

/// Report of one data-noise application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataNoiseReport {
    /// Size of the non-certain-error pool (gold-only tuples in `J`).
    pub error_pool: usize,
    /// Tuples actually deleted from `J`.
    pub deleted: usize,
    /// Size of the non-certain-unexplained pool (`C−MG`-only tuples).
    pub unexplained_pool: usize,
    /// Tuples actually added to `J`.
    pub added: usize,
}

/// Appendix §II data noise, applied to `j` in place.
///
/// `candidates`/`gold_idx` define the MG / C−MG split; `i` is the source
/// instance; `ground_counter` continues the fresh-constant namespace used
/// when `J` was grounded.
#[allow(clippy::too_many_arguments)]
pub fn apply_data_noise(
    j: &mut Instance,
    i: &Instance,
    candidates: &[StTgd],
    gold_idx: &[usize],
    pi_errors: f64,
    pi_unexplained: f64,
    rng: &mut impl Rng,
    ground_counter: &mut u64,
) -> DataNoiseReport {
    let mut report = DataNoiseReport::default();
    if pi_errors <= 0.0 && pi_unexplained <= 0.0 {
        return report;
    }

    // Pattern sets of MG's and C−MG's outputs. All candidates are chased
    // in one batched pass over the shared body-prefix trie; the engine's
    // null renaming is invisible to the pattern comparison below.
    let mut gold_patterns: BTreeSet<TuplePattern> = BTreeSet::new();
    let mut other_patterns: BTreeSet<TuplePattern> = BTreeSet::new();
    let mut other_instances: Vec<Instance> = Vec::new();
    let engine = ChaseEngine::new(candidates)
        .unwrap_or_else(|e| panic!("apply_data_noise: invalid candidate tgd: {e}"));
    for (idx, k) in engine.chase_all(i).into_iter().enumerate() {
        let patterns: Vec<TuplePattern> = pattern_multiset(&k).into_keys().collect();
        if gold_idx.contains(&idx) {
            gold_patterns.extend(patterns);
        } else {
            other_patterns.extend(patterns);
            other_instances.push(k);
        }
    }

    // --- deletions: J tuples whose pattern is generated only by MG ---
    // J was produced by grounding K_MG, so a J tuple's originating pattern
    // is recovered by re-chasing MG and grounding with the same recipe; we
    // instead classify directly: a ground J tuple's own pattern is
    // all-constants, so we check whether any C−MG output *matches* it
    // structurally, i.e. whether its gold pattern (with the grounded
    // Skolem constants abstracted back to nulls) appears in C−MG's output.
    let skolem_prefix = "sk";
    let deletion_pool: Vec<Tuple> = j
        .iter_all()
        .filter(|(rel, row)| {
            let abstracted = abstract_skolems(*rel, row, skolem_prefix);
            gold_patterns.contains(&abstracted) && !other_patterns.contains(&abstracted)
        })
        .map(|(rel, row)| Tuple::new(rel, row.to_vec()))
        .collect();
    report.error_pool = deletion_pool.len();
    if pi_errors > 0.0 {
        let n_delete = pct_of(deletion_pool.len(), pi_errors);
        let mut pool = deletion_pool;
        pool.shuffle(rng);
        for t in pool.into_iter().take(n_delete) {
            if j.remove(t.rel, &t.args) {
                report.deleted += 1;
            }
        }
    }

    // --- additions: C−MG tuples whose pattern MG never generates ---
    let mut addition_pool: Vec<Tuple> = Vec::new();
    let mut seen_patterns: BTreeSet<TuplePattern> = BTreeSet::new();
    for k in &other_instances {
        for (rel, row) in k.iter_all() {
            let p = TuplePattern::of(rel, row);
            if !gold_patterns.contains(&p) && seen_patterns.insert(p) {
                addition_pool.push(Tuple::new(rel, row.to_vec()));
            }
        }
    }
    report.unexplained_pool = addition_pool.len();
    if pi_unexplained > 0.0 {
        let n_add = pct_of(addition_pool.len(), pi_unexplained);
        addition_pool.shuffle(rng);
        for t in addition_pool.into_iter().take(n_add) {
            let grounded = ground_tuple(&t, skolem_prefix, ground_counter);
            if j.insert(grounded) {
                report.added += 1;
            }
        }
    }
    report
}

/// Replace Skolem constants (`sk<N>`) by canonical nulls, recovering the
/// pre-grounding pattern of a `J` tuple.
fn abstract_skolems(rel: RelId, row: &[Value], prefix: &str) -> TuplePattern {
    let mut mapping: FxHashMap<Value, u32> = FxHashMap::default();
    let values: Vec<Value> = row
        .iter()
        .map(|v| match v {
            Value::Const(s)
                if s.as_str().starts_with(prefix)
                    && s.as_str()[prefix.len()..]
                        .chars()
                        .all(|c| c.is_ascii_digit()) =>
            {
                let next = mapping.len() as u32;
                Value::Null(NullId(*mapping.entry(*v).or_insert(next)))
            }
            other => *other,
        })
        .collect();
    TuplePattern::of(rel, &values)
}

/// Ground a (possibly null-containing) tuple with fresh Skolem constants.
pub fn ground_tuple(t: &Tuple, prefix: &str, counter: &mut u64) -> Tuple {
    let mut mapping: FxHashMap<NullId, Value> = FxHashMap::default();
    let args = t
        .args
        .iter()
        .map(|v| match v {
            Value::Null(n) => *mapping.entry(*n).or_insert_with(|| {
                let c = Value::constant(&format!("{prefix}{counter}"));
                *counter += 1;
                c
            }),
            c => *c,
        })
        .collect();
    Tuple::new(t.rel, args)
}

/// Ground a whole instance (used to turn `K_MG` into the ground `J`).
pub fn ground_instance(k: &Instance, prefix: &str, counter: &mut u64) -> Instance {
    let mut mapping: FxHashMap<NullId, Value> = FxHashMap::default();
    let mut out = Instance::new();
    for (rel, row) in k.iter_all() {
        let args: Vec<Value> = row
            .iter()
            .map(|v| match v {
                Value::Null(n) => *mapping.entry(*n).or_insert_with(|| {
                    let c = Value::constant(&format!("{prefix}{counter}"));
                    *counter += 1;
                    c
                }),
                c => *c,
            })
            .collect();
        out.insert(Tuple::new(rel, args));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_data::Schema;
    use cms_tgd::parse_tgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schemas() -> (Schema, Schema) {
        let mut src = Schema::new("s");
        src.add_relation("s0", &["a", "b"]);
        src.add_relation("s1", &["c", "d"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t0", &["p", "q"]);
        tgt.add_relation("t1", &["r", "u"]);
        (src, tgt)
    }

    #[test]
    fn ground_instance_replaces_nulls_consistently() {
        let mut k = Instance::new();
        k.insert(Tuple::new(
            RelId(0),
            vec![Value::constant("a"), Value::Null(NullId(7))],
        ));
        k.insert(Tuple::new(
            RelId(1),
            vec![Value::Null(NullId(7)), Value::constant("b")],
        ));
        let mut counter = 0;
        let g = ground_instance(&k, "sk", &mut counter);
        assert_eq!(counter, 1);
        let rows0 = g.rows(RelId(0));
        let rows1 = g.rows(RelId(1));
        assert_eq!(rows0[0][1], rows1[0][0], "shared null gets one constant");
        assert_eq!(rows0[0][1], Value::constant("sk0"));
    }

    #[test]
    fn abstract_skolems_recovers_pattern() {
        let row = vec![
            Value::constant("a"),
            Value::constant("sk3"),
            Value::constant("sk3"),
        ];
        let p = abstract_skolems(RelId(0), &row, "sk");
        let expected = TuplePattern::of(
            RelId(0),
            &[
                Value::constant("a"),
                Value::Null(NullId(0)),
                Value::Null(NullId(0)),
            ],
        );
        assert_eq!(p, expected);
        // Non-skolem constants like "skipped" are left alone.
        let row2 = vec![Value::constant("skipped")];
        let p2 = abstract_skolems(RelId(0), &row2, "sk");
        assert!(p2.is_ground());
    }

    #[test]
    fn noise_correspondences_respect_involvement() {
        let (src, tgt) = schemas();
        let inv0 = Invocation {
            primitive: crate::primitive::Primitive::Cp,
            label: "cp0".into(),
            source_rels: vec![RelId(0)],
            target_rels: vec![RelId(0)],
            gold: vec![],
            correspondences: vec![],
        };
        let inv1 = Invocation {
            primitive: crate::primitive::Primitive::Cp,
            label: "cp1".into(),
            source_rels: vec![RelId(1)],
            target_rels: vec![RelId(1)],
            gold: vec![],
            correspondences: vec![],
        };
        let mut rng = StdRng::seed_from_u64(5);
        let noise = noise_correspondences(&src, &tgt, &[inv0, inv1], 100.0, &mut rng);
        // Every target relation got one correspondence per attribute, and
        // never from its own invocation's source relation.
        assert_eq!(noise.len(), 4); // 2 rels × 2 attrs
        for c in &noise {
            assert_ne!(c.source.rel, c.target.rel, "cross-invocation only");
        }
    }

    #[test]
    fn zero_pi_corresp_adds_nothing() {
        let (src, tgt) = schemas();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(noise_correspondences(&src, &tgt, &[], 0.0, &mut rng).is_empty());
    }

    #[test]
    fn data_noise_deletes_gold_only_and_adds_other_only() {
        let (src, tgt) = schemas();
        // gold: s0(a,b) -> t0(a,b); other candidate: s1(c,d) -> t1(c,d).
        let gold = parse_tgd("s0(a, b) -> t0(a, b)", &src, &tgt).unwrap();
        let other = parse_tgd("s1(c, d) -> t1(c, d)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        for n in 0..10 {
            i.insert_ground(RelId(0), &[&format!("a{n}"), "b"]);
            i.insert_ground(RelId(1), &[&format!("c{n}"), "d"]);
        }
        let candidates = vec![gold.clone(), other];
        let mut counter = 0;
        let k_mg = cms_tgd::chase(&i, std::slice::from_ref(&gold));
        let mut j = ground_instance(&k_mg, "sk", &mut counter);
        assert_eq!(j.total_len(), 10);
        let mut rng = StdRng::seed_from_u64(11);
        let report = apply_data_noise(
            &mut j,
            &i,
            &candidates,
            &[0],
            50.0,
            50.0,
            &mut rng,
            &mut counter,
        );
        assert_eq!(report.error_pool, 10);
        assert_eq!(report.deleted, 5);
        assert_eq!(j.rows(tgt.rel_id("t0").unwrap()).len(), 5);
        // The other candidate generates 10 distinct ground tuples but they
        // share... each is a distinct ground pattern, so pool = 10.
        assert_eq!(report.unexplained_pool, 10);
        assert_eq!(report.added, 5);
        assert_eq!(j.rows(tgt.rel_id("t1").unwrap()).len(), 5);
    }

    #[test]
    fn data_noise_noop_at_zero() {
        let (src, tgt) = schemas();
        let gold = parse_tgd("s0(a, b) -> t0(a, b)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(RelId(0), &["a", "b"]);
        let mut counter = 0;
        let k = cms_tgd::chase(&i, std::slice::from_ref(&gold));
        let mut j = ground_instance(&k, "sk", &mut counter);
        let before = j.total_len();
        let mut rng = StdRng::seed_from_u64(1);
        let report = apply_data_noise(
            &mut j,
            &i,
            std::slice::from_ref(&gold),
            &[0],
            0.0,
            0.0,
            &mut rng,
            &mut counter,
        );
        assert_eq!(report, DataNoiseReport::default());
        assert_eq!(j.total_len(), before);
    }

    #[test]
    fn shared_patterns_are_certain_and_untouched() {
        let (src, tgt) = schemas();
        // Both candidates produce the same tuples: every tuple is
        // generated by both sides ⇒ both pools empty.
        let gold = parse_tgd("s0(a, b) -> t0(a, b)", &src, &tgt).unwrap();
        let dup = parse_tgd("s0(a, b) -> t0(a, b) & t0(a, b)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(RelId(0), &["x", "y"]);
        let mut counter = 0;
        let k = cms_tgd::chase(&i, std::slice::from_ref(&gold));
        let mut j = ground_instance(&k, "sk", &mut counter);
        let mut rng = StdRng::seed_from_u64(1);
        let report = apply_data_noise(
            &mut j,
            &i,
            &[gold, dup],
            &[0],
            100.0,
            100.0,
            &mut rng,
            &mut counter,
        );
        assert_eq!(report.error_pool, 0);
        assert_eq!(report.unexplained_pool, 0);
        assert_eq!(j.total_len(), 1);
    }
}

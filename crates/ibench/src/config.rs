//! Scenario-generation configuration (the paper's Table I knobs).

use crate::primitive::Primitive;
use cms_candgen::CandGenConfig;

/// Noise knobs, as percentages in `[0, 100]` (appendix §II).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseConfig {
    /// πCorresp: % of target relations that receive random (spurious)
    /// correspondences to an unrelated source relation.
    pub pi_corresp: f64,
    /// πErrors: % of potential non-certain error tuples deleted from `J`.
    pub pi_errors: f64,
    /// πUnexplained: % of potential non-certain unexplained tuples added
    /// to `J`.
    pub pi_unexplained: f64,
}

impl NoiseConfig {
    /// No noise.
    pub fn clean() -> NoiseConfig {
        NoiseConfig::default()
    }

    /// A uniform preset: the same percentage for all three knobs.
    pub fn uniform(pct: f64) -> NoiseConfig {
        NoiseConfig {
            pi_corresp: pct,
            pi_errors: pct,
            pi_unexplained: pct,
        }
    }
}

/// Full scenario-generation configuration.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Which primitives to invoke and how many times each.
    pub invocations: Vec<(Primitive, usize)>,
    /// Rows generated per source relation.
    pub rows_per_relation: usize,
    /// Inclusive range of source-relation arities.
    pub source_arity: (usize, usize),
    /// Inclusive range for the number of attributes ADD/DL/ADL add or
    /// remove — the paper sets this to (2, 4).
    pub attr_change_range: (usize, usize),
    /// Distinct values per non-key column (smaller pools ⇒ more joins).
    pub value_pool: usize,
    /// RNG seed; identical configs are fully reproducible.
    pub seed: u64,
    /// Noise knobs.
    pub noise: NoiseConfig,
    /// Candidate-generation knobs.
    pub candgen: CandGenConfig,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            invocations: Primitive::ALL.iter().map(|&p| (p, 1)).collect(),
            rows_per_relation: 25,
            source_arity: (3, 5),
            attr_change_range: (2, 4),
            value_pool: 8,
            seed: 7,
            noise: NoiseConfig::clean(),
            candgen: CandGenConfig::default(),
        }
    }
}

impl ScenarioConfig {
    /// Every primitive invoked `n` times each.
    pub fn all_primitives(n: usize) -> ScenarioConfig {
        ScenarioConfig {
            invocations: Primitive::ALL.iter().map(|&p| (p, n)).collect(),
            ..ScenarioConfig::default()
        }
    }

    /// A single primitive invoked `n` times.
    pub fn single_primitive(p: Primitive, n: usize) -> ScenarioConfig {
        ScenarioConfig {
            invocations: vec![(p, n)],
            ..ScenarioConfig::default()
        }
    }

    /// Total number of primitive invocations.
    pub fn total_invocations(&self) -> usize {
        self.invocations.iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_ranges() {
        let c = ScenarioConfig::default();
        assert_eq!(c.attr_change_range, (2, 4));
        assert_eq!(c.invocations.len(), 7);
        assert_eq!(c.total_invocations(), 7);
    }

    #[test]
    fn constructors() {
        assert_eq!(ScenarioConfig::all_primitives(3).total_invocations(), 21);
        let s = ScenarioConfig::single_primitive(Primitive::Me, 4);
        assert_eq!(s.invocations, vec![(Primitive::Me, 4)]);
        assert_eq!(NoiseConfig::uniform(25.0).pi_errors, 25.0);
    }
}

//! Property-based tests for the scenario generator: pipeline invariants
//! that must hold for *every* configuration.

use cms_data::homomorphic;
use cms_ibench::{generate, NoiseConfig, Primitive, ScenarioConfig};
use cms_tgd::{chase, StTgd};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ScenarioConfig> {
    let primitive = prop::sample::select(Primitive::ALL.to_vec());
    (
        prop::collection::vec((primitive, 1usize..=2), 1..4),
        2usize..=12,    // rows
        0u64..1000,     // seed
        0.0f64..=100.0, // pi_corresp
        0.0f64..=100.0, // pi_errors
        0.0f64..=100.0, // pi_unexplained
    )
        .prop_map(|(invocations, rows, seed, pc, pe, pu)| ScenarioConfig {
            invocations,
            rows_per_relation: rows,
            seed,
            noise: NoiseConfig {
                pi_corresp: pc,
                pi_errors: pe,
                pi_unexplained: pu,
            },
            ..ScenarioConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants of every generated scenario.
    #[test]
    fn scenario_invariants(config in arb_config()) {
        let s = generate(&config);
        // Gold is inside the candidate set, all indices valid & distinct.
        let mut gold = s.gold.clone();
        gold.sort_unstable();
        gold.dedup();
        prop_assert_eq!(gold.len(), s.gold.len());
        for &g in &s.gold {
            prop_assert!(g < s.candidates.len());
        }
        // Candidate generation never misses the gold mapping (with the
        // default join depth).
        prop_assert_eq!(s.stats.gold_missing_from_candgen, 0);
        // Every candidate validates against the schema pair.
        for c in &s.candidates {
            prop_assert!(c.validate(&s.source_schema, &s.target_schema).is_ok());
        }
        // J is ground (noise additions are grounded too).
        for (_, row) in s.target.iter_all() {
            prop_assert!(row.iter().all(|v| v.is_const()));
        }
        // Stats agree with the data.
        prop_assert_eq!(s.stats.source_tuples, s.source.total_len());
        prop_assert_eq!(s.stats.target_tuples, s.target.total_len());
        prop_assert_eq!(s.stats.candidates, s.candidates.len());
    }

    /// Without data noise, J is exactly the grounding of chase(I, MG):
    /// K_MG maps homomorphically into J and the sizes agree.
    #[test]
    fn clean_target_is_gold_exchange(config in arb_config()) {
        let clean = ScenarioConfig {
            noise: NoiseConfig { pi_corresp: config.noise.pi_corresp, ..NoiseConfig::clean() },
            ..config
        };
        let s = generate(&clean);
        let gold_tgds: Vec<StTgd> = s.gold_tgds().into_iter().cloned().collect();
        let k_mg = chase(&s.source, &gold_tgds);
        prop_assert!(homomorphic(&k_mg, &s.target), "K_MG must embed into J");
        prop_assert_eq!(k_mg.total_len(), s.target.total_len());
    }

    /// Determinism: the same config generates byte-identical scenarios.
    #[test]
    fn generation_is_deterministic(config in arb_config()) {
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(a.target.to_tuples(), b.target.to_tuples());
        prop_assert_eq!(a.source.to_tuples(), b.source.to_tuples());
        prop_assert_eq!(a.gold, b.gold);
        prop_assert_eq!(a.stats.candidates, b.stats.candidates);
    }

    /// Noise bookkeeping: deletions/additions never exceed their pools,
    /// and the pools are disjoint responsibilities (deleted ≤ error pool,
    /// added ≤ unexplained pool).
    #[test]
    fn noise_bookkeeping(config in arb_config()) {
        let s = generate(&config);
        let r = s.stats.data_noise;
        prop_assert!(r.deleted <= r.error_pool);
        prop_assert!(r.added <= r.unexplained_pool);
    }
}

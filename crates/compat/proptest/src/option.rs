//! `prop::option` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// `Some` of the inner strategy three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

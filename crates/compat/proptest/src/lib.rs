//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! pieces the workspace's property tests need: the
//! [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`,
//! `any::<bool>()`, `prop_oneof!`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics: each test function runs `Config::cases` random cases drawn
//! from a generator seeded by the test's module path and name, so failures
//! reproduce deterministically across runs. There is **no shrinking** — a
//! failing case panics with the bound values via the assertion message.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;

/// `any::<T>()` — the canonical strategy for `T`.
pub use arbitrary::any;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module tree (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Run `cases` property-test cases: the engine behind [`proptest!`].
pub fn run_cases<F: FnMut(&mut test_runner::TestRng)>(
    config: &test_runner::Config,
    test_path: &str,
    mut case: F,
) {
    let mut rng = test_runner::rng_for(test_path);
    for _ in 0..config.cases {
        case(&mut rng);
    }
}

/// Declare property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, ys in prop::collection::vec(0u32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $crate::run_cases(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        let ($($pat,)+) = (
                            $($crate::strategy::Strategy::sample(&($strat), __rng),)+
                        );
                        $body
                    },
                );
            }
        )*
    };
}

/// Assert inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let strat = (0usize..5, prop::option::of(1u32..=3)).prop_map(|(a, b)| (a, b.unwrap_or(0)));
        let mut rng = crate::test_runner::rng_for("compose");
        for _ in 0..100 {
            let (a, b) = strat.sample(&mut rng);
            assert!(a < 5);
            assert!(b <= 3);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let strat = prop::collection::vec(0u32..10, 2..5);
        let mut rng = crate::test_runner::rng_for("vec");
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_flat_map_sample_all_arms() {
        let strat = (1usize..4).prop_flat_map(|n| prop::collection::vec(0usize..n, n..=n));
        let mut rng = crate::test_runner::rng_for("flat");
        let mut saw_union = [false; 2];
        let union = prop_oneof![Just(0usize), 1usize..2];
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            saw_union[union.sample(&mut rng)] = true;
        }
        assert!(saw_union[0] && saw_union[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns(x in 0usize..10, (a, b) in (0u32..3, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert_eq!(a < 3, true);
            let _ = b;
        }
    }
}

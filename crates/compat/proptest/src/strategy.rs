//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a strategy from it, then sample that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

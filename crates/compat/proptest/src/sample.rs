//! `prop::sample` — choosing among concrete values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A uniformly random element of `options` (cloned per sample).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "prop::sample::select on empty options");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

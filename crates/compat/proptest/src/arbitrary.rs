//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy's concrete type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Fair coin.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

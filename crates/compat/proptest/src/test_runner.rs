//! Test configuration and the deterministic per-test generator.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator property tests draw from.
pub type TestRng = StdRng;

/// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Deterministic generator derived from the test's path, so each test sees
/// the same case stream on every run (failures reproduce without replay
/// files).
pub fn rng_for(test_path: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

//! `prop::collection` — vectors of generated elements.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Admissible length specifications for [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A vector whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

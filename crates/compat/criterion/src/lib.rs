//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Provides [`Criterion`], benchmark groups with `sample_size` /
//! `throughput` / `bench_function` / `bench_with_input`, [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short warm-up sizes the number of
//! iterations per sample so one sample takes ≥ ~5 ms, then `sample_size`
//! samples are timed and the mean/min ns-per-iteration are reported on
//! stdout as `bench: <group>/<id> ... <mean> ns/iter (min <min>)` together
//! with a machine-readable JSON line (`{"bench": ..., "mean_ns": ...}`)
//! that also carries the process's peak RSS (`peak_rss_bytes`, from
//! `VmHWM` in `/proc/self/status`; 0 where unavailable) as observed after
//! the benchmark ran.
//!
//! [`BenchmarkGroup::bench_interleaved`] (a shim extension, not real
//! criterion API) times several bodies with round-robin bursts and
//! additionally reports the per-burst `median_ns` — the statistic
//! `bench_gate --ratio` prefers for same-run overhead comparisons.
//!
//! Running with `--test` in the arguments (what `cargo test` passes to
//! bench targets, and what CI smoke runs use) executes each benchmark body
//! exactly once without timing.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: 10,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration (reported, not used for scaling).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    // Tie the lifetime to the Criterion borrow like upstream does.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

// Separate impl block so the struct literal above stays simple.
impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput (informational).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.test_mode, self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.test_mode, self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Measure several benchmark bodies with **sample-interleaved**
    /// timing: every sample round times one burst of each body in turn,
    /// so a noisy scheduling window is charged to all of them roughly
    /// equally instead of landing on whichever body happened to be
    /// running. Use this for same-run ratio comparisons (`bench_gate
    /// --ratio`), where a few percent of sequential-line jitter would
    /// otherwise dominate the quantity being gated. Not part of the real
    /// criterion API — a shim extension.
    pub fn bench_interleaved(&mut self, mut entries: Vec<(BenchmarkId, Box<dyn FnMut() + '_>)>) {
        if self.test_mode {
            for (id, f) in &mut entries {
                f();
                println!("bench: {}/{} ... ok (test mode)", self.name, id.id);
            }
            return;
        }
        // Per-body warm-up: size the burst so one timed burst ≥ ~20 ms —
        // longer than the sequential path's 5 ms, so each sample averages
        // enough iterations that per-iteration variance (e.g. workload
        // phases with different inner-loop counts) stays out of the
        // per-sample minimum the ratio gates compare.
        let mut iters: Vec<u64> = Vec::with_capacity(entries.len());
        for (_, f) in &mut entries {
            let mut n: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..n {
                    f();
                }
                if start.elapsed() >= Duration::from_millis(20) || n >= 1 << 20 {
                    break;
                }
                n *= 2;
            }
            iters.push(n);
        }
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(self.sample_size); entries.len()];
        for s in 0..self.sample_size {
            // Rotate the starting body each round so no body always runs
            // in the same slot of the round — position-in-round effects
            // (cache state left by the previous body, periodic external
            // noise) average out instead of biasing one line.
            for j in 0..entries.len() {
                let k = (s + j) % entries.len();
                let f = &mut entries[k].1;
                let start = Instant::now();
                for _ in 0..iters[k] {
                    f();
                }
                samples[k].push(start.elapsed().as_nanos() as f64 / iters[k] as f64);
            }
        }
        for (k, (id, _)) in entries.iter().enumerate() {
            let s = &mut samples[k];
            s.sort_by(|a, b| a.total_cmp(b));
            // The median per-burst time is additionally reported
            // (`median_ns`): a sustained noise window inflates the mean of
            // whichever bodies its rounds landed on, while the median only
            // moves if more than half of all rounds were noisy — which
            // shifts every interleaved body together, keeping ratios
            // honest. `bench_gate --ratio` prefers it when present.
            let median = (s[(s.len() - 1) / 2] + s[s.len() / 2]) / 2.0;
            let b = Bencher {
                test_mode: false,
                sample_size: self.sample_size,
                mean_ns: s.iter().sum::<f64>() / s.len() as f64,
                min_ns: s[0],
                median_ns: Some(median),
                ran: true,
            };
            b.report(&self.name, &id.id);
        }
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    mean_ns: f64,
    min_ns: f64,
    /// Median per-burst time; recorded by [`BenchmarkGroup::bench_interleaved`] only.
    median_ns: Option<f64>,
    ran: bool,
}

impl Bencher {
    fn new(test_mode: bool, sample_size: usize) -> Bencher {
        Bencher {
            test_mode,
            sample_size,
            mean_ns: 0.0,
            min_ns: 0.0,
            median_ns: None,
            ran: false,
        }
    }

    /// Measure the closure. The return value is black-boxed and dropped.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.ran = true;
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: find iterations-per-sample so one sample ≥ ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            total_ns += per_iter;
            min_ns = min_ns.min(per_iter);
        }
        self.mean_ns = total_ns / self.sample_size as f64;
        self.min_ns = min_ns;
    }

    fn report(&self, group: &str, id: &str) {
        if !self.ran {
            return;
        }
        if self.test_mode {
            println!("bench: {group}/{id} ... ok (test mode)");
            return;
        }
        let rss = peak_rss_bytes();
        println!(
            "bench: {group}/{id} ... {:.0} ns/iter (min {:.0}, peak rss {:.1} MiB)",
            self.mean_ns,
            self.min_ns,
            rss as f64 / (1024.0 * 1024.0)
        );
        let median = self
            .median_ns
            .map(|m| format!(",\"median_ns\":{m:.1}"))
            .unwrap_or_default();
        println!(
            "{{\"bench\":\"{group}/{id}\",\"mean_ns\":{:.1},\"min_ns\":{:.1}{median},\"peak_rss_bytes\":{rss}}}",
            self.mean_ns, self.min_ns
        );
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where the proc filesystem is unavailable.
/// Self-contained so the shim stays dependency-free.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Bundle benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

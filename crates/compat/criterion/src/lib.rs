//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Provides [`Criterion`], benchmark groups with `sample_size` /
//! `throughput` / `bench_function` / `bench_with_input`, [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short warm-up sizes the number of
//! iterations per sample so one sample takes ≥ ~5 ms, then `sample_size`
//! samples are timed and the mean/min ns-per-iteration are reported on
//! stdout as `bench: <group>/<id> ... <mean> ns/iter (min <min>)` together
//! with a machine-readable JSON line (`{"bench": ..., "mean_ns": ...}`).
//!
//! Running with `--test` in the arguments (what `cargo test` passes to
//! bench targets, and what CI smoke runs use) executes each benchmark body
//! exactly once without timing.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            sample_size: 10,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration (reported, not used for scaling).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    // Tie the lifetime to the Criterion borrow like upstream does.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

// Separate impl block so the struct literal above stays simple.
impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput (informational).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.test_mode, self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.test_mode, self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    mean_ns: f64,
    min_ns: f64,
    ran: bool,
}

impl Bencher {
    fn new(test_mode: bool, sample_size: usize) -> Bencher {
        Bencher {
            test_mode,
            sample_size,
            mean_ns: 0.0,
            min_ns: 0.0,
            ran: false,
        }
    }

    /// Measure the closure. The return value is black-boxed and dropped.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.ran = true;
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: find iterations-per-sample so one sample ≥ ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            total_ns += per_iter;
            min_ns = min_ns.min(per_iter);
        }
        self.mean_ns = total_ns / self.sample_size as f64;
        self.min_ns = min_ns;
    }

    fn report(&self, group: &str, id: &str) {
        if !self.ran {
            return;
        }
        if self.test_mode {
            println!("bench: {group}/{id} ... ok (test mode)");
            return;
        }
        println!(
            "bench: {group}/{id} ... {:.0} ns/iter (min {:.0})",
            self.mean_ns, self.min_ns
        );
        println!(
            "{{\"bench\":\"{group}/{id}\",\"mean_ns\":{:.1},\"min_ns\":{:.1}}}",
            self.mean_ns, self.min_ns
        );
    }
}

/// Bundle benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. This crate re-implements exactly the surface the
//! workspace calls — `Rng::gen_range` / `gen_bool`, `SeedableRng`,
//! `rngs::StdRng`, and `seq::SliceRandom` (`shuffle` / `choose`) — on top of
//! a xoshiro256++ generator seeded through SplitMix64.
//!
//! Streams are deterministic per seed (all experiment reproducibility in
//! this workspace is seed-based) but do **not** match the upstream `rand`
//! byte streams; recorded numbers are reproducible against *this* shim.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value helpers, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open or inclusive integer/float ranges).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding entry point (`StdRng::seed_from_u64` is the only constructor the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits → [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, n)` without requiring `Self: Sized` call sites.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Multiply-shift (Lemire); bias is < 2^-64 per draw, irrelevant for the
    // synthetic-scenario workloads this backs.
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{uniform_below, Rng};

    /// `shuffle` / `choose` on slices, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_member() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

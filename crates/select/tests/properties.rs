//! Property-based tests for the objective and the exact selectors, on
//! randomly constructed coverage models (built directly, no chase — the
//! chase path is covered by the tgd crate's properties and the
//! integration tests).

use cms_data::{RelId, Tuple};
use cms_select::{
    preprocess, BranchBound, CoverageModel, ErrorGroup, Exhaustive, Greedy, IncrementalObjective,
    LocalSearch, Objective, ObjectiveWeights, PslCollective, Selector,
};
use proptest::prelude::*;

/// A random coverage model with `n_cand ≤ 7`, `n_targets ≤ 8`.
fn arb_model() -> impl Strategy<Value = CoverageModel> {
    let n_cand = 1usize..=7;
    let n_tgt = 1usize..=8;
    (n_cand, n_tgt).prop_flat_map(|(nc, nt)| {
        let covers =
            prop::collection::vec(prop::collection::vec((0..nt, 1u32..=4), 0..nt), nc..=nc);
        let sizes = prop::collection::vec(2usize..=6, nc..=nc);
        let errors = prop::collection::vec(prop::collection::vec(0..nc, 1..=nc.min(3)), 0..4);
        (covers, sizes, errors).prop_map(move |(covers, sizes, errors)| {
            let covers: Vec<Vec<(usize, f64)>> = covers
                .into_iter()
                .map(|list| {
                    let mut best: std::collections::BTreeMap<usize, f64> = Default::default();
                    for (t, q) in list {
                        let d = q as f64 / 4.0;
                        let e = best.entry(t).or_insert(0.0);
                        if d > *e {
                            *e = d;
                        }
                    }
                    best.into_iter().collect()
                })
                .collect();
            let errors: Vec<ErrorGroup> = errors
                .into_iter()
                .map(|mut creators| {
                    creators.sort_unstable();
                    creators.dedup();
                    ErrorGroup {
                        creators,
                        example: Tuple::ground(RelId(0), &["err"]),
                    }
                })
                .collect();
            let mut error_counts = vec![0usize; nc];
            for g in &errors {
                for &c in &g.creators {
                    error_counts[c] += 1;
                }
            }
            CoverageModel {
                num_candidates: nc,
                targets: (0..nt)
                    .map(|t| Tuple::ground(RelId(0), &[&format!("t{t}")]))
                    .collect(),
                sizes,
                covers,
                errors,
                error_counts,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// F({}) = w1 · |targets|; F is bounded below by w3·size of the
    /// selection; components are non-negative.
    #[test]
    fn objective_basic_identities(model in arb_model()) {
        let w = ObjectiveWeights::unweighted();
        let f = Objective::new(&model, w);
        prop_assert!((f.value(&[]) - model.num_targets() as f64).abs() < 1e-9);
        let all: Vec<usize> = (0..model.num_candidates).collect();
        let (u, e, s) = f.components(&all);
        prop_assert!(u >= -1e-12 && e >= 0.0 && s >= 0.0);
        let total_size: usize = model.sizes.iter().sum();
        prop_assert!((s - total_size as f64).abs() < 1e-9);
        prop_assert!(f.value(&all) >= s - 1e-9);
    }

    /// Exhaustive and branch-and-bound agree exactly.
    #[test]
    fn exact_selectors_agree(model in arb_model()) {
        let w = ObjectiveWeights::unweighted();
        let ex = Exhaustive::default().select(&model, &w).unwrap();
        let bb = BranchBound::default().select(&model, &w).unwrap();
        prop_assert!((ex.objective - bb.objective).abs() < 1e-9,
            "exhaustive {} vs bb {}", ex.objective, bb.objective);
    }

    /// No heuristic ever reports a better value than the exact optimum,
    /// and every reported value re-evaluates to itself.
    #[test]
    fn heuristics_bounded_by_exact(model in arb_model()) {
        let w = ObjectiveWeights::unweighted();
        let f = Objective::new(&model, w);
        let exact = Exhaustive::default().select(&model, &w).unwrap();
        for selector in [
            Box::new(Greedy) as Box<dyn Selector>,
            Box::new(LocalSearch { restarts: 2, seed: 1, ..LocalSearch::default() }),
            Box::new(PslCollective::default()),
        ] {
            let sel = selector.select(&model, &w).unwrap();
            prop_assert!(sel.objective >= exact.objective - 1e-9,
                "{} below optimum", selector.name());
            prop_assert!((f.value(&sel.selected) - sel.objective).abs() < 1e-9,
                "{} misreports its own objective", selector.name());
        }
    }

    /// PSL with greedy repair is never worse than plain greedy.
    #[test]
    fn psl_repair_dominates_greedy(model in arb_model()) {
        let w = ObjectiveWeights::unweighted();
        let greedy = Greedy.select(&model, &w).unwrap();
        let psl = PslCollective::default().select(&model, &w).unwrap();
        prop_assert!(psl.objective <= greedy.objective + 1e-9,
            "psl {} vs greedy {}", psl.objective, greedy.objective);
    }

    /// Preprocessing shifts the objective by exactly the constant, for
    /// every selection.
    #[test]
    fn preprocess_preserves_objective(model in arb_model()) {
        let w = ObjectiveWeights::unweighted();
        let (reduced, report) = preprocess(&model);
        let f_full = Objective::new(&model, w);
        let f_red = Objective::new(&reduced, w);
        let constant = report.certain_unexplained as f64;
        for subset in 0u32..(1 << model.num_candidates.min(5)) {
            let sel: Vec<usize> =
                (0..model.num_candidates.min(5)).filter(|&b| subset & (1 << b) != 0).collect();
            prop_assert!((f_full.value(&sel) - (f_red.value(&sel) + constant)).abs() < 1e-9);
        }
    }

    /// Weighted objective is linear in the weights: F_w = w1·U + w2·E + w3·S
    /// where (U, E, S) are the unit components.
    #[test]
    fn objective_linear_in_weights(model in arb_model(), w1 in 0.0f64..3.0, w2 in 0.0f64..3.0, w3 in 0.0f64..3.0) {
        let unit = Objective::new(&model, ObjectiveWeights::unweighted());
        let weighted = Objective::new(&model, ObjectiveWeights { w_explain: w1, w_error: w2, w_size: w3 });
        let all: Vec<usize> = (0..model.num_candidates).collect();
        for sel in [vec![], vec![0], all] {
            let (u, e, s) = unit.components(&sel);
            prop_assert!((weighted.value(&sel) - (w1 * u + w2 * e + w3 * s)).abs() < 1e-9);
        }
    }

    /// The incremental evaluator agrees with the reference evaluator after
    /// any sequence of adds/removes, and its probe deltas match the
    /// subsequent applied change.
    #[test]
    fn incremental_matches_naive(
        model in arb_model(),
        ops in prop::collection::vec((0usize..7, any::<bool>()), 1..24),
    ) {
        let w = ObjectiveWeights::unweighted();
        let naive = Objective::new(&model, w);
        let mut inc = IncrementalObjective::new(&model, w);
        for (raw, add) in ops {
            let c = raw % model.num_candidates;
            let before = inc.value();
            if add {
                let delta = inc.delta_add(c);
                inc.add(c);
                prop_assert!((inc.value() - (before + delta)).abs() < 1e-9);
            } else {
                let delta = inc.delta_remove(c);
                inc.remove(c);
                prop_assert!((inc.value() - (before + delta)).abs() < 1e-9);
            }
            let sel = inc.selection();
            prop_assert!((inc.value() - naive.value(&sel)).abs() < 1e-9,
                "incremental {} vs naive {} at {sel:?}", inc.value(), naive.value(&sel));
        }
    }
}

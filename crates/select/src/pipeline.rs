//! Scenario-level pipeline: build the model, preprocess, select, score.

use crate::coverage::CoverageModel;
use crate::metrics::{data_prf, mapping_prf, Prf};
use crate::objective::{Objective, ObjectiveWeights};
use crate::preprocess::{preprocess, PreprocessReport};
use crate::selectors::{SelectError, Selection, Selector};
use cms_ibench::Scenario;
use std::time::{Duration, Instant};

/// Everything measured for one (scenario, selector) pair.
#[derive(Clone, Debug)]
pub struct SelectionOutcome {
    /// Selector name.
    pub selector: String,
    /// The selection and its objective (on the preprocessed model, plus
    /// the preprocessing constant so values are comparable across
    /// selectors and to the full objective).
    pub selection: Selection,
    /// Mapping-level precision/recall/F1 against the gold mapping.
    pub mapping: Prf,
    /// Data-level precision/recall/F1 (exchanged-instance comparison).
    pub data: Prf,
    /// Objective value of the gold mapping itself (reference point).
    pub gold_objective: f64,
    /// Preprocessing summary.
    pub preprocess: PreprocessReport,
    /// Wall-clock time of model building + selection.
    pub wall: Duration,
    /// Wall-clock time of the selection call only.
    pub select_wall: Duration,
}

/// Run one selector on one scenario. Selector failures (e.g. grounding
/// errors in the PSL selector) propagate instead of aborting.
pub fn evaluate_scenario(
    scenario: &Scenario,
    selector: &dyn Selector,
    weights: &ObjectiveWeights,
) -> Result<SelectionOutcome, SelectError> {
    let _span = cms_obs::span("pipeline/evaluate");
    let start = Instant::now();
    let model = {
        let _span = cms_obs::span("pipeline/build-model");
        CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates)
    };
    let (reduced, report) = preprocess(&model);
    let constant = weights.w_explain * report.certain_unexplained as f64;

    let select_start = Instant::now();
    let mut selection = {
        let _span = cms_obs::span(format!("pipeline/select/{}", selector.name()));
        selector.select(&reduced, weights)?
    };
    let select_wall = select_start.elapsed();
    selection.objective += constant;

    let gold_objective = Objective::new(&reduced, *weights).value(&scenario.gold) + constant;
    let mapping = mapping_prf(&selection.selected, &scenario.gold);
    let data = data_prf(
        &scenario.source,
        &scenario.candidates,
        &selection.selected,
        &scenario.gold,
    );
    Ok(SelectionOutcome {
        selector: selector.name().to_owned(),
        selection,
        mapping,
        data,
        gold_objective,
        preprocess: report,
        wall: start.elapsed(),
        select_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::{Greedy, PslCollective};
    use cms_ibench::{generate, Primitive, ScenarioConfig};

    #[test]
    fn clean_cp_scenario_recovers_gold_exactly() {
        let scenario = generate(&ScenarioConfig::single_primitive(Primitive::Cp, 2));
        let outcome =
            evaluate_scenario(&scenario, &Greedy, &ObjectiveWeights::unweighted()).unwrap();
        assert_eq!(
            outcome.mapping.f1, 1.0,
            "selected {:?}",
            outcome.selection.selected
        );
        assert_eq!(outcome.data.f1, 1.0);
        assert!(outcome.selection.objective <= outcome.gold_objective + 1e-9);
    }

    #[test]
    fn clean_default_scenario_psl_matches_gold_data() {
        let scenario = generate(&ScenarioConfig::default());
        let outcome = evaluate_scenario(
            &scenario,
            &PslCollective::default(),
            &ObjectiveWeights::unweighted(),
        )
        .unwrap();
        // On a clean scenario the gold mapping explains everything with
        // zero errors, so any objective-optimal selection reproduces the
        // gold data exactly.
        assert!(
            outcome.data.f1 > 0.99,
            "data F1 = {:?} selected {:?} gold {:?}",
            outcome.data,
            outcome.selection.selected,
            scenario.gold
        );
    }
}

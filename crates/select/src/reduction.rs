//! The SET COVER ⇒ mapping-selection reduction (appendix §III).
//!
//! Given `U`, a collection `R = {R_i ⊆ U}`, and a bound `n`, the appendix
//! constructs (with `m = 2n`, auxiliary domain `D = {1, …, m+1}`):
//!
//! ```text
//! S = {R_i/2},  T = {U/2},  C = {R_i(X,Y) → U(X,Y)}
//! I = ⋃ R_i × D,  J = U × D
//! ```
//!
//! Each candidate is full, size 2, makes no errors, and explains
//! `(m+1)·|R_i|` target tuples; hence
//! `F(M) = (m+1)·(|U| − |⋃_{θ∈M} R_i|) + 2·|M|` and a selection with
//! `F(M) ≤ 2n` exists iff a set cover of size ≤ n exists.
//!
//! The reduction doubles as a correctness test (the formula must agree
//! with the generic objective machinery) and as the EX7 experiment (where
//! PSL-relaxation quality is measured against exact search on instances
//! with known structure).

use crate::coverage::CoverageModel;
use crate::objective::{Objective, ObjectiveWeights};
use cms_data::{Instance, Schema};
use cms_tgd::{Atom, StTgd, Term, VarId};

/// A SET COVER instance.
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    /// Universe size; elements are `0..universe`.
    pub universe: usize,
    /// The collection of subsets.
    pub sets: Vec<Vec<usize>>,
    /// The cover-size bound `n` of the decision problem.
    pub bound: usize,
}

/// The constructed mapping-selection instance.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// Source schema (one binary relation per set).
    pub source_schema: Schema,
    /// Target schema (one binary relation `u`).
    pub target_schema: Schema,
    /// Source instance `I`.
    pub source: Instance,
    /// Target instance `J`.
    pub target: Instance,
    /// Candidate tgds, one per set, in set order.
    pub candidates: Vec<StTgd>,
    /// The decision threshold `m = 2n`.
    pub threshold: f64,
    /// `|D| = m + 1`.
    pub domain_size: usize,
}

/// Build the reduction for a SET COVER instance.
pub fn build_reduction(sc: &SetCoverInstance) -> Reduction {
    let m = 2 * sc.bound;
    let domain_size = m + 1;

    let mut source_schema = Schema::new("source");
    let mut target_schema = Schema::new("target");
    let u_rel = target_schema.add_relation("u", &["x", "y"]);

    let mut source = Instance::new();
    let mut target = Instance::new();
    let mut candidates = Vec::with_capacity(sc.sets.len());

    for (i, set) in sc.sets.iter().enumerate() {
        let r = source_schema.add_relation(&format!("r{i}"), &["x", "y"]);
        for &elem in set {
            for d in 1..=domain_size {
                source.insert_ground(r, &[&format!("e{elem}"), &format!("d{d}")]);
            }
        }
        // R_i(X, Y) → U(X, Y)
        candidates.push(StTgd::new(
            vec![Atom::new(r, vec![Term::Var(VarId(0)), Term::Var(VarId(1))])],
            vec![Atom::new(
                u_rel,
                vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
            )],
            vec!["X".into(), "Y".into()],
        ));
    }
    for elem in 0..sc.universe {
        for d in 1..=domain_size {
            target.insert_ground(u_rel, &[&format!("e{elem}"), &format!("d{d}")]);
        }
    }

    Reduction {
        source_schema,
        target_schema,
        source,
        target,
        candidates,
        threshold: m as f64,
        domain_size,
    }
}

/// The closed-form objective of the appendix:
/// `F(M) = (m+1)·(|U| − |⋃ R_i|) + 2·|M|`.
pub fn closed_form_objective(sc: &SetCoverInstance, selection: &[usize]) -> f64 {
    let mut covered = vec![false; sc.universe];
    for &i in selection {
        for &e in &sc.sets[i] {
            covered[e] = true;
        }
    }
    let uncovered = covered.iter().filter(|&&c| !c).count();
    let m = 2 * sc.bound;
    ((m + 1) * uncovered) as f64 + 2.0 * selection.len() as f64
}

/// True iff `selection` covers the universe within the bound — i.e.
/// witnesses a YES answer to the SET COVER instance.
pub fn is_cover_within_bound(sc: &SetCoverInstance, selection: &[usize]) -> bool {
    if selection.len() > sc.bound {
        return false;
    }
    let mut covered = vec![false; sc.universe];
    for &i in selection {
        for &e in &sc.sets[i] {
            covered[e] = true;
        }
    }
    covered.iter().all(|&c| c)
}

/// Evaluate the generic objective machinery on the reduction (sanity
/// bridge used by tests and EX7).
pub fn generic_objective(red: &Reduction, selection: &[usize]) -> f64 {
    let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
    Objective::new(&model, ObjectiveWeights::unweighted()).value(selection)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetCoverInstance {
        // U = {0,1,2,3}; R0={0,1}, R1={1,2}, R2={2,3}, R3={0,3}.
        // Optimal covers: {R0,R2} or {R1,R3}, size 2.
        SetCoverInstance {
            universe: 4,
            sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            bound: 2,
        }
    }

    #[test]
    fn closed_form_matches_generic_objective() {
        let sc = small();
        let red = build_reduction(&sc);
        for sel in [vec![], vec![0], vec![0, 2], vec![1, 3], vec![0, 1, 2, 3]] {
            let closed = closed_form_objective(&sc, &sel);
            let generic = generic_objective(&red, &sel);
            assert!(
                (closed - generic).abs() < 1e-9,
                "selection {sel:?}: closed {closed} vs generic {generic}"
            );
        }
    }

    #[test]
    fn threshold_characterizes_covers() {
        let sc = small();
        // F(M) ≤ 2n exactly for covering selections of size ≤ n.
        for sel in [vec![0usize, 2], vec![1, 3]] {
            assert!(is_cover_within_bound(&sc, &sel));
            assert!(closed_form_objective(&sc, &sel) <= 2.0 * sc.bound as f64);
        }
        for sel in [vec![], vec![0], vec![0, 1]] {
            assert!(!is_cover_within_bound(&sc, &sel));
            assert!(closed_form_objective(&sc, &sel) > 2.0 * sc.bound as f64);
        }
    }

    #[test]
    fn candidates_make_no_errors() {
        let sc = small();
        let red = build_reduction(&sc);
        let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
        assert!(model.errors.is_empty());
        assert!(model.sizes.iter().all(|&s| s == 2));
    }

    #[test]
    fn instance_sizes_match_construction() {
        let sc = small();
        let red = build_reduction(&sc);
        // |J| = |U| · (m+1); m = 4.
        assert_eq!(red.target.total_len(), 4 * 5);
        // |I| = Σ|R_i| · (m+1) = 8 · 5.
        assert_eq!(red.source.total_len(), 8 * 5);
        assert_eq!(red.candidates.len(), 4);
        assert_eq!(red.threshold, 4.0);
    }
}

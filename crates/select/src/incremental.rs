//! Incremental objective evaluation.
//!
//! Greedy and local search evaluate `F` once per candidate per pass; the
//! naive evaluator is `O(|selection| · covers)` per call, which makes those
//! selectors quadratic-ish in candidate count. This evaluator maintains the
//! selection state so that *applying* or *probing* a single add/remove is
//! proportional to the touched candidate's cover list (plus its error
//! groups), not the whole model:
//!
//! * per target: the multiset of cover degrees of selected candidates,
//!   as a count-indexed max structure (degrees are few and reused, so a
//!   sorted `Vec<(degree, count)>` per target stays tiny);
//! * per error group: how many selected creators it has;
//! * running totals for the three components.
//!
//! Equivalence with [`crate::objective::Objective`] is enforced by a
//! property test (`tests/properties.rs`).

use crate::coverage::CoverageModel;
use crate::objective::ObjectiveWeights;

/// Mutable selection state with O(touched) updates.
pub struct IncrementalObjective<'a> {
    model: &'a CoverageModel,
    weights: ObjectiveWeights,
    selected: Vec<bool>,
    /// Per target: selected cover degrees, descending, with multiplicity.
    target_degrees: Vec<Vec<(f64, usize)>>,
    /// Per error group: number of selected creators.
    group_hits: Vec<usize>,
    /// Running Σ_t max-degree over selected.
    explained_sum: f64,
    /// Running count of triggered error groups.
    errors: usize,
    /// Running Σ size of selected.
    size: usize,
}

impl<'a> IncrementalObjective<'a> {
    /// Start from the empty selection.
    pub fn new(model: &'a CoverageModel, weights: ObjectiveWeights) -> IncrementalObjective<'a> {
        IncrementalObjective {
            model,
            weights,
            selected: vec![false; model.num_candidates],
            target_degrees: vec![Vec::new(); model.num_targets()],
            group_hits: vec![0; model.errors.len()],
            explained_sum: 0.0,
            errors: 0,
            size: 0,
        }
    }

    /// Start from a given selection.
    pub fn with_selection(
        model: &'a CoverageModel,
        weights: ObjectiveWeights,
        selection: &[usize],
    ) -> IncrementalObjective<'a> {
        let mut inc = IncrementalObjective::new(model, weights);
        for &c in selection {
            if !inc.selected[c] {
                inc.add(c);
            }
        }
        inc
    }

    /// Current objective value.
    pub fn value(&self) -> f64 {
        let unexplained = self.model.num_targets() as f64 - self.explained_sum;
        self.weights.w_explain * unexplained
            + self.weights.w_error * self.errors as f64
            + self.weights.w_size * self.size as f64
    }

    /// Is candidate `c` currently selected?
    pub fn is_selected(&self, c: usize) -> bool {
        self.selected[c]
    }

    /// The current selection as sorted indices.
    pub fn selection(&self) -> Vec<usize> {
        (0..self.selected.len())
            .filter(|&c| self.selected[c])
            .collect()
    }

    /// Apply: add candidate `c`. No-op if already selected.
    pub fn add(&mut self, c: usize) {
        if std::mem::replace(&mut self.selected[c], true) {
            return;
        }
        self.size += self.model.sizes[c];
        for &(t, d) in &self.model.covers[c] {
            let degrees = &mut self.target_degrees[t];
            let old_max = degrees.first().map_or(0.0, |&(m, _)| m);
            insert_degree(degrees, d);
            let new_max = degrees[0].0;
            self.explained_sum += new_max - old_max;
        }
        for (g, group) in self.model.errors.iter().enumerate() {
            if group.creators.contains(&c) {
                if self.group_hits[g] == 0 {
                    self.errors += 1;
                }
                self.group_hits[g] += 1;
            }
        }
    }

    /// Apply: remove candidate `c`. No-op if not selected.
    pub fn remove(&mut self, c: usize) {
        if !std::mem::replace(&mut self.selected[c], false) {
            return;
        }
        self.size -= self.model.sizes[c];
        for &(t, d) in &self.model.covers[c] {
            let degrees = &mut self.target_degrees[t];
            let old_max = degrees[0].0;
            remove_degree(degrees, d);
            let new_max = degrees.first().map_or(0.0, |&(m, _)| m);
            self.explained_sum += new_max - old_max;
        }
        for (g, group) in self.model.errors.iter().enumerate() {
            if group.creators.contains(&c) {
                self.group_hits[g] -= 1;
                if self.group_hits[g] == 0 {
                    self.errors -= 1;
                }
            }
        }
    }

    /// Probe: objective delta of adding `c`, without applying.
    /// Returns 0 if already selected.
    pub fn delta_add(&self, c: usize) -> f64 {
        if self.selected[c] {
            return 0.0;
        }
        let mut delta = self.weights.w_size * self.model.sizes[c] as f64;
        for &(t, d) in &self.model.covers[c] {
            let cur = self.target_degrees[t].first().map_or(0.0, |&(m, _)| m);
            if d > cur {
                delta -= self.weights.w_explain * (d - cur);
            }
        }
        for (g, group) in self.model.errors.iter().enumerate() {
            if self.group_hits[g] == 0 && group.creators.contains(&c) {
                delta += self.weights.w_error;
            }
        }
        delta
    }

    /// Probe: objective delta of removing `c`, without applying.
    /// Returns 0 if not selected.
    pub fn delta_remove(&self, c: usize) -> f64 {
        if !self.selected[c] {
            return 0.0;
        }
        let mut delta = -self.weights.w_size * self.model.sizes[c] as f64;
        for &(t, d) in &self.model.covers[c] {
            let degrees = &self.target_degrees[t];
            let cur = degrees[0].0;
            if d >= cur {
                // c holds (or ties) the max: find the max after removal.
                let after = max_after_removal(degrees, d);
                delta += self.weights.w_explain * (cur - after);
            }
        }
        for (g, group) in self.model.errors.iter().enumerate() {
            if self.group_hits[g] == 1 && group.creators.contains(&c) {
                delta -= self.weights.w_error;
            }
        }
        delta
    }
}

/// Insert degree `d` into a descending `(degree, count)` list.
fn insert_degree(degrees: &mut Vec<(f64, usize)>, d: f64) {
    match degrees.iter_mut().find(|(m, _)| (*m - d).abs() < 1e-12) {
        Some((_, count)) => *count += 1,
        None => {
            let pos = degrees.partition_point(|&(m, _)| m > d);
            degrees.insert(pos, (d, 1));
        }
    }
}

/// Remove one occurrence of degree `d` from a descending list.
fn remove_degree(degrees: &mut Vec<(f64, usize)>, d: f64) {
    let idx = degrees
        .iter()
        .position(|(m, _)| (*m - d).abs() < 1e-12)
        .expect("removing a degree that was never inserted");
    degrees[idx].1 -= 1;
    if degrees[idx].1 == 0 {
        degrees.remove(idx);
    }
}

/// Max degree after removing one occurrence of `d` (list descending).
fn max_after_removal(degrees: &[(f64, usize)], d: f64) -> f64 {
    let (top, count) = degrees[0];
    if (top - d).abs() < 1e-12 && count == 1 {
        degrees.get(1).map_or(0.0, |&(m, _)| m)
    } else {
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::tests::running_example;
    use crate::objective::Objective;

    fn model() -> CoverageModel {
        let (_, _, i, j, cands) = running_example();
        CoverageModel::build(&i, &j, &cands)
    }

    #[test]
    fn matches_naive_on_all_subsets() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let naive = Objective::new(&model, w);
        for subset in 0u32..4 {
            let sel: Vec<usize> = (0..2).filter(|&b| subset & (1 << b) != 0).collect();
            let inc = IncrementalObjective::with_selection(&model, w, &sel);
            assert!(
                (inc.value() - naive.value(&sel)).abs() < 1e-9,
                "subset {sel:?}: {} vs {}",
                inc.value(),
                naive.value(&sel)
            );
        }
    }

    #[test]
    fn deltas_agree_with_apply() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let mut inc = IncrementalObjective::new(&model, w);
        let before = inc.value();
        let d0 = inc.delta_add(0);
        inc.add(0);
        assert!((inc.value() - (before + d0)).abs() < 1e-9);
        let d1 = inc.delta_add(1);
        inc.add(1);
        let with_both = inc.value();
        let r0 = inc.delta_remove(0);
        inc.remove(0);
        assert!((inc.value() - (with_both + r0)).abs() < 1e-9);
        let _ = d1;
    }

    #[test]
    fn add_remove_roundtrip_restores_value() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let mut inc = IncrementalObjective::with_selection(&model, w, &[1]);
        let v = inc.value();
        inc.add(0);
        inc.remove(0);
        assert!((inc.value() - v).abs() < 1e-9);
        assert_eq!(inc.selection(), vec![1]);
    }

    #[test]
    fn idempotent_operations() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let mut inc = IncrementalObjective::new(&model, w);
        inc.add(0);
        let v = inc.value();
        inc.add(0); // no-op
        assert_eq!(inc.value(), v);
        assert_eq!(inc.delta_add(0), 0.0);
        inc.remove(0);
        inc.remove(0); // no-op
        assert_eq!(inc.delta_remove(0), 0.0);
        assert!(!inc.is_selected(0));
    }

    #[test]
    fn tie_degrees_handled() {
        // Two candidates covering the same target with the same degree:
        // removing one must not drop the max.
        use crate::coverage::ErrorGroup;
        use cms_data::{RelId, Tuple};
        let m = CoverageModel {
            num_candidates: 2,
            targets: vec![Tuple::ground(RelId(0), &["t"])],
            sizes: vec![1, 1],
            covers: vec![vec![(0, 0.5)], vec![(0, 0.5)]],
            errors: Vec::<ErrorGroup>::new(),
            error_counts: vec![0, 0],
        };
        let w = ObjectiveWeights::unweighted();
        let mut inc = IncrementalObjective::with_selection(&m, w, &[0, 1]);
        let v_both = inc.value();
        // Removing either keeps explains at 0.5: delta = −size only.
        assert!((inc.delta_remove(0) + 1.0).abs() < 1e-9);
        inc.remove(0);
        assert!((inc.value() - (v_both - 1.0)).abs() < 1e-9);
    }
}

//! §III-C preprocessing: remove what optimization cannot change.
//!
//! * **Certain unexplained** target tuples — covered by no candidate — add
//!   the constant `w1 · count` to `F(M)` for *every* `M`; they are removed
//!   from the model and reported.
//! * **Useless candidates** — with no positive cover — can only add errors
//!   and size; no optimal selection contains them. They stay in the model
//!   (so candidate indices remain stable) but are reported; all selectors
//!   skip them.

use crate::coverage::{CoverageModel, ErrorGroup};

/// What preprocessing removed or flagged.
#[derive(Clone, Debug, Default)]
pub struct PreprocessReport {
    /// Target tuples no candidate covers (removed; each contributes a
    /// constant `w1` to the objective of every selection).
    pub certain_unexplained: usize,
    /// Candidates with no positive cover (flagged, never selected).
    pub useless_candidates: Vec<usize>,
}

/// Reduce a coverage model. Candidate indices are preserved; target
/// indices are compacted.
pub fn preprocess(model: &CoverageModel) -> (CoverageModel, PreprocessReport) {
    let dead_targets = model.certainly_unexplained();
    let useless = model.useless_candidates();

    // Compact target indexing.
    let mut keep = vec![true; model.num_targets()];
    for &t in &dead_targets {
        keep[t] = false;
    }
    let mut new_index = vec![usize::MAX; model.num_targets()];
    let mut next = 0usize;
    for (t, &k) in keep.iter().enumerate() {
        if k {
            new_index[t] = next;
            next += 1;
        }
    }

    let targets = model
        .targets
        .iter()
        .enumerate()
        .filter(|(t, _)| keep[*t])
        .map(|(_, tuple)| tuple.clone())
        .collect();
    let covers = model
        .covers
        .iter()
        .map(|list| {
            list.iter()
                .filter(|&&(t, _)| keep[t])
                .map(|&(t, d)| (new_index[t], d))
                .collect()
        })
        .collect();

    let reduced = CoverageModel {
        num_candidates: model.num_candidates,
        targets,
        sizes: model.sizes.clone(),
        covers,
        errors: model
            .errors
            .iter()
            .map(|g| ErrorGroup {
                creators: g.creators.clone(),
                example: g.example.clone(),
            })
            .collect(),
        error_counts: model.error_counts.clone(),
    };
    let report = PreprocessReport {
        certain_unexplained: dead_targets.len(),
        useless_candidates: useless,
    };
    (reduced, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::tests::running_example;
    use crate::objective::{Objective, ObjectiveWeights};

    #[test]
    fn removes_junk_targets_and_reports_constant() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let (reduced, report) = preprocess(&model);
        assert_eq!(report.certain_unexplained, 2);
        assert_eq!(reduced.num_targets(), 2);
        assert_eq!(reduced.num_candidates, 2);

        // F_reduced(M) + w1 · certain = F_full(M) for every selection.
        let f_full = Objective::new(&model, ObjectiveWeights::unweighted());
        let f_red = Objective::new(&reduced, ObjectiveWeights::unweighted());
        for sel in [vec![], vec![0], vec![1], vec![0, 1]] {
            let full = f_full.value(&sel);
            let red = f_red.value(&sel) + report.certain_unexplained as f64;
            assert!(
                (full - red).abs() < 1e-9,
                "selection {sel:?}: {full} vs {red}"
            );
        }
    }

    #[test]
    fn flags_useless_candidates() {
        let (src, tgt, i, j, mut cands) = running_example();
        cands.push(cms_tgd::parse_tgd("team(c, e) -> org(e, c)", &src, &tgt).unwrap());
        let model = CoverageModel::build(&i, &j, &cands);
        let (_, report) = preprocess(&model);
        assert_eq!(report.useless_candidates, vec![2]);
    }

    #[test]
    fn clean_model_passes_through() {
        let (_, _, i, j, cands) = running_example();
        let mut j2 = j.clone();
        // Remove the junk tuples so everything is coverable.
        let tuples = j.to_tuples();
        for t in &tuples {
            let covered = t.args.iter().any(|v| {
                *v == cms_data::Value::constant("ML")
                    || *v == cms_data::Value::constant("111")
                    || *v == cms_data::Value::constant("SAP")
                    || *v == cms_data::Value::constant("Alice")
            });
            if !covered {
                j2.remove(t.rel, &t.args);
            }
        }
        let model = CoverageModel::build(&i, &j2, &cands);
        let (reduced, report) = preprocess(&model);
        assert_eq!(report.certain_unexplained, 0);
        assert_eq!(reduced.num_targets(), model.num_targets());
    }
}

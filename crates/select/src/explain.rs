//! Human-readable selection reports.
//!
//! A downstream user who just ran selection wants to know *why* each
//! candidate was kept or dropped. This module renders the coverage model
//! and a selection into a per-candidate account: explanatory mass
//! contributed, errors introduced, size paid, and the marginal objective
//! change of flipping the candidate — the same quantities the objective
//! sums, attributed back to candidates.

use crate::coverage::CoverageModel;
use crate::incremental::IncrementalObjective;
use crate::objective::{Objective, ObjectiveWeights};
use cms_data::Schema;
use cms_tgd::StTgd;
use std::fmt::Write as _;

/// Per-candidate row of a selection report.
#[derive(Clone, Debug)]
pub struct CandidateReport {
    /// Candidate index.
    pub index: usize,
    /// Whether the selection includes it.
    pub selected: bool,
    /// Σ covers(θ, t) over all targets (its standalone explanatory mass).
    pub cover_mass: f64,
    /// Targets it covers to degree 1.
    pub full_covers: usize,
    /// Error groups it participates in.
    pub errors: usize,
    /// size(θ).
    pub size: usize,
    /// Objective delta of flipping this candidate's membership in the
    /// given selection (negative = flipping would improve the objective;
    /// a coherent selection has no negative flips).
    pub flip_delta: f64,
}

/// A full report for one selection.
#[derive(Clone, Debug)]
pub struct SelectionReport {
    /// Objective value of the selection.
    pub objective: f64,
    /// Components `(unexplained, errors, size)`.
    pub components: (f64, f64, f64),
    /// Targets explained to degree 1 by the selection.
    pub fully_explained: usize,
    /// Targets completely unexplained by the selection.
    pub unexplained: usize,
    /// Per-candidate rows, candidate order.
    pub candidates: Vec<CandidateReport>,
}

/// Build a report for `selection` over `model`.
pub fn explain_selection(
    model: &CoverageModel,
    weights: &ObjectiveWeights,
    selection: &[usize],
) -> SelectionReport {
    let objective = Objective::new(model, *weights);
    let value = objective.value(selection);
    let components = objective.components(selection);

    let mut best = vec![0.0f64; model.num_targets()];
    for &c in selection {
        for &(t, d) in &model.covers[c] {
            if d > best[t] {
                best[t] = d;
            }
        }
    }
    let fully_explained = best.iter().filter(|&&d| (d - 1.0).abs() < 1e-12).count();
    let unexplained = best.iter().filter(|&&d| d == 0.0).count();

    let inc = IncrementalObjective::with_selection(model, *weights, selection);
    let candidates = (0..model.num_candidates)
        .map(|c| {
            let selected = selection.contains(&c);
            CandidateReport {
                index: c,
                selected,
                cover_mass: model.covers[c].iter().map(|&(_, d)| d).sum(),
                full_covers: model.covers[c]
                    .iter()
                    .filter(|&&(_, d)| (d - 1.0).abs() < 1e-12)
                    .count(),
                errors: model.error_counts[c],
                size: model.sizes[c],
                flip_delta: if selected {
                    inc.delta_remove(c)
                } else {
                    inc.delta_add(c)
                },
            }
        })
        .collect();

    SelectionReport {
        objective: value,
        components,
        fully_explained,
        unexplained,
        candidates,
    }
}

impl SelectionReport {
    /// True iff no single flip would improve the objective (the selection
    /// is 1-flip locally optimal).
    pub fn is_flip_optimal(&self) -> bool {
        self.candidates.iter().all(|c| c.flip_delta >= -1e-9)
    }

    /// Render as a text table; tgds printed against the schema pair when
    /// provided.
    pub fn render(&self, tgds: Option<(&[StTgd], &Schema, &Schema)>) -> String {
        let mut out = String::new();
        let (u, e, s) = self.components;
        let _ = writeln!(
            out,
            "objective F = {:.3}  (unexplained {:.3} + errors {:.0} + size {:.0})",
            self.objective, u, e, s
        );
        let _ = writeln!(
            out,
            "targets: {} fully explained, {} untouched",
            self.fully_explained, self.unexplained
        );
        let _ = writeln!(
            out,
            "{:<5} {:<4} {:>10} {:>6} {:>7} {:>5} {:>10}",
            "cand", "sel", "coverMass", "full", "errors", "size", "flipΔ"
        );
        for c in &self.candidates {
            let _ = writeln!(
                out,
                "θ{:<4} {:<4} {:>10.3} {:>6} {:>7} {:>5} {:>10.3}",
                c.index,
                if c.selected { "yes" } else { "no" },
                c.cover_mass,
                c.full_covers,
                c.errors,
                c.size,
                c.flip_delta
            );
            if let Some((tgds, src, tgt)) = tgds {
                let _ = writeln!(out, "      {}", tgds[c.index].display(src, tgt));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::tests::running_example;
    use crate::selectors::{BranchBound, Selector};

    #[test]
    fn report_matches_objective_components() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let w = ObjectiveWeights::unweighted();
        let report = explain_selection(&model, &w, &[1]);
        assert!((report.objective - 8.0).abs() < 1e-9);
        let (u, e, s) = report.components;
        assert!((u - 2.0).abs() < 1e-9);
        assert!((e - 2.0).abs() < 1e-9);
        assert!((s - 4.0).abs() < 1e-9);
        assert_eq!(report.fully_explained, 2);
        assert_eq!(report.unexplained, 2);
    }

    #[test]
    fn optimal_selection_is_flip_optimal() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let w = ObjectiveWeights::unweighted();
        let best = BranchBound::default().select(&model, &w).unwrap();
        let report = explain_selection(&model, &w, &best.selected);
        assert!(report.is_flip_optimal(), "{:?}", report.candidates);
    }

    #[test]
    fn suboptimal_selection_shows_improving_flip() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let w = ObjectiveWeights::unweighted();
        // {θ1, θ3} (F = 12) improves by dropping either candidate.
        let report = explain_selection(&model, &w, &[0, 1]);
        assert!(!report.is_flip_optimal());
        assert!(report
            .candidates
            .iter()
            .any(|c| c.selected && c.flip_delta < 0.0));
    }

    #[test]
    fn render_contains_key_facts() {
        let (src, tgt, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let w = ObjectiveWeights::unweighted();
        let report = explain_selection(&model, &w, &[1]);
        let text = report.render(Some((&cands, &src, &tgt)));
        assert!(text.contains("F = 8.000"), "{text}");
        assert!(text.contains("θ0"), "{text}");
        assert!(text.contains("task"), "tgd rendering missing: {text}");
        // Renders without schema context too.
        let bare = report.render(None);
        assert!(bare.contains("θ1"));
    }
}

//! The paper's approach: collective selection via PSL MAP inference.
//!
//! The coverage model compiles into the HL-MRF described in DESIGN.md §2:
//!
//! ```text
//! predicates:  tuple/1, cand/1, creates/2 (closed)
//!              inMap/1, explained/1, err/1 (open)
//!
//! (R1)  w1 :  tuple(T) → explained(T)
//! (R2)  hard:  explained(t) ≤ Σ_θ covers(θ,t) · inMap(θ)     (per target)
//! (R3)  hard:  inMap(θ) ≤ err(g)        for each creator θ of group g
//! (R4)  w2 :  err(g) → 0                 (raw hinge on err)
//! (R5)  w3·size(θ) :  inMap(θ) → 0       (raw hinge; size prior)
//! ```
//!
//! MAP inference (consensus ADMM) yields relaxed `inMap` truths in [0,1];
//! the final discrete mapping is the best of (a) every threshold rounding
//! and (b) a greedy repair seeded by the best rounding, both evaluated
//! under the true discrete objective. The LP objective of the integral
//! points coincides with `F(M)` except that `explains` is the capped *sum*
//! of covers rather than the max — the standard PSL relaxation.

use super::greedy::greedy_from;
use super::{SelectError, Selection, Selector};
use crate::coverage::CoverageModel;
use crate::objective::{Objective, ObjectiveWeights};
use cms_psl::{
    best_threshold_rounding, rvar, AdmmConfig, AtomLin, ConstraintKind, GroundAtom, GroundProgram,
    MapSolution, Program, RuleBuilder, Vocabulary,
};

/// Iteration budget of the coarse first ADMM pass; the refinement pass is
/// warm-started from its consensus (see [`PslCollective::solve_two_stage`]).
const COARSE_BURST: usize = 200;

/// The collective PSL selector.
#[derive(Clone, Debug)]
pub struct PslCollective {
    /// ADMM configuration.
    pub admm: AdmmConfig,
    /// Run a greedy add/remove repair from the rounded solution.
    pub greedy_repair: bool,
    /// Square the hinges of the soft rules (quadratic variant; the paper's
    /// objective is linear, squared is offered for the EX8 ablation).
    pub squared: bool,
}

impl Default for PslCollective {
    fn default() -> PslCollective {
        PslCollective {
            admm: AdmmConfig::default(),
            greedy_repair: true,
            squared: false,
        }
    }
}

/// Artifacts of one PSL run, exposed for experiments that inspect the
/// relaxation itself (EX7, EX8).
#[derive(Clone, Debug)]
pub struct PslRun {
    /// Relaxed `inMap` truth value per candidate.
    pub relaxed: Vec<f64>,
    /// ADMM iterations.
    pub iterations: usize,
    /// Whether ADMM converged within its budget.
    pub converged: bool,
    /// Soft MAP objective (relaxation optimum; lower-bounds no… reports
    /// the relaxed objective value including constant loss).
    pub soft_objective: f64,
    /// Ground potentials + constraints (model size proxy).
    pub ground_terms: usize,
    /// Health of the final solve pass (see [`cms_psl::SolveHealth`]).
    pub health: cms_psl::SolveHealth,
    /// Watchdog restarts absorbed across both solve passes.
    pub restarts: usize,
}

impl PslCollective {
    /// Coarse-then-refine MAP inference: a bounded first pass, then — if
    /// it has not converged — a **warm-started** refinement pass
    /// ([`GroundProgram::solve_warm_dual`]) seeded with the coarse
    /// consensus *and* the coarse dual state (so refinement genuinely
    /// resumes the interrupted solve instead of re-learning the duals),
    /// capped at the *remaining* iteration budget so the combined count
    /// never exceeds `self.admm.max_iterations`. Returns the final
    /// solution and the total iterations across both passes.
    fn solve_two_stage(&self, ground: &GroundProgram) -> (MapSolution, usize) {
        let coarse_cfg = AdmmConfig {
            max_iterations: self.admm.max_iterations.min(COARSE_BURST),
            ..self.admm.clone()
        };
        let (coarse, duals) = ground.solve_warm_dual(&coarse_cfg, &[], None);
        if coarse.admm.converged || self.admm.max_iterations <= COARSE_BURST {
            let iterations = coarse.admm.iterations;
            return (coarse, iterations);
        }
        let refine_cfg = AdmmConfig {
            max_iterations: self.admm.max_iterations - coarse.admm.iterations,
            ..self.admm.clone()
        };
        // An unhealthy coarse pass (stalled/diverged/timed out) is not a
        // trustworthy seed — refinement then starts cold instead of
        // resuming from a state the watchdog already condemned.
        let (refined, _) = if coarse.admm.health.is_nominal() {
            ground.solve_warm_dual(&refine_cfg, &coarse.admm.values, Some(&duals))
        } else {
            ground.solve_warm_dual(&refine_cfg, &[], None)
        };
        let iterations = coarse.admm.iterations + refined.admm.iterations;
        (refined, iterations)
    }

    /// Read the relaxed `inMap` truths out of a solution.
    fn read_relaxed(
        model: &CoverageModel,
        ground: &GroundProgram,
        solution: &MapSolution,
        in_map_p: cms_psl::PredId,
    ) -> Vec<f64> {
        (0..model.num_candidates)
            .map(|c| {
                solution
                    .value(
                        ground,
                        &GroundAtom::from_strs(in_map_p, &[&format!("c{c}")]),
                    )
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Build the program, run MAP inference, and return the relaxed state.
    /// Grounding failures propagate instead of aborting.
    pub fn infer(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<PslRun, SelectError> {
        let (program, in_map_p) = self.build_program(model, weights);
        let ground = program.ground()?;
        let (solution, iterations) = self.solve_two_stage(&ground);
        Ok(PslRun {
            relaxed: Self::read_relaxed(model, &ground, &solution, in_map_p),
            iterations,
            converged: solution.admm.converged,
            soft_objective: solution.total_objective(),
            ground_terms: ground.potentials.len() + ground.constraints.len(),
            health: solution.admm.health,
            restarts: solution.admm.restarts,
        })
    }

    /// Build the hand-compiled ("raw") PSL program for a coverage model.
    /// Returns the program plus the `inMap` predicate id needed to read the
    /// relaxed truths back out. Exposed so benches and equivalence tests
    /// can ground the exact production program without running ADMM.
    pub fn build_program(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> (Program, cms_psl::PredId) {
        let mut vocab = Vocabulary::new();
        let tuple_p = vocab.closed("tuple", 1);
        let cand_p = vocab.closed("cand", 1);
        let in_map_p = vocab.open("inMap", 1);
        let explained_p = vocab.open("explained", 1);
        let err_p = vocab.open("err", 1);

        let mut program = Program::new(vocab);

        let t_atom = |t: usize| GroundAtom::from_strs(tuple_p, &[&format!("t{t}")]);
        let c_atom = |c: usize| GroundAtom::from_strs(cand_p, &[&format!("c{c}")]);
        let in_map = |c: usize| GroundAtom::from_strs(in_map_p, &[&format!("c{c}")]);
        let explained = |t: usize| GroundAtom::from_strs(explained_p, &[&format!("t{t}")]);
        let err = |g: usize| GroundAtom::from_strs(err_p, &[&format!("g{g}")]);

        for t in 0..model.num_targets() {
            program.db.observe(t_atom(t), 1.0);
            program.db.target(explained(t));
        }
        for c in 0..model.num_candidates {
            program.db.observe(c_atom(c), 1.0);
            program.db.target(in_map(c));
            // (R5) size prior.
            let mut lin = AtomLin::new();
            lin.add(in_map(c), 1.0);
            program.add_raw_potential(
                lin,
                weights.w_size * model.sizes[c] as f64,
                self.squared,
                "size-prior",
            );
        }
        // (R1) reward explanations.
        program.add_rule(
            RuleBuilder::new("explain-reward")
                .body(tuple_p, vec![rvar("T")])
                .head(explained_p, vec![rvar("T")])
                .weight(weights.w_explain)
                .build(),
        );
        // (R2) explanation cap per target.
        for t in 0..model.num_targets() {
            let mut lin = AtomLin::new();
            lin.add(explained(t), 1.0);
            for c in 0..model.num_candidates {
                let d = model.cover(c, t);
                if d > 0.0 {
                    lin.add(in_map(c), -d);
                }
            }
            program.add_raw_constraint(lin, ConstraintKind::LeqZero, "explain-cap");
        }
        // (R3) + (R4) error groups.
        for (g, group) in model.errors.iter().enumerate() {
            program.db.target(err(g));
            for &creator in &group.creators {
                let mut lin = AtomLin::new();
                lin.add(in_map(creator), 1.0);
                lin.add(err(g), -1.0);
                program.add_raw_constraint(lin, ConstraintKind::LeqZero, "error-link");
            }
            let mut lin = AtomLin::new();
            lin.add(err(g), 1.0);
            program.add_raw_potential(lin, weights.w_error, self.squared, "error-penalty");
        }

        (program, in_map_p)
    }
}

impl PslCollective {
    /// The same model expressed *declaratively* — logical and arithmetic
    /// PSL rules only, no raw linear terms. Semantically identical to
    /// [`PslCollective::infer`] (a test enforces it); exists to demonstrate
    /// that the engine's rule language subsumes the hand-compiled encoding
    /// and to mirror the paper's presentation of the model as PSL rules.
    ///
    /// ```text
    /// (R1)  w1  : tuple(T) → explained(T)
    /// (R2)  hard: explained(T) − Σ_C covers(C,T)·inMap(C) ≤ 0
    /// (R3)  hard: creates(C,G) ∧ inMap(C) → err(G)
    /// (R4)  w2  : errScope(G) → ¬err(G)
    /// (R5)  w3·maxSize : sizeFrac(C)·inMap(C) ≤ 0        (weighted hinge)
    /// ```
    pub fn infer_declarative(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<PslRun, SelectError> {
        let (program, in_map_p) = self.build_declarative_program(model, weights);
        let ground = program.ground()?;
        let (solution, iterations) = self.solve_two_stage(&ground);
        Ok(PslRun {
            relaxed: Self::read_relaxed(model, &ground, &solution, in_map_p),
            iterations,
            converged: solution.admm.converged,
            soft_objective: solution.total_objective(),
            ground_terms: ground.potentials.len() + ground.constraints.len(),
            health: solution.admm.health,
            restarts: solution.admm.restarts,
        })
    }

    /// Build the declarative-rule variant of the program (logical +
    /// arithmetic rules only). Returns the program plus the `inMap`
    /// predicate id. This is the program whose grounding exercises the
    /// rule-join engine hardest (the `error-link` rule is a genuine
    /// two-literal join), so the grounding benches use it.
    pub fn build_declarative_program(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> (Program, cms_psl::PredId) {
        use cms_psl::ArithRuleBuilder;
        use cms_psl::{RAtom, RTerm};

        let mut vocab = Vocabulary::new();
        let tuple_p = vocab.closed("tuple", 1);
        let cand_p = vocab.closed("cand", 1);
        let covers_p = vocab.closed("covers", 2);
        let creates_p = vocab.closed("creates", 2);
        let err_scope_p = vocab.closed("errScope", 1);
        let size_frac_p = vocab.closed("sizeFrac", 1);
        let in_map_p = vocab.open("inMap", 1);
        let explained_p = vocab.open("explained", 1);
        let err_p = vocab.open("err", 1);

        let mut program = Program::new(vocab);
        let c_name = |c: usize| format!("c{c}");
        let t_name = |t: usize| format!("t{t}");
        let g_name = |g: usize| format!("g{g}");

        let max_size = model.sizes.iter().copied().max().unwrap_or(1).max(1) as f64;
        for t in 0..model.num_targets() {
            program
                .db
                .observe(GroundAtom::from_strs(tuple_p, &[&t_name(t)]), 1.0);
            program
                .db
                .target(GroundAtom::from_strs(explained_p, &[&t_name(t)]));
        }
        for c in 0..model.num_candidates {
            program
                .db
                .observe(GroundAtom::from_strs(cand_p, &[&c_name(c)]), 1.0);
            program.db.observe(
                GroundAtom::from_strs(size_frac_p, &[&c_name(c)]),
                model.sizes[c] as f64 / max_size,
            );
            program
                .db
                .target(GroundAtom::from_strs(in_map_p, &[&c_name(c)]));
            for &(t, d) in &model.covers[c] {
                program.db.observe(
                    GroundAtom::from_strs(covers_p, &[&c_name(c), &t_name(t)]),
                    d,
                );
            }
        }
        for (g, group) in model.errors.iter().enumerate() {
            program
                .db
                .observe(GroundAtom::from_strs(err_scope_p, &[&g_name(g)]), 1.0);
            program
                .db
                .target(GroundAtom::from_strs(err_p, &[&g_name(g)]));
            for &creator in &group.creators {
                program.db.observe(
                    GroundAtom::from_strs(creates_p, &[&c_name(creator), &g_name(g)]),
                    1.0,
                );
            }
        }

        // (R1)
        program.add_rule(
            RuleBuilder::new("explain-reward")
                .body(tuple_p, vec![rvar("T")])
                .head(explained_p, vec![rvar("T")])
                .weight(weights.w_explain)
                .build(),
        );
        // (R2)
        let ratom = |pred, names: &[&str]| RAtom {
            pred,
            args: names.iter().map(|n| RTerm::Var((*n).to_owned())).collect(),
        };
        program.add_arith_rule(
            ArithRuleBuilder::new("explain-cap")
                .term(1.0, vec![ratom(explained_p, &["T"])])
                .term(
                    -1.0,
                    vec![ratom(covers_p, &["C", "T"]), ratom(in_map_p, &["C"])],
                )
                .sum_over("C")
                .build()
                .expect("explain-cap rule is valid"),
        );
        // (R3)
        program.add_rule(
            RuleBuilder::new("error-link")
                .body(creates_p, vec![rvar("C"), rvar("G")])
                .body(in_map_p, vec![rvar("C")])
                .head(err_p, vec![rvar("G")])
                .build(),
        );
        // (R4)
        program.add_rule(
            RuleBuilder::new("error-penalty")
                .body(err_scope_p, vec![rvar("G")])
                .head_neg(err_p, vec![rvar("G")])
                .weight(weights.w_error)
                .build(),
        );
        // (R5)
        program.add_arith_rule(
            ArithRuleBuilder::new("size-prior")
                .term(
                    1.0,
                    vec![ratom(size_frac_p, &["C"]), ratom(in_map_p, &["C"])],
                )
                .weight(weights.w_size * max_size)
                .build()
                .expect("size-prior rule is valid"),
        );

        (program, in_map_p)
    }
}

impl Selector for PslCollective {
    fn name(&self) -> &str {
        "psl-collective"
    }

    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError> {
        let run = self.infer(model, weights)?;
        let objective = Objective::new(model, *weights);
        let mut evaluations = 0usize;

        // Threshold rounding under the true discrete objective.
        let (rounded, rounded_value) = best_threshold_rounding(&run.relaxed, |sel| {
            evaluations += 1;
            objective.value(sel)
        });

        let (selected, value) = if self.greedy_repair {
            // Portfolio repair: polish the rounded solution greedily, and
            // also run greedy from scratch (the rounded start can sit in a
            // worse basin than the empty start); keep the best of the
            // three. This is what makes "PSL ≥ greedy" hold unconditionally
            // (enforced by a property test).
            let (repaired, repaired_value, ev1) = greedy_from(model, weights, rounded.clone());
            let (from_empty, from_empty_value, ev2) = greedy_from(model, weights, Vec::new());
            evaluations += ev1 + ev2;
            let mut best = (rounded, rounded_value);
            if repaired_value < best.1 - 1e-12 {
                best = (repaired, repaired_value);
            }
            if from_empty_value < best.1 - 1e-12 {
                best = (from_empty, from_empty_value);
            }
            best
        } else {
            (rounded, rounded_value)
        };

        let sel = Selection::new(selected, value, evaluations).with_telemetry(
            super::SelectionTelemetry {
                soft_objective: Some(run.soft_objective),
                admm_iterations: run.iterations,
                solver_restarts: run.restarts,
                last_health: Some(run.health),
                converged: Some(run.converged),
                ground_terms: Some(run.ground_terms),
                ..Default::default()
            },
        );
        Ok(sel)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{appendix_model, known_optimum_model};
    use super::*;

    #[test]
    fn solves_known_set_cover_optimally() {
        let (model, best) = known_optimum_model();
        let sel = PslCollective::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!(
            (sel.objective - best).abs() < 1e-9,
            "psl got {} expected {}",
            sel.objective,
            best
        );
    }

    #[test]
    fn appendix_example_selects_empty() {
        let model = appendix_model();
        let sel = PslCollective::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!(sel.selected.is_empty(), "{:?}", sel.selected);
        assert!((sel.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn relaxation_reports_are_sane() {
        let (model, _) = known_optimum_model();
        let run = PslCollective::default()
            .infer(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!(run.converged);
        assert!(run.ground_terms > 0);
        assert_eq!(run.relaxed.len(), 4);
        for &v in &run.relaxed {
            assert!((0.0..=1.0).contains(&v), "truth {v} out of box");
        }
    }

    #[test]
    fn without_repair_still_reasonable() {
        let (model, best) = known_optimum_model();
        let sel = PslCollective {
            greedy_repair: false,
            ..PslCollective::default()
        }
        .select(&model, &ObjectiveWeights::unweighted())
        .unwrap();
        // Pure rounding may be slightly worse but must beat "select all".
        let all = Objective::new(&model, ObjectiveWeights::unweighted()).value(&[0, 1, 2, 3]);
        assert!(sel.objective <= all + 1e-9);
        assert!(sel.objective >= best - 1e-9);
    }

    #[test]
    fn declarative_encoding_matches_raw_encoding() {
        // On a preprocessed model (no certainly-unexplained targets — their
        // cap constraints are the one thing lazy arithmetic grounding
        // cannot see), the declarative rule program and the hand-compiled
        // raw program must produce the same relaxed inMap truths.
        let (model, _) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let selector = PslCollective::default();
        let raw = selector.infer(&model, &w).unwrap();
        let declarative = selector.infer_declarative(&model, &w).unwrap();
        assert!(raw.converged && declarative.converged);
        for (c, (a, b)) in raw
            .relaxed
            .iter()
            .zip(declarative.relaxed.iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() < 5e-3,
                "candidate {c}: raw {a} vs declarative {b}"
            );
        }

        let model = appendix_model();
        let raw = selector.infer(&model, &w).unwrap();
        let declarative = selector.infer_declarative(&model, &w).unwrap();
        for (c, (a, b)) in raw
            .relaxed
            .iter()
            .zip(declarative.relaxed.iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() < 5e-3,
                "appendix candidate {c}: raw {a} vs declarative {b}"
            );
        }
    }

    #[test]
    fn squared_variant_runs() {
        let (model, _) = known_optimum_model();
        let sel = PslCollective {
            squared: true,
            ..PslCollective::default()
        }
        .select(&model, &ObjectiveWeights::unweighted())
        .unwrap();
        // The one note-format check we keep: the legacy string is still
        // rendered (from the structured telemetry) for tables and logs.
        assert!(!sel.note.is_empty());
        assert!(sel.note.starts_with("admm_iters="), "note: {}", sel.note);
        // Everything else reads the typed fields.
        let t = &sel.telemetry;
        assert!(t.converged.is_some());
        assert!(t.ground_terms.unwrap() > 0);
        assert!(t.soft_objective.unwrap().is_finite());
        assert!(t.last_health.is_some());
        assert_eq!(sel.note, t.render_note());
    }
}

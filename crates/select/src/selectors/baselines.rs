//! Reference and baseline selectors.

use super::{SelectError, Selection, Selector};
use crate::coverage::CoverageModel;
use crate::objective::{Objective, ObjectiveWeights};

/// A fixed selection evaluated under the objective — used for the gold
/// oracle, the empty mapping, and the "select everything" reference rows.
#[derive(Clone, Debug)]
pub struct FixedSelection {
    /// Display name.
    pub label: String,
    /// The fixed candidate indices.
    pub indices: Vec<usize>,
}

impl FixedSelection {
    /// A fixed selection with a label.
    pub fn new(label: impl Into<String>, indices: Vec<usize>) -> FixedSelection {
        FixedSelection {
            label: label.into(),
            indices,
        }
    }

    /// The empty mapping.
    pub fn empty() -> FixedSelection {
        FixedSelection::new("empty", Vec::new())
    }

    /// All candidates.
    pub fn all(n: usize) -> FixedSelection {
        FixedSelection::new("all-candidates", (0..n).collect())
    }
}

impl Selector for FixedSelection {
    fn name(&self) -> &str {
        &self.label
    }

    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError> {
        let objective = Objective::new(model, *weights);
        let value = objective.value(&self.indices);
        Ok(Selection::new(self.indices.clone(), value, 1))
    }
}

/// The **non-collective** baseline (EX9): decide each candidate in
/// isolation by its standalone marginal value
///
/// ```text
/// include θ  ⇔  w1 · Σ_t covers(θ, t)  >  w2 · errors(θ) + w3 · size(θ)
/// ```
///
/// This ignores all interaction: overlapping covers are double counted and
/// shared error tuples are charged per candidate. It is the natural
/// "score each mapping independently" strawman the collective formulation
/// improves on.
#[derive(Clone, Debug, Default)]
pub struct IndependentBaseline;

impl Selector for IndependentBaseline {
    fn name(&self) -> &str {
        "independent"
    }

    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError> {
        let selected: Vec<usize> = (0..model.num_candidates)
            .filter(|&c| {
                let gain: f64 = model.covers[c].iter().map(|&(_, d)| d).sum();
                let cost = weights.w_error * model.error_counts[c] as f64
                    + weights.w_size * model.sizes[c] as f64;
                weights.w_explain * gain > cost
            })
            .collect();
        let objective = Objective::new(model, *weights);
        let value = objective.value(&selected);
        Ok(Selection::new(selected, value, model.num_candidates + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{appendix_model, known_optimum_model};
    use super::*;

    #[test]
    fn fixed_selection_evaluates_given_set() {
        let model = appendix_model();
        let w = ObjectiveWeights::unweighted();
        let empty = FixedSelection::empty().select(&model, &w).unwrap();
        assert!((empty.objective - 4.0).abs() < 1e-9);
        let all = FixedSelection::all(2).select(&model, &w).unwrap();
        assert!((all.objective - 12.0).abs() < 1e-9);
        let gold_selector = FixedSelection::new("gold", vec![1]);
        assert_eq!(gold_selector.name(), "gold");
        let gold = gold_selector.select(&model, &w).unwrap();
        assert!((gold.objective - 8.0).abs() < 1e-9);
    }

    #[test]
    fn independent_overselects_on_overlap() {
        // Set-cover instance: every set has positive standalone value, so
        // the independent baseline takes all four — paying size for the
        // redundant two the exact optimum avoids.
        let (model, best) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let sel = IndependentBaseline.select(&model, &w).unwrap();
        assert_eq!(sel.selected, vec![0, 1, 2, 3]);
        assert!(sel.objective > best, "independent must be suboptimal here");
    }

    #[test]
    fn independent_rejects_pure_error_candidates() {
        let model = appendix_model();
        let w = ObjectiveWeights::unweighted();
        let sel = IndependentBaseline.select(&model, &w).unwrap();
        // θ1: gain 2/3 < 1 error + 3 size ⇒ excluded.
        // θ3: gain 2 < 2 errors + 4 size ⇒ excluded.
        assert!(sel.selected.is_empty(), "{:?}", sel.selected);
    }
}

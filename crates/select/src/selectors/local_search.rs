//! Flip-based local search with random restarts.
//!
//! Starts from the greedy solution, then hill-climbs over single-candidate
//! flips (include ↔ exclude) to a local optimum; additional restarts begin
//! from random subsets. Deterministic given the seed.
//!
//! Move selection is driven by the exact discrete objective (incremental
//! probes, [`crate::incremental::IncrementalObjective`]). When
//! `track_relaxation` is on (the default), the search additionally sits on
//! the delta-grounding subsystem: each climb's accepted flips are mirrored
//! into a [`WarmRelaxation`] as one batch
//! ([`WarmRelaxation::set_members`]) — the flips land in a single drained
//! delta that coalesces to its net effect (a candidate flipped on and back
//! off costs nothing), so a whole climb is one incremental
//! [`cms_psl::Program::reground`] plus one warm-started ADMM solve — and
//! the final selection reports the relaxation diagnostics (soft objective,
//! raw flips vs entries coalesced, terms reused/recomputed, warm
//! iterations).

use super::greedy::greedy_from;
use super::{useful_candidates, SelectError, Selection, Selector};
use crate::coverage::CoverageModel;
use crate::objective::{Objective, ObjectiveWeights};
use crate::relaxation::WarmRelaxation;
use cms_psl::AdmmConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Local-search selector.
#[derive(Clone, Debug)]
pub struct LocalSearch {
    /// Random restarts beyond the greedy start.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mirror accepted flips through the warm PSL relaxation
    /// (delta reground + warm-started ADMM). Diagnostics only: the
    /// selected mapping is identical either way.
    pub track_relaxation: bool,
}

impl Default for LocalSearch {
    fn default() -> LocalSearch {
        LocalSearch {
            restarts: 4,
            seed: 17,
            track_relaxation: true,
        }
    }
}

fn hill_climb(
    model: &CoverageModel,
    weights: &ObjectiveWeights,
    start: &[usize],
    evaluations: &mut usize,
    mut relax: Option<&mut WarmRelaxation>,
) -> Result<(Vec<usize>, f64), SelectError> {
    let useful = useful_candidates(model);
    let mut inc = crate::incremental::IncrementalObjective::with_selection(model, *weights, start);
    if let Some(r) = relax.as_deref_mut() {
        r.set_selection(start)?;
    }
    *evaluations += 1;
    // Accepted flips accumulate here and are mirrored into the relaxation
    // as ONE batch after the climb settles: the drain coalesces them to
    // their net effect, so the whole climb costs one reground + one solve.
    let mut accepted: Vec<(usize, bool)> = Vec::new();
    loop {
        let mut best_delta = -1e-12;
        let mut best_flip = None;
        for &c in &useful {
            let delta = if inc.is_selected(c) {
                inc.delta_remove(c)
            } else {
                inc.delta_add(c)
            };
            *evaluations += 1;
            if delta < best_delta {
                best_delta = delta;
                best_flip = Some(c);
            }
        }
        match best_flip {
            Some(c) => {
                let now_selected = !inc.is_selected(c);
                if now_selected {
                    inc.add(c);
                } else {
                    inc.remove(c);
                }
                accepted.push((c, now_selected));
            }
            None => break,
        }
    }
    if let Some(r) = relax {
        if !accepted.is_empty() {
            r.set_members(&accepted)?;
        }
    }
    let selected = inc.selection();
    let value = Objective::new(model, *weights).value(&selected);
    Ok((selected, value))
}

impl Selector for LocalSearch {
    fn name(&self) -> &str {
        "local-search"
    }

    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError> {
        let mut evaluations = 0usize;
        let mut relax = if self.track_relaxation {
            Some(WarmRelaxation::new(model, weights, AdmmConfig::default())?)
        } else {
            None
        };
        // Start 1: greedy.
        let (greedy_sel, _, ev) = greedy_from(model, weights, Vec::new());
        evaluations += ev;
        let (mut best_sel, mut best_val) = hill_climb(
            model,
            weights,
            &greedy_sel,
            &mut evaluations,
            relax.as_mut(),
        )?;

        // Random restarts.
        let useful = useful_candidates(model);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.restarts {
            let start: Vec<usize> = useful
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.3))
                .collect();
            let (sel, val) = hill_climb(model, weights, &start, &mut evaluations, relax.as_mut())?;
            if val < best_val - 1e-12 {
                best_val = val;
                best_sel = sel;
            }
        }
        let mut selection = Selection::new(best_sel, best_val, evaluations);
        if let Some(r) = relax.as_mut() {
            // Park the relaxation at the winning selection for the report.
            let soft = r.set_selection(&selection.selected)?;
            selection = selection.with_telemetry(super::SelectionTelemetry {
                soft_objective: Some(soft),
                flips: r.flips,
                terms_reused: r.terms_reused,
                terms_recomputed: r.terms_recomputed,
                arith_bindings_spliced: r.arith_bindings_spliced,
                entries_coalesced: r.entries_coalesced,
                sources_deduped: r.sources_deduped,
                admm_iterations: r.admm_iterations,
                dual_terms_carried: r.dual_terms_carried,
                fallback_fresh_grounds: r.fallback_fresh_grounds,
                solver_restarts: r.solver_restarts,
                duals_dropped: r.duals_dropped,
                cold_solves: r.cold_solves,
                last_health: Some(r.last_health),
                degradations: r.degradations.clone(),
                converged: None,
                ground_terms: None,
            });
        }
        Ok(selection)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{appendix_model, known_optimum_model};
    use super::*;

    #[test]
    fn at_least_as_good_as_greedy() {
        let (model, best) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let ls = LocalSearch::default().select(&model, &w).unwrap();
        let greedy = super::super::Greedy.select(&model, &w).unwrap();
        assert!(ls.objective <= greedy.objective + 1e-9);
        assert!((ls.objective - best).abs() < 1e-9);
    }

    #[test]
    fn appendix_example_stays_empty() {
        let model = appendix_model();
        let sel = LocalSearch::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!(sel.selected.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (model, _) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let config = LocalSearch {
            restarts: 3,
            seed: 5,
            ..LocalSearch::default()
        };
        let a = config.select(&model, &w).unwrap();
        let b = config.select(&model, &w).unwrap();
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn tracked_relaxation_lower_bounds_the_selected_objective() {
        let (model, _) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let sel = LocalSearch::default().select(&model, &w).unwrap();
        let t = &sel.telemetry;
        let soft = t
            .soft_objective
            .expect("tracked run reports soft objective");
        assert!(
            soft <= sel.objective + 5e-3,
            "soft {soft} vs discrete {}",
            sel.objective
        );
        // The mirror must have gone through the incremental path.
        assert!(t.flips > 0);
        assert!(t.terms_reused > 0, "flips must splice ground terms");
        assert!(t.admm_iterations > 0);
        assert!(t.last_health.is_some());
        // A nominal run takes no ladder rungs.
        assert!(t.degradations.is_empty(), "{:?}", t.degradations);
        // The legacy note is rendered from exactly these fields.
        assert_eq!(sel.note, t.render_note());
        assert!(sel.note.starts_with("relaxation: soft_obj="));
    }

    #[test]
    fn untracked_variant_matches_tracked_selection() {
        let (model, _) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let tracked = LocalSearch::default().select(&model, &w).unwrap();
        let untracked = LocalSearch {
            track_relaxation: false,
            ..LocalSearch::default()
        }
        .select(&model, &w)
        .unwrap();
        assert_eq!(tracked.selected, untracked.selected);
        assert_eq!(tracked.objective, untracked.objective);
        assert!(untracked.note.is_empty());
    }
}

//! Flip-based local search with random restarts.
//!
//! Starts from the greedy solution, then hill-climbs over single-candidate
//! flips (include ↔ exclude) to a local optimum; additional restarts begin
//! from random subsets. Deterministic given the seed.

use super::greedy::greedy_from;
use super::{useful_candidates, Selection, Selector};
use crate::coverage::CoverageModel;
use crate::objective::{Objective, ObjectiveWeights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Local-search selector.
#[derive(Clone, Debug)]
pub struct LocalSearch {
    /// Random restarts beyond the greedy start.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LocalSearch {
    fn default() -> LocalSearch {
        LocalSearch {
            restarts: 4,
            seed: 17,
        }
    }
}

fn hill_climb(
    model: &CoverageModel,
    weights: &ObjectiveWeights,
    start: &[usize],
    evaluations: &mut usize,
) -> (Vec<usize>, f64) {
    let useful = useful_candidates(model);
    let mut inc = crate::incremental::IncrementalObjective::with_selection(model, *weights, start);
    *evaluations += 1;
    loop {
        let mut best_delta = -1e-12;
        let mut best_flip = None;
        for &c in &useful {
            let delta = if inc.is_selected(c) {
                inc.delta_remove(c)
            } else {
                inc.delta_add(c)
            };
            *evaluations += 1;
            if delta < best_delta {
                best_delta = delta;
                best_flip = Some(c);
            }
        }
        match best_flip {
            Some(c) => {
                if inc.is_selected(c) {
                    inc.remove(c);
                } else {
                    inc.add(c);
                }
            }
            None => break,
        }
    }
    let selected = inc.selection();
    let value = Objective::new(model, *weights).value(&selected);
    (selected, value)
}

impl Selector for LocalSearch {
    fn name(&self) -> &str {
        "local-search"
    }

    fn select(&self, model: &CoverageModel, weights: &ObjectiveWeights) -> Selection {
        let mut evaluations = 0usize;
        // Start 1: greedy.
        let (greedy_sel, _, ev) = greedy_from(model, weights, Vec::new());
        evaluations += ev;
        let (mut best_sel, mut best_val) =
            hill_climb(model, weights, &greedy_sel, &mut evaluations);

        // Random restarts.
        let useful = useful_candidates(model);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.restarts {
            let start: Vec<usize> = useful
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.3))
                .collect();
            let (sel, val) = hill_climb(model, weights, &start, &mut evaluations);
            if val < best_val - 1e-12 {
                best_val = val;
                best_sel = sel;
            }
        }
        Selection::new(best_sel, best_val, evaluations)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{appendix_model, known_optimum_model};
    use super::*;

    #[test]
    fn at_least_as_good_as_greedy() {
        let (model, best) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let ls = LocalSearch::default().select(&model, &w);
        let greedy = super::super::Greedy.select(&model, &w);
        assert!(ls.objective <= greedy.objective + 1e-9);
        assert!((ls.objective - best).abs() < 1e-9);
    }

    #[test]
    fn appendix_example_stays_empty() {
        let model = appendix_model();
        let sel = LocalSearch::default().select(&model, &ObjectiveWeights::unweighted());
        assert!(sel.selected.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (model, _) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        let a = LocalSearch {
            restarts: 3,
            seed: 5,
        }
        .select(&model, &w);
        let b = LocalSearch {
            restarts: 3,
            seed: 5,
        }
        .select(&model, &w);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.objective, b.objective);
    }
}

//! Exhaustive enumeration — exact, exponential; the reference everything
//! else is checked against.

use super::{useful_candidates, SelectError, Selection, Selector};
use crate::coverage::CoverageModel;
use crate::objective::{Objective, ObjectiveWeights};

/// Enumerate all subsets of the useful candidates.
#[derive(Clone, Debug, Default)]
pub struct Exhaustive {
    /// Hard cap on useful candidates (default 25 ⇒ ≤ 2^25 evaluations).
    pub max_candidates: Option<usize>,
}

impl Selector for Exhaustive {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError> {
        let useful = useful_candidates(model);
        let cap = self.max_candidates.unwrap_or(25);
        assert!(
            useful.len() <= cap,
            "exhaustive selector got {} useful candidates (cap {cap}); use BranchBound",
            useful.len()
        );
        let objective = Objective::new(model, *weights);
        let n = useful.len();
        let mut best_subset: u64 = 0;
        let mut best = objective.value(&[]);
        let mut evaluations = 1usize;
        for subset in 1..(1u64 << n) {
            let selection: Vec<usize> = (0..n)
                .filter(|&b| subset & (1 << b) != 0)
                .map(|b| useful[b])
                .collect();
            let value = objective.value(&selection);
            evaluations += 1;
            if value < best {
                best = value;
                best_subset = subset;
            }
        }
        let selected: Vec<usize> = (0..n)
            .filter(|&b| best_subset & (1 << b) != 0)
            .map(|b| useful[b])
            .collect();
        Ok(Selection::new(selected, best, evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{appendix_model, known_optimum_model};
    use super::*;

    #[test]
    fn finds_known_set_cover_optimum() {
        let (model, best) = known_optimum_model();
        let sel = Exhaustive::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!((sel.objective - best).abs() < 1e-9);
        assert!(
            sel.selected == vec![0, 2] || sel.selected == vec![1, 3],
            "{:?}",
            sel.selected
        );
        assert_eq!(sel.evaluations, 16);
    }

    #[test]
    fn appendix_example_prefers_empty_mapping() {
        let model = appendix_model();
        let sel = Exhaustive::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!(sel.selected.is_empty());
        assert!((sel.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "use BranchBound")]
    fn refuses_oversized_inputs() {
        let (model, _) = known_optimum_model();
        Exhaustive {
            max_candidates: Some(2),
        }
        .select(&model, &ObjectiveWeights::unweighted())
        .unwrap();
    }
}

//! Mapping selectors: algorithms that pick `M ⊆ C`.
//!
//! | Selector | Kind | Notes |
//! |----------|------|-------|
//! | [`Exhaustive`] | exact | enumerates all subsets; ≤ 25 useful candidates |
//! | [`BranchBound`] | exact | DFS with an optimistic-explains lower bound |
//! | [`Greedy`] | heuristic | best-improvement add passes + removal pass |
//! | [`LocalSearch`] | heuristic | greedy + flip hill-climbing with restarts |
//! | [`PslCollective`] | the paper's approach | HL-MRF MAP + rounding |
//! | [`IndependentBaseline`] | baseline | per-candidate marginal test (non-collective) |
//! | [`FixedSelection`] | reference | a fixed set (gold oracle, empty, all) |

mod baselines;
mod branch_bound;
mod exhaustive;
mod greedy;
mod local_search;
mod psl_collective;

pub use baselines::{FixedSelection, IndependentBaseline};
pub use branch_bound::BranchBound;
pub use exhaustive::Exhaustive;
pub use greedy::Greedy;
pub use local_search::LocalSearch;
pub use psl_collective::PslCollective;

use crate::coverage::CoverageModel;
use crate::objective::ObjectiveWeights;

/// Why a selector could not produce a selection.
///
/// The paper's collective selector compiles the coverage model into a PSL
/// program; compilation or grounding failures surface here instead of
/// aborting the process (selectors used to `.expect()` on them).
#[derive(Clone, PartialEq, Debug)]
pub enum SelectError {
    /// The PSL program failed to ground.
    Grounding(cms_psl::GroundingError),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::Grounding(e) => write!(f, "selection failed: {e}"),
        }
    }
}

impl std::error::Error for SelectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelectError::Grounding(e) => Some(e),
        }
    }
}

impl From<cms_psl::GroundingError> for SelectError {
    fn from(e: cms_psl::GroundingError) -> SelectError {
        SelectError::Grounding(e)
    }
}

/// Structured diagnostics from a selector run.
///
/// Selectors that drive the PSL relaxation populate the fields they
/// track; purely combinatorial selectors leave the default. The legacy
/// `note` string is rendered from this via
/// [`render_note`](SelectionTelemetry::render_note), so tests and
/// tables can read typed fields instead of parsing text.
#[derive(Clone, Debug, Default)]
pub struct SelectionTelemetry {
    /// Final soft (relaxed) objective at the reported selection.
    pub soft_objective: Option<f64>,
    /// Accepted flips mirrored through the warm relaxation.
    pub flips: usize,
    /// Ground terms spliced (reused byte-identically) across regrounds.
    pub terms_reused: usize,
    /// Ground terms recomputed across regrounds.
    pub terms_recomputed: usize,
    /// Arithmetic free bindings spliced across regrounds.
    pub arith_bindings_spliced: usize,
    /// Raw delta entries coalesced away before the regrounder saw them
    /// (cancelling flip pairs and folded flip chains inside one batch).
    pub entries_coalesced: usize,
    /// Batch entries deduplicated into reground work already scheduled by
    /// an earlier entry of the same drained delta.
    pub sources_deduped: usize,
    /// Total ADMM iterations across all solves.
    pub admm_iterations: usize,
    /// Dual variables carried between warm solves.
    pub dual_terms_carried: usize,
    /// Regrounds abandoned for a fresh ground (self-healing rungs 2/4).
    pub fallback_fresh_grounds: usize,
    /// ADMM restarts taken inside the solver's restart loop.
    pub solver_restarts: usize,
    /// Carried dual terms dropped for non-finiteness (rung 1).
    pub duals_dropped: usize,
    /// Warm solves escalated to a cold resolve (rung 3).
    pub cold_solves: usize,
    /// Health of the last ADMM solve.
    pub last_health: Option<cms_psl::SolveHealth>,
    /// Degradation-ladder rungs taken during the run, in order.
    pub degradations: Vec<cms_obs::DegradationRung>,
    /// Whether the final solve converged (collective selector only).
    pub converged: Option<bool>,
    /// Ground term count of the final program (collective selector only).
    pub ground_terms: Option<usize>,
}

impl SelectionTelemetry {
    /// Render the legacy one-line `note` string for this telemetry.
    ///
    /// Reproduces the historical formats byte-for-byte: the collective
    /// selector's `admm_iters=…` line when
    /// [`converged`](SelectionTelemetry::converged) is set, the local-search
    /// `relaxation: …` line when only
    /// [`soft_objective`](SelectionTelemetry::soft_objective) is set,
    /// and an empty string otherwise.
    pub fn render_note(&self) -> String {
        if let Some(converged) = self.converged {
            let health = self
                .last_health
                .map(|h| h.to_string())
                .unwrap_or_else(|| "unknown".to_owned());
            return format!(
                "admm_iters={} converged={} ground_terms={} soft_obj={:.3} health={} restarts={}",
                self.admm_iterations,
                converged,
                self.ground_terms.unwrap_or(0),
                self.soft_objective.unwrap_or(f64::NAN),
                health,
                self.solver_restarts,
            );
        }
        let Some(soft) = self.soft_objective else {
            return String::new();
        };
        let health = self
            .last_health
            .map(|h| h.to_string())
            .unwrap_or_else(|| "unknown".to_owned());
        let mut note = format!(
            "relaxation: soft_obj={:.3} flips={} coalesced={} deduped={} terms_reused={} \
             terms_recomputed={} arith_spliced={} warm_iters={} duals_carried={} \
             fallback_grounds={} solver_restarts={} health={}",
            soft,
            self.flips,
            self.entries_coalesced,
            self.sources_deduped,
            self.terms_reused,
            self.terms_recomputed,
            self.arith_bindings_spliced,
            self.admm_iterations,
            self.dual_terms_carried,
            self.fallback_fresh_grounds,
            self.solver_restarts,
            health,
        );
        if !self.degradations.is_empty() {
            let reason = self
                .degradations
                .iter()
                .map(|r| r.render())
                .collect::<Vec<_>>()
                .join("; ");
            note.push_str(&format!(" degraded=\"{reason}\""));
        }
        note
    }
}

/// The result of running a selector.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Selected candidate indices, sorted ascending.
    pub selected: Vec<usize>,
    /// Discrete objective value `F` of the selection on the given model.
    pub objective: f64,
    /// Number of discrete objective evaluations (search effort proxy).
    pub evaluations: usize,
    /// Selector-specific diagnostics (e.g. ADMM iterations), rendered
    /// from [`Selection::telemetry`] for selectors that track it.
    pub note: String,
    /// Structured diagnostics; default for purely combinatorial selectors.
    pub telemetry: SelectionTelemetry,
}

impl Selection {
    pub(crate) fn new(mut selected: Vec<usize>, objective: f64, evaluations: usize) -> Selection {
        selected.sort_unstable();
        selected.dedup();
        Selection {
            selected,
            objective,
            evaluations,
            note: String::new(),
            telemetry: SelectionTelemetry::default(),
        }
    }

    /// Attach telemetry and render the legacy `note` from it.
    pub(crate) fn with_telemetry(mut self, telemetry: SelectionTelemetry) -> Selection {
        self.note = telemetry.render_note();
        self.telemetry = telemetry;
        self
    }
}

/// A mapping-selection algorithm.
pub trait Selector {
    /// Human-readable name for tables.
    fn name(&self) -> &str;
    /// Choose a selection minimizing (approximately) the objective.
    /// Errors (e.g. a PSL grounding failure) propagate instead of
    /// aborting — purely combinatorial selectors never fail.
    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError>;
}

/// Candidates worth considering: everything except provably useless ones.
pub(crate) fn useful_candidates(model: &CoverageModel) -> Vec<usize> {
    let useless = model.useless_candidates();
    (0..model.num_candidates)
        .filter(|c| !useless.contains(c))
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::coverage::CoverageModel;
    use crate::objective::{Objective, ObjectiveWeights};
    use crate::reduction::{build_reduction, SetCoverInstance};

    /// A model where the optimum is known by construction: the set-cover
    /// reduction of a small instance (optimal covers {0,2} / {1,3}, F = 4).
    pub fn known_optimum_model() -> (CoverageModel, f64) {
        let sc = SetCoverInstance {
            universe: 4,
            sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            bound: 2,
        };
        let red = build_reduction(&sc);
        let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
        let f = Objective::new(&model, ObjectiveWeights::unweighted());
        let best = f.value(&[0, 2]);
        (model, best)
    }

    /// The appendix running-example model (optimum = empty mapping, F=4).
    pub fn appendix_model() -> CoverageModel {
        let (_, _, i, j, cands) = crate::coverage::tests::running_example();
        CoverageModel::build(&i, &j, &cands)
    }
}

//! Mapping selectors: algorithms that pick `M ⊆ C`.
//!
//! | Selector | Kind | Notes |
//! |----------|------|-------|
//! | [`Exhaustive`] | exact | enumerates all subsets; ≤ 25 useful candidates |
//! | [`BranchBound`] | exact | DFS with an optimistic-explains lower bound |
//! | [`Greedy`] | heuristic | best-improvement add passes + removal pass |
//! | [`LocalSearch`] | heuristic | greedy + flip hill-climbing with restarts |
//! | [`PslCollective`] | the paper's approach | HL-MRF MAP + rounding |
//! | [`IndependentBaseline`] | baseline | per-candidate marginal test (non-collective) |
//! | [`FixedSelection`] | reference | a fixed set (gold oracle, empty, all) |

mod baselines;
mod branch_bound;
mod exhaustive;
mod greedy;
mod local_search;
mod psl_collective;

pub use baselines::{FixedSelection, IndependentBaseline};
pub use branch_bound::BranchBound;
pub use exhaustive::Exhaustive;
pub use greedy::Greedy;
pub use local_search::LocalSearch;
pub use psl_collective::PslCollective;

use crate::coverage::CoverageModel;
use crate::objective::ObjectiveWeights;

/// Why a selector could not produce a selection.
///
/// The paper's collective selector compiles the coverage model into a PSL
/// program; compilation or grounding failures surface here instead of
/// aborting the process (selectors used to `.expect()` on them).
#[derive(Clone, PartialEq, Debug)]
pub enum SelectError {
    /// The PSL program failed to ground.
    Grounding(cms_psl::GroundingError),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::Grounding(e) => write!(f, "selection failed: {e}"),
        }
    }
}

impl std::error::Error for SelectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelectError::Grounding(e) => Some(e),
        }
    }
}

impl From<cms_psl::GroundingError> for SelectError {
    fn from(e: cms_psl::GroundingError) -> SelectError {
        SelectError::Grounding(e)
    }
}

/// The result of running a selector.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Selected candidate indices, sorted ascending.
    pub selected: Vec<usize>,
    /// Discrete objective value `F` of the selection on the given model.
    pub objective: f64,
    /// Number of discrete objective evaluations (search effort proxy).
    pub evaluations: usize,
    /// Selector-specific diagnostics (e.g. ADMM iterations).
    pub note: String,
}

impl Selection {
    pub(crate) fn new(mut selected: Vec<usize>, objective: f64, evaluations: usize) -> Selection {
        selected.sort_unstable();
        selected.dedup();
        Selection {
            selected,
            objective,
            evaluations,
            note: String::new(),
        }
    }
}

/// A mapping-selection algorithm.
pub trait Selector {
    /// Human-readable name for tables.
    fn name(&self) -> &str;
    /// Choose a selection minimizing (approximately) the objective.
    /// Errors (e.g. a PSL grounding failure) propagate instead of
    /// aborting — purely combinatorial selectors never fail.
    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError>;
}

/// Candidates worth considering: everything except provably useless ones.
pub(crate) fn useful_candidates(model: &CoverageModel) -> Vec<usize> {
    let useless = model.useless_candidates();
    (0..model.num_candidates)
        .filter(|c| !useless.contains(c))
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::coverage::CoverageModel;
    use crate::objective::{Objective, ObjectiveWeights};
    use crate::reduction::{build_reduction, SetCoverInstance};

    /// A model where the optimum is known by construction: the set-cover
    /// reduction of a small instance (optimal covers {0,2} / {1,3}, F = 4).
    pub fn known_optimum_model() -> (CoverageModel, f64) {
        let sc = SetCoverInstance {
            universe: 4,
            sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            bound: 2,
        };
        let red = build_reduction(&sc);
        let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
        let f = Objective::new(&model, ObjectiveWeights::unweighted());
        let best = f.value(&[0, 2]);
        (model, best)
    }

    /// The appendix running-example model (optimum = empty mapping, F=4).
    pub fn appendix_model() -> CoverageModel {
        let (_, _, i, j, cands) = crate::coverage::tests::running_example();
        CoverageModel::build(&i, &j, &cands)
    }
}

//! Greedy best-improvement selection.
//!
//! Standard submodular-style baseline: repeatedly add the candidate whose
//! inclusion decreases `F` the most; stop when no addition helps; then run
//! a removal pass (additions can make earlier choices redundant). Fast and
//! surprisingly strong when candidates do not interact; the collective
//! cases (shared error tuples, overlapping covers) are exactly where it
//! falls behind the PSL approach.
//!
//! Probing uses [`IncrementalObjective`], so one full pass costs
//! O(Σ touched cover lists) instead of O(candidates · model).

use super::{useful_candidates, SelectError, Selection, Selector};
use crate::coverage::CoverageModel;
use crate::incremental::IncrementalObjective;
use crate::objective::{Objective, ObjectiveWeights};

/// Greedy add-then-remove selector.
#[derive(Clone, Debug, Default)]
pub struct Greedy;

/// One full greedy run starting from `start`; returns (selection, value,
/// probe count). Shared with [`super::LocalSearch`] and PSL's repair step.
pub(crate) fn greedy_from(
    model: &CoverageModel,
    weights: &ObjectiveWeights,
    start: Vec<usize>,
) -> (Vec<usize>, f64, usize) {
    let useful = useful_candidates(model);
    let mut inc = IncrementalObjective::with_selection(model, *weights, &start);
    let mut evaluations = 1usize;

    loop {
        let mut improved = false;
        // Addition pass: best improvement first.
        loop {
            let mut best_delta = -1e-12;
            let mut best_cand = None;
            for &c in &useful {
                if inc.is_selected(c) {
                    continue;
                }
                let delta = inc.delta_add(c);
                evaluations += 1;
                if delta < best_delta {
                    best_delta = delta;
                    best_cand = Some(c);
                }
            }
            match best_cand {
                Some(c) => {
                    inc.add(c);
                    improved = true;
                }
                None => break,
            }
        }
        // Removal pass.
        loop {
            let mut best_delta = -1e-12;
            let mut best_cand = None;
            for c in inc.selection() {
                let delta = inc.delta_remove(c);
                evaluations += 1;
                if delta < best_delta {
                    best_delta = delta;
                    best_cand = Some(c);
                }
            }
            match best_cand {
                Some(c) => {
                    inc.remove(c);
                    improved = true;
                }
                None => break,
            }
        }
        if !improved {
            break;
        }
    }
    let selected = inc.selection();
    // Recompute with the reference evaluator (guards against incremental
    // drift; also what the Selection contract promises).
    let value = Objective::new(model, *weights).value(&selected);
    (selected, value, evaluations)
}

impl Selector for Greedy {
    fn name(&self) -> &str {
        "greedy"
    }

    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError> {
        let (selected, value, evaluations) = greedy_from(model, weights, Vec::new());
        Ok(Selection::new(selected, value, evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{appendix_model, known_optimum_model};
    use super::*;

    #[test]
    fn solves_easy_instances_optimally() {
        let (model, best) = known_optimum_model();
        let sel = Greedy
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        // Greedy is optimal here: each set covers disjoint gains.
        assert!(
            (sel.objective - best).abs() < 1e-9,
            "greedy got {}",
            sel.objective
        );
    }

    #[test]
    fn appendix_example_keeps_empty_mapping() {
        let model = appendix_model();
        let sel = Greedy
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!(sel.selected.is_empty());
    }

    #[test]
    fn removal_pass_drops_redundant_choice() {
        use crate::coverage::ErrorGroup;
        use cms_data::{RelId, Tuple};
        let targets: Vec<Tuple> = (0..6)
            .map(|i| Tuple::ground(RelId(0), &[&format!("t{i}")]))
            .collect();
        let model = CoverageModel {
            num_candidates: 2,
            targets,
            sizes: vec![1, 1],
            covers: vec![
                (0..3).map(|t| (t, 1.0)).collect(), // covers 3
                (0..6).map(|t| (t, 1.0)).collect(), // covers all 6, 1 error
            ],
            errors: vec![ErrorGroup {
                creators: vec![1],
                example: Tuple::ground(RelId(0), &["err"]),
            }],
            error_counts: vec![0, 1],
        };
        // Whatever the add order, the final answer must be {1} alone.
        let sel = Greedy
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert_eq!(sel.selected, vec![1]);
    }

    #[test]
    fn greedy_from_respects_start() {
        let (model, _) = known_optimum_model();
        let w = ObjectiveWeights::unweighted();
        // Starting from the full set, removal prunes to an optimum too.
        let (sel, value, _) = greedy_from(&model, &w, vec![0, 1, 2, 3]);
        assert!(sel.len() <= 2, "{sel:?}");
        assert!((value - 4.0).abs() < 1e-9);
    }
}

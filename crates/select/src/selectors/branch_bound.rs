//! Exact branch-and-bound search.
//!
//! Depth-first over candidates (ordered by descending cover mass) deciding
//! include/exclude. At each node the **lower bound** combines what can only
//! grow with what can only shrink:
//!
//! ```text
//! bound = w1 · Σ_t (1 − bestcov_optimistic(t))   // all undecided included for free
//!       + w2 · errors(included so far)            // errors only grow
//!       + w3 · size(included so far)              // size only grows
//! ```
//!
//! The bound is admissible: any completion of the node has objective ≥
//! bound, so pruning at `bound ≥ best` preserves exactness. Mapping
//! selection is NP-hard (appendix §III), so worst-case time remains
//! exponential — but the bound collapses most of the search space on the
//! scenario families we generate.

use super::{useful_candidates, SelectError, Selection, Selector};
use crate::coverage::CoverageModel;
use crate::objective::{Objective, ObjectiveWeights};

/// Exact branch-and-bound selector.
#[derive(Clone, Debug, Default)]
pub struct BranchBound {
    /// Optional node budget; `None` = unbounded (exact). When the budget
    /// is exhausted the best solution so far is returned (then the result
    /// is only a heuristic — the note says so).
    pub node_budget: Option<usize>,
}

struct Search<'a> {
    model: &'a CoverageModel,
    weights: ObjectiveWeights,
    order: Vec<usize>,
    /// suffix_cover[i][t] = max cover of t over order[i..].
    suffix_cover: Vec<Vec<f64>>,
    best_value: f64,
    best_set: Vec<usize>,
    nodes: usize,
    budget: usize,
    truncated: bool,
}

impl Search<'_> {
    /// DFS at position `i` with `included` the chosen candidates so far,
    /// `cur_cover[t]` their best covers, `cur_errors`/`cur_size` their
    /// error-group count and total size.
    fn dfs(
        &mut self,
        i: usize,
        included: &mut Vec<usize>,
        cur_cover: &mut Vec<f64>,
        cur_size: f64,
    ) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.truncated = true;
            return;
        }
        // Errors only depend on the included set; recompute sparsely.
        let cur_errors = self
            .model
            .errors
            .iter()
            .filter(|g| g.creators.iter().any(|c| included.contains(c)))
            .count() as f64;

        // Leaf: exact objective.
        if i == self.order.len() {
            let unexplained: f64 = cur_cover.iter().map(|d| 1.0 - d).sum();
            let value = self.weights.w_explain * unexplained
                + self.weights.w_error * cur_errors
                + self.weights.w_size * cur_size;
            if value < self.best_value {
                self.best_value = value;
                self.best_set = included.clone();
            }
            return;
        }

        // Lower bound with all remaining candidates included for free.
        let optimistic: f64 = cur_cover
            .iter()
            .zip(self.suffix_cover[i].iter())
            .map(|(&cur, &suf)| 1.0 - cur.max(suf))
            .sum();
        let bound = self.weights.w_explain * optimistic
            + self.weights.w_error * cur_errors
            + self.weights.w_size * cur_size;
        if bound >= self.best_value - 1e-12 {
            return;
        }

        let cand = self.order[i];
        // Branch 1: include.
        let mut touched: Vec<(usize, f64)> = Vec::new();
        for &(t, d) in &self.model.covers[cand] {
            if d > cur_cover[t] {
                touched.push((t, cur_cover[t]));
                cur_cover[t] = d;
            }
        }
        included.push(cand);
        self.dfs(
            i + 1,
            included,
            cur_cover,
            cur_size + self.model.sizes[cand] as f64,
        );
        included.pop();
        for (t, old) in touched {
            cur_cover[t] = old;
        }
        // Branch 2: exclude.
        self.dfs(i + 1, included, cur_cover, cur_size);
    }
}

impl Selector for BranchBound {
    fn name(&self) -> &str {
        "branch-bound"
    }

    fn select(
        &self,
        model: &CoverageModel,
        weights: &ObjectiveWeights,
    ) -> Result<Selection, SelectError> {
        let mut order = useful_candidates(model);
        // Heaviest covers first: good incumbents early ⇒ tighter pruning.
        order.sort_by(|&a, &b| {
            let mass = |c: usize| -> f64 { model.covers[c].iter().map(|&(_, d)| d).sum() };
            mass(b).partial_cmp(&mass(a)).expect("cover mass is finite")
        });
        // Suffix max-cover table.
        let n = order.len();
        let nt = model.num_targets();
        let mut suffix_cover = vec![vec![0.0f64; nt]; n + 1];
        for i in (0..n).rev() {
            let mut row = suffix_cover[i + 1].clone();
            for &(t, d) in &model.covers[order[i]] {
                if d > row[t] {
                    row[t] = d;
                }
            }
            suffix_cover[i] = row;
        }

        let objective = Objective::new(model, *weights);
        let empty_value = objective.value(&[]);
        let mut search = Search {
            model,
            weights: *weights,
            order,
            suffix_cover,
            best_value: empty_value,
            best_set: Vec::new(),
            nodes: 0,
            budget: self.node_budget.unwrap_or(usize::MAX),
            truncated: false,
        };
        let mut cover = vec![0.0f64; nt];
        let mut included = Vec::new();
        search.dfs(0, &mut included, &mut cover, 0.0);

        let mut sel = Selection::new(search.best_set, search.best_value, search.nodes);
        if search.truncated {
            sel.note = format!("node budget {} exhausted; heuristic result", search.budget);
        }
        Ok(sel)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{appendix_model, known_optimum_model};
    use super::super::Exhaustive;
    use super::*;
    use crate::reduction::{build_reduction, SetCoverInstance};

    #[test]
    fn matches_exhaustive_on_known_instances() {
        let (model, best) = known_optimum_model();
        let sel = BranchBound::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!((sel.objective - best).abs() < 1e-9);

        let model = appendix_model();
        let sel = BranchBound::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        assert!(sel.selected.is_empty());
        assert!((sel.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_exhaustive_on_random_set_covers() {
        // Deterministic pseudo-random family.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..10 {
            let universe = 5 + (next() % 4) as usize;
            let n_sets = 4 + (next() % 5) as usize;
            let sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| {
                    let mut s: Vec<usize> = (0..universe).filter(|_| next() % 3 == 0).collect();
                    if s.is_empty() {
                        s.push((next() % universe as u64) as usize);
                    }
                    s
                })
                .collect();
            let sc = SetCoverInstance {
                universe,
                sets,
                bound: 2,
            };
            let red = build_reduction(&sc);
            let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
            let w = ObjectiveWeights::unweighted();
            let exact = Exhaustive::default().select(&model, &w).unwrap();
            let bb = BranchBound::default().select(&model, &w).unwrap();
            assert!(
                (exact.objective - bb.objective).abs() < 1e-9,
                "trial {trial}: exhaustive {} vs B&B {}",
                exact.objective,
                bb.objective
            );
        }
    }

    #[test]
    fn prunes_relative_to_exhaustive() {
        let (model, _) = known_optimum_model();
        let bb = BranchBound::default()
            .select(&model, &ObjectiveWeights::unweighted())
            .unwrap();
        // Full tree would be 2^5 - 1 internal+leaf nodes per root... just
        // assert the node count is bounded by the full enumeration count.
        assert!(bb.evaluations <= 31, "nodes = {}", bb.evaluations);
    }

    #[test]
    fn node_budget_truncates_gracefully() {
        let (model, _) = known_optimum_model();
        let sel = BranchBound {
            node_budget: Some(3),
        }
        .select(&model, &ObjectiveWeights::unweighted())
        .unwrap();
        assert!(sel.note.contains("budget"));
        // Still returns something coherent (the empty incumbent or better).
        assert!(sel.objective <= 20.0 + 1e-9);
    }
}

//! Warm-started PSL relaxation tracking for flip-based search.
//!
//! Local search flips one `inMap` candidate per move. Evaluating the PSL
//! relaxation of every visited selection used to mean a full
//! [`Program::ground`] plus a cold ADMM solve per move; this module keeps
//! one program alive across the whole search and pays only the delta:
//!
//! * the candidate's `inMap` atom is **observed** (0/1) rather than
//!   inferred, so a flip is a single value mutation the database logs as a
//!   [`cms_psl::DbDelta`];
//! * [`Program::reground`] splices the previous ground program,
//!   recomputing only the terms that touch the flipped atom (the
//!   `error-link` join rule takes the seeded fast path, the raw
//!   cap/size/error terms are patched by exact-atom dirtiness);
//! * [`cms_psl::GroundProgram::solve_warm_dual`] seeds ADMM with the
//!   previous consensus vector — variable indices are stable across
//!   regrounds — **and** the previous scaled duals, mapped onto the new
//!   program with [`cms_psl::GroundProgram::carry_duals`] (spliced terms
//!   keep their dual state, recomputed terms start cold), so the solve
//!   converges in a fraction of the cold iteration count;
//! * moves can be **batched** ([`WarmRelaxation::set_members`],
//!   [`WarmRelaxation::set_selection`]): all writes land in one drained
//!   delta, the drain coalesces them to their net effect (cancelling pairs
//!   vanish, flip chains fold), and the whole batch costs one reground and
//!   one warm solve — a batch that nets to nothing skips the solve
//!   entirely.
//!
//! The reported value is the LP relaxation of the discrete objective
//! (`explains` is the capped *sum* of covers rather than the max), i.e. a
//! lower bound on `F(M)` for integral selections.
//!
//! # Failure semantics
//!
//! Every incremental shortcut above is guarded, and every guard failure
//! degrades one rung down a ladder that ends at the always-correct cold
//! path (see `docs/robustness.md`):
//!
//! 1. **warm duals** — carried duals that fail
//!    [`cms_psl::DualState::all_finite`] are dropped (the solve still warm
//!    starts from the consensus vector);
//! 2. **warm consensus** — a reground rejected by the delta guard
//!    ([`cms_psl::RegroundError`]) or failing mid-splice falls back to a
//!    fresh [`Program::ground`] (counted in
//!    [`WarmRelaxation::fallback_fresh_grounds`]);
//! 3. **cold solve** — a solve whose [`cms_psl::SolveHealth`] is not
//!    nominal (stalled/diverged after the solver's own restart policy) is
//!    redone cold on the same ground program;
//! 4. **fresh ground + cold solve** — if even the cold solve is unhealthy,
//!    the ground program itself is rebuilt from scratch and solved cold.
//!
//! A [`cms_psl::SolveHealth::TimedOut`] solve is *not* escalated: the time
//! budget is a wall-clock promise, and a cold retry would break it. The
//! ladder records every rung taken — as typed
//! [`cms_obs::DegradationRung`] values in
//! [`WarmRelaxation::last_degradations`] / [`WarmRelaxation::degradations`]
//! (each one also emitted to the telemetry journal as a
//! [`cms_obs::Event::Degradation`]), with the counters
//! (`fallback_fresh_grounds`, `solver_restarts`, `duals_dropped`,
//! `cold_solves`) and the rendered [`WarmRelaxation::last_degradation`]
//! string kept alongside — and mirrors the pipeline totals into a
//! synthetic `"self-healing"` entry of the ground program's `rule_stats`.

use crate::coverage::CoverageModel;
use crate::objective::ObjectiveWeights;
use crate::selectors::SelectError;
use cms_psl::{
    AdmmConfig, AtomLin, ConstraintKind, DualState, GroundAtom, GroundProgram, PredId, Program,
    RuleBuilder, SolveHealth, Vocabulary,
};

/// Predicate ids of the evaluation program (exposed so tests and benches
/// can drive mutations directly).
#[derive(Clone, Copy, Debug)]
pub struct EvalPreds {
    /// `tuple/1`, closed: target tuples (observed 1.0).
    pub tuple: PredId,
    /// `inMap/1`, closed: the selection under evaluation (observed 0/1).
    pub in_map: PredId,
    /// `creates/2`, closed: candidate → error-group edges.
    pub creates: PredId,
    /// `explained/1`, open target.
    pub explained: PredId,
    /// `err/1`, open target.
    pub err: PredId,
}

/// Build the selection-evaluation PSL program: the collective model of
/// [`crate::selectors::PslCollective`] with `inMap` **observed** at the
/// given selection instead of inferred. Flipping one `inMap` truth is then
/// a pure value delta — the regrounder's fast path.
pub fn build_eval_program(
    model: &CoverageModel,
    weights: &ObjectiveWeights,
    selection: &[usize],
) -> (Program, EvalPreds) {
    let mut vocab = Vocabulary::new();
    let tuple_p = vocab.closed("tuple", 1);
    let in_map_p = vocab.closed("inMap", 1);
    let creates_p = vocab.closed("creates", 2);
    let explained_p = vocab.open("explained", 1);
    let err_p = vocab.open("err", 1);
    let preds = EvalPreds {
        tuple: tuple_p,
        in_map: in_map_p,
        creates: creates_p,
        explained: explained_p,
        err: err_p,
    };

    let mut program = Program::new(vocab);
    let t_atom = |t: usize| GroundAtom::from_strs(tuple_p, &[&format!("t{t}")]);
    let in_map = |c: usize| GroundAtom::from_strs(in_map_p, &[&format!("c{c}")]);
    let explained = |t: usize| GroundAtom::from_strs(explained_p, &[&format!("t{t}")]);
    let err = |g: usize| GroundAtom::from_strs(err_p, &[&format!("g{g}")]);

    let mut on = vec![false; model.num_candidates];
    for &c in selection {
        on[c] = true;
    }
    for t in 0..model.num_targets() {
        program.db.observe(t_atom(t), 1.0);
        program.db.target(explained(t));
    }
    for (c, &selected) in on.iter().enumerate() {
        program.db.observe(in_map(c), f64::from(u8::from(selected)));
        // Size prior: folds to a constant loss tracking the selection.
        let mut lin = AtomLin::new();
        lin.add(in_map(c), 1.0);
        program.add_raw_potential(
            lin,
            weights.w_size * model.sizes[c] as f64,
            false,
            "size-prior",
        );
    }
    // Reward explanations (clean rule: never touched by flips).
    program.add_rule(
        RuleBuilder::new("explain-reward")
            .body(tuple_p, vec![cms_psl::rvar("T")])
            .head(explained_p, vec![cms_psl::rvar("T")])
            .weight(weights.w_explain)
            .build(),
    );
    // Explanation cap per target (raw constraints; exact-atom dirtiness).
    for t in 0..model.num_targets() {
        let mut lin = AtomLin::new();
        lin.add(explained(t), 1.0);
        for c in 0..model.num_candidates {
            let d = model.cover(c, t);
            if d > 0.0 {
                lin.add(in_map(c), -d);
            }
        }
        program.add_raw_constraint(lin, ConstraintKind::LeqZero, "explain-cap");
    }
    // Error links as a genuine two-literal join rule — flips drive the
    // regrounder's seeded fast path through it.
    program.add_rule(
        RuleBuilder::new("error-link")
            .body(creates_p, vec![cms_psl::rvar("C"), cms_psl::rvar("G")])
            .body(in_map_p, vec![cms_psl::rvar("C")])
            .head(err_p, vec![cms_psl::rvar("G")])
            .build(),
    );
    for (g, group) in model.errors.iter().enumerate() {
        program.db.target(err(g));
        for &creator in &group.creators {
            program.db.observe(
                GroundAtom::from_strs(creates_p, &[&format!("c{creator}"), &format!("g{g}")]),
                1.0,
            );
        }
        let mut lin = AtomLin::new();
        lin.add(err(g), 1.0);
        program.add_raw_potential(lin, weights.w_error, false, "error-penalty");
    }
    (program, preds)
}

/// A PSL relaxation kept warm across a flip sequence: delta regrounding
/// plus warm-started ADMM per move (see the module docs).
pub struct WarmRelaxation {
    program: Program,
    preds: EvalPreds,
    ground: GroundProgram,
    admm: AdmmConfig,
    values: Vec<f64>,
    duals: Option<DualState>,
    soft_objective: f64,
    /// Flips (raw value mutations, before coalescing) applied so far.
    pub flips: usize,
    /// Cumulative raw delta entries the drain coalesced away before the
    /// regrounder saw them (cancelling flip pairs, folded flip chains).
    pub entries_coalesced: usize,
    /// Cumulative batch entries deduplicated into reground work an earlier
    /// entry of the same batch had already scheduled.
    pub sources_deduped: usize,
    /// Cumulative ground terms spliced unchanged across regrounds.
    pub terms_reused: usize,
    /// Cumulative groundings recomputed across regrounds.
    pub terms_recomputed: usize,
    /// Cumulative arithmetic-rule free bindings spliced without re-folding
    /// their summations (0 when the program has no arithmetic rules).
    pub arith_bindings_spliced: usize,
    /// Cumulative warm-started ADMM iterations.
    pub admm_iterations: usize,
    /// Cumulative terms whose scaled duals were carried across a reground
    /// (each one seeds the next solve instead of starting cold).
    pub dual_terms_carried: usize,
    /// Times the ladder abandoned the incremental path and rebuilt the
    /// ground program from scratch (rungs 2 and 4 of the module docs).
    pub fallback_fresh_grounds: usize,
    /// Cumulative ADMM watchdog restarts across all solves.
    pub solver_restarts: usize,
    /// Carried dual states dropped because they contained non-finite
    /// values (rung 1).
    pub duals_dropped: usize,
    /// Unhealthy warm solves redone cold on the same ground program
    /// (rung 3).
    pub cold_solves: usize,
    /// Health of the most recent solve.
    pub last_health: SolveHealth,
    /// Human-readable reason for the most recent degradation, if any rung
    /// beyond the nominal warm path fired on the last [`WarmRelaxation::set`].
    /// Rendered from [`WarmRelaxation::last_degradations`].
    pub last_degradation: Option<String>,
    /// Typed rungs taken on the last [`WarmRelaxation::set`] /
    /// [`WarmRelaxation::set_selection`] (several can fire on one flip).
    pub last_degradations: Vec<cms_obs::DegradationRung>,
    /// Every rung taken over the relaxation's lifetime, in order.
    pub degradations: Vec<cms_obs::DegradationRung>,
}

impl WarmRelaxation {
    /// Build the evaluation program for the empty selection, ground it
    /// fully once, and solve cold — the baseline every later flip patches.
    pub fn new(
        model: &CoverageModel,
        weights: &ObjectiveWeights,
        mut admm: AdmmConfig,
    ) -> Result<WarmRelaxation, SelectError> {
        // Arm the solver watchdog unless the caller configured it: a
        // warm-started solve gone wrong should stall out and restart, not
        // burn the full iteration cap producing garbage.
        if admm.stall_window == 0 {
            admm.stall_window = 1000;
        }
        if admm.max_restarts == 0 {
            admm.max_restarts = 2;
        }
        let (mut program, preds) = build_eval_program(model, weights, &[]);
        let ground = program.ground()?;
        let _ = program.db.take_delta(); // the build writes are not a delta
        let (solution, duals) = ground.solve_warm_dual(&admm, &[], None);
        Ok(WarmRelaxation {
            program,
            preds,
            values: solution.admm.values.clone(),
            duals: Some(duals),
            soft_objective: solution.total_objective(),
            admm_iterations: solution.admm.iterations,
            last_health: solution.admm.health,
            solver_restarts: solution.admm.restarts,
            ground,
            admm,
            flips: 0,
            entries_coalesced: 0,
            sources_deduped: 0,
            terms_reused: 0,
            terms_recomputed: 0,
            arith_bindings_spliced: 0,
            dual_terms_carried: 0,
            fallback_fresh_grounds: 0,
            duals_dropped: 0,
            cold_solves: 0,
            last_degradation: None,
            last_degradations: Vec::new(),
            degradations: Vec::new(),
        })
    }

    /// Set one candidate's membership; regrounds incrementally and
    /// re-solves warm. Returns the new soft (relaxed) objective. Writing
    /// the value the candidate already has is free.
    pub fn set(&mut self, candidate: usize, selected: bool) -> Result<f64, SelectError> {
        let atom = GroundAtom::from_strs(self.preds.in_map, &[&format!("c{candidate}")]);
        self.program.db.observe(atom, f64::from(u8::from(selected)));
        self.resolve()
    }

    /// Apply a batch of membership moves in one shot: every write lands in
    /// a single drained delta, so the whole batch costs one coalesced
    /// reground and one warm solve. Later moves override earlier ones on
    /// the same candidate, and moves that cancel out (set then unset
    /// within the batch) coalesce away before the regrounder sees them —
    /// a batch that nets to nothing skips the solve entirely.
    pub fn set_members(&mut self, moves: &[(usize, bool)]) -> Result<f64, SelectError> {
        for &(candidate, selected) in moves {
            let atom = GroundAtom::from_strs(self.preds.in_map, &[&format!("c{candidate}")]);
            self.program.db.observe(atom, f64::from(u8::from(selected)));
        }
        self.resolve()
    }

    /// Replace the whole selection (used on restarts); only candidates
    /// whose membership actually changes cost anything — one reground and
    /// one warm solve cover the whole batch.
    pub fn set_selection(&mut self, selection: &[usize]) -> Result<f64, SelectError> {
        let mut on = vec![false; self.num_candidates()];
        for &c in selection {
            on[c] = true;
        }
        for (c, &sel) in on.iter().enumerate() {
            let atom = GroundAtom::from_strs(self.preds.in_map, &[&format!("c{c}")]);
            self.program.db.observe(atom, f64::from(u8::from(sel)));
        }
        self.resolve()
    }

    /// The soft (LP-relaxed) objective of the current selection.
    pub fn soft_objective(&self) -> f64 {
        self.soft_objective
    }

    /// Predicate ids of the underlying evaluation program.
    pub fn preds(&self) -> EvalPreds {
        self.preds
    }

    fn num_candidates(&self) -> usize {
        self.program.db.atoms_of(self.preds.in_map).len()
    }

    /// Drain the delta, reground incrementally, warm-solve — degrading
    /// down the ladder in the module docs on any guard or watchdog
    /// failure.
    fn resolve(&mut self) -> Result<f64, SelectError> {
        let delta = self.program.db.take_delta();
        if delta.is_empty() {
            return Ok(self.soft_objective);
        }
        self.flips += delta.raw_entries();
        self.last_degradation = None;
        self.last_degradations.clear();
        let prior = std::mem::take(&mut self.ground);
        let mut incremental = true;
        self.ground = match self.program.reground_owned(prior, &delta) {
            Ok(g) => g,
            Err(err) => {
                // Rung 2: the incremental state is not trustworthy; a
                // fresh grounding owes nothing to it. `dual_reuse` is then
                // `None`, so the dual carry below degrades with it.
                self.degrade(cms_obs::DegradationRung::FreshGround {
                    reason: err.to_string(),
                });
                self.fallback_fresh_grounds += 1;
                incremental = false;
                self.program.ground()?
            }
        };
        let stats = self.ground.total_stats();
        self.terms_reused += stats.terms_reused;
        self.terms_recomputed += stats.terms_recomputed;
        self.arith_bindings_spliced += stats.arith_bindings_spliced;
        self.entries_coalesced += stats.entries_coalesced;
        self.sources_deduped += stats.sources_deduped;
        if incremental && delta.is_net_empty() {
            // The batch cancelled out entirely: the ground program, the
            // consensus values, and the carried duals all still describe
            // the database exactly, so the cached objective stands and no
            // solve is needed.
            self.record_pipeline_stats();
            return Ok(self.soft_objective);
        }
        // Spliced terms keep their ADMM dual state across the reground;
        // only the recomputed ones start cold.
        let carried = match self.duals.as_ref().and_then(|d| self.ground.carry_duals(d)) {
            // Rung 1: poisoned duals would feed NaN straight into the
            // first local step — drop them, keep the consensus warm start.
            Some(c) if !c.all_finite() => {
                self.degrade(cms_obs::DegradationRung::DroppedNonFiniteDuals {
                    dropped: c.seeded_terms() as u64,
                });
                self.duals_dropped += 1;
                None
            }
            other => other,
        };
        if let Some(c) = &carried {
            self.dual_terms_carried += c.seeded_terms();
        }
        let (mut solution, mut duals) =
            self.ground
                .solve_warm_dual(&self.admm, &self.values, carried.as_ref());
        self.solver_restarts += solution.admm.restarts;
        self.admm_iterations += solution.admm.iterations;
        // A timed-out solve is deliberately not escalated: the budget is a
        // wall-clock promise and every further rung would respend it.
        if !solution.admm.health.is_nominal() && solution.admm.health != SolveHealth::TimedOut {
            // Rung 3: the warm start itself may be the problem — solve
            // cold on the same ground program.
            self.degrade(cms_obs::DegradationRung::ColdSolve {
                health: solution.admm.health.to_string(),
            });
            self.cold_solves += 1;
            (solution, duals) = self.ground.solve_warm_dual(&self.admm, &[], None);
            self.solver_restarts += solution.admm.restarts;
            self.admm_iterations += solution.admm.iterations;
            if !solution.admm.health.is_nominal() && solution.admm.health != SolveHealth::TimedOut {
                // Rung 4: distrust the spliced ground program entirely.
                self.degrade(cms_obs::DegradationRung::FreshGroundColdSolve {
                    health: solution.admm.health.to_string(),
                });
                self.fallback_fresh_grounds += 1;
                self.ground = self.program.ground()?;
                (solution, duals) = self.ground.solve_warm_dual(&self.admm, &[], None);
                self.solver_restarts += solution.admm.restarts;
                self.admm_iterations += solution.admm.iterations;
            }
        }
        self.last_health = solution.admm.health;
        self.record_pipeline_stats();
        self.duals = Some(duals);
        self.values.clone_from(&solution.admm.values);
        self.soft_objective = solution.total_objective();
        Ok(self.soft_objective)
    }

    /// Record one ladder rung: push it onto the typed histories, emit a
    /// [`cms_obs::Event::Degradation`] to the journal, and append the
    /// rendered reason to [`WarmRelaxation::last_degradation`] (several
    /// rungs can fire on a single flip).
    fn degrade(&mut self, rung: cms_obs::DegradationRung) {
        cms_obs::count("select.degradations", 1);
        cms_obs::emit(cms_obs::Event::Degradation(rung.clone()));
        // Flight-recorder black box: a serious rung (fresh-ground
        // fallback or worse) persists the last ring window to
        // `CMS_OBS_DUMP` so the events leading up to the degradation
        // survive even if the process dies next.
        cms_obs::dump_on_degradation(rung.rung());
        let reason = rung.render();
        match &mut self.last_degradation {
            Some(prev) => {
                prev.push_str("; ");
                prev.push_str(&reason);
            }
            None => self.last_degradation = Some(reason),
        }
        self.last_degradations.push(rung.clone());
        self.degradations.push(rung);
    }

    /// Mirror the pipeline-level ladder counters into the ground program's
    /// `rule_stats` under a synthetic `"self-healing"` entry, so
    /// [`cms_psl::GroundProgram::total_stats`] reports them alongside the
    /// per-rule grounding stats.
    fn record_pipeline_stats(&mut self) {
        let entry = self
            .ground
            .rule_stats
            .entry("self-healing".to_owned())
            .or_default();
        entry.fallback_fresh_grounds = self.fallback_fresh_grounds;
        entry.solver_restarts = self.solver_restarts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use crate::reduction::{build_reduction, SetCoverInstance};

    fn model() -> CoverageModel {
        let sc = SetCoverInstance {
            universe: 4,
            sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            bound: 2,
        };
        let red = build_reduction(&sc);
        CoverageModel::build(&red.source, &red.target, &red.candidates)
    }

    /// A flip sequence through the warm evaluator must (a) match a freshly
    /// built-and-ground evaluation of the same selection and (b) stay a
    /// lower bound on the discrete objective.
    #[test]
    fn warm_flips_match_fresh_evaluations_and_lower_bound_f() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let discrete = Objective::new(&model, w);
        let mut warm = WarmRelaxation::new(&model, &w, AdmmConfig::default()).unwrap();

        let mut selection: Vec<usize> = Vec::new();
        for &(c, on) in &[(0usize, true), (2, true), (0, false), (1, true), (0, true)] {
            let soft = warm.set(c, on).unwrap();
            if on && !selection.contains(&c) {
                selection.push(c);
            } else if !on {
                selection.retain(|&x| x != c);
            }
            // Fresh evaluation of the same selection from scratch.
            let (fresh_prog, _) = build_eval_program(&model, &w, &selection);
            let fresh = fresh_prog.ground().unwrap();
            let fresh_sol = fresh.solve(&AdmmConfig::default());
            assert!(
                (soft - fresh_sol.total_objective()).abs() < 5e-3,
                "flip ({c},{on}): warm {} vs fresh {}",
                soft,
                fresh_sol.total_objective()
            );
            let f = discrete.value(&selection);
            assert!(
                soft <= f + 5e-3,
                "relaxation {soft} must lower-bound F {f} at {selection:?}"
            );
        }
        assert!(warm.terms_reused > 0, "flips must splice ground terms");
        assert!(warm.terms_recomputed > 0);
        assert!(warm.flips >= 5);
    }

    /// A batch of moves through `set_members` must land on the same soft
    /// objective as applying the same moves one at a time.
    #[test]
    fn batched_moves_match_sequential_flips() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let mut seq = WarmRelaxation::new(&model, &w, AdmmConfig::default()).unwrap();
        let mut batched = WarmRelaxation::new(&model, &w, AdmmConfig::default()).unwrap();

        let moves = [(0usize, true), (2, true), (0, false), (1, true)];
        let mut seq_soft = 0.0;
        for &(c, on) in &moves {
            seq_soft = seq.set(c, on).unwrap();
        }
        let batch_soft = batched.set_members(&moves).unwrap();
        assert!(
            (seq_soft - batch_soft).abs() < 5e-3,
            "sequential {seq_soft} vs batched {batch_soft}"
        );
        // The batch drains once: four raw flips, but candidate 0's
        // set+unset pair coalesces away before the reground.
        assert_eq!(batched.flips, 4);
        assert_eq!(batched.entries_coalesced, 2);
        assert!(
            batched.admm_iterations < seq.admm_iterations,
            "one warm solve ({}) must beat four ({})",
            batched.admm_iterations,
            seq.admm_iterations
        );
    }

    /// A batch whose moves cancel out is a provable no-op: the flips are
    /// counted, but no solve runs.
    #[test]
    fn cancelling_batch_skips_the_solve() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let mut warm = WarmRelaxation::new(&model, &w, AdmmConfig::default()).unwrap();
        warm.set_selection(&[1]).unwrap();
        let iters = warm.admm_iterations;
        let soft = warm.soft_objective();
        warm.set_members(&[(2, true), (2, false)]).unwrap();
        assert_eq!(
            warm.admm_iterations, iters,
            "net-empty batch must not solve"
        );
        assert_eq!(warm.flips, 3, "raw flips are still counted");
        assert_eq!(warm.entries_coalesced, 2);
        assert!((warm.soft_objective() - soft).abs() == 0.0);
        // The relaxation stays live: a real move still works after it.
        let after = warm.set(2, true).unwrap();
        let (fresh_prog, _) = build_eval_program(&model, &w, &[1, 2]);
        let fresh = fresh_prog.ground().unwrap().solve(&AdmmConfig::default());
        assert!((after - fresh.total_objective()).abs() < 5e-3);
    }

    /// Rewriting the current selection is free (no delta, no solve).
    #[test]
    fn identical_selection_costs_nothing() {
        let model = model();
        let w = ObjectiveWeights::unweighted();
        let mut warm = WarmRelaxation::new(&model, &w, AdmmConfig::default()).unwrap();
        warm.set_selection(&[1, 2]).unwrap();
        let iters = warm.admm_iterations;
        let flips = warm.flips;
        warm.set_selection(&[1, 2]).unwrap();
        assert_eq!(warm.admm_iterations, iters, "no-op batch must not solve");
        assert_eq!(warm.flips, flips);
    }
}

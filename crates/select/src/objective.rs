//! The selection objective — Eq. (4) / Eq. (9) of the paper, plus the
//! weighted generalization from the appendix's NP-hardness section:
//!
//! ```text
//! F(M) =  w1 · Σ_{t ∈ J} [1 − explains(M, t)]
//!       + w2 · Σ_{error groups touched by M} 1
//!       + w3 · Σ_{θ ∈ M} size(θ)
//! ```
//!
//! with `explains(M, t) = max_{θ ∈ M} covers(θ, t)`. The unweighted
//! objective has `w1 = w2 = w3 = 1`.

use crate::coverage::CoverageModel;

/// Weights (w1, w2, w3) of the generalized objective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight of unexplained target tuples (w1).
    pub w_explain: f64,
    /// Weight of error tuples (w2).
    pub w_error: f64,
    /// Weight of mapping size (w3).
    pub w_size: f64,
}

impl Default for ObjectiveWeights {
    fn default() -> ObjectiveWeights {
        ObjectiveWeights {
            w_explain: 1.0,
            w_error: 1.0,
            w_size: 1.0,
        }
    }
}

impl ObjectiveWeights {
    /// The unweighted paper objective (all ones).
    pub fn unweighted() -> ObjectiveWeights {
        ObjectiveWeights::default()
    }
}

/// Evaluates `F` over a fixed coverage model.
pub struct Objective<'a> {
    /// The coverage model.
    pub model: &'a CoverageModel,
    /// Weights.
    pub weights: ObjectiveWeights,
}

impl<'a> Objective<'a> {
    /// Construct an evaluator.
    pub fn new(model: &'a CoverageModel, weights: ObjectiveWeights) -> Objective<'a> {
        Objective { model, weights }
    }

    /// Evaluate `F` for a selection given as a membership mask.
    ///
    /// # Panics
    /// Panics if the mask length differs from the candidate count.
    pub fn value_mask(&self, selected: &[bool]) -> f64 {
        assert_eq!(
            selected.len(),
            self.model.num_candidates,
            "selection mask size"
        );
        // explains(M, t) = max over selected candidates.
        let mut best = vec![0.0f64; self.model.num_targets()];
        let mut size = 0usize;
        for (c, &is_in) in selected.iter().enumerate() {
            if !is_in {
                continue;
            }
            size += self.model.sizes[c];
            for &(t, d) in &self.model.covers[c] {
                if d > best[t] {
                    best[t] = d;
                }
            }
        }
        let unexplained: f64 = best.iter().map(|d| 1.0 - d).sum();
        let errors = self
            .model
            .errors
            .iter()
            .filter(|g| g.creators.iter().any(|&c| selected[c]))
            .count() as f64;
        self.weights.w_explain * unexplained
            + self.weights.w_error * errors
            + self.weights.w_size * size as f64
    }

    /// Evaluate `F` for a selection given as candidate indices.
    pub fn value(&self, selection: &[usize]) -> f64 {
        let mut mask = vec![false; self.model.num_candidates];
        for &c in selection {
            mask[c] = true;
        }
        self.value_mask(&mask)
    }

    /// The three objective components `(unexplained, errors, size)` for a
    /// selection — the columns of the appendix's example table.
    pub fn components(&self, selection: &[usize]) -> (f64, f64, f64) {
        let mut mask = vec![false; self.model.num_candidates];
        for &c in selection {
            mask[c] = true;
        }
        let mut best = vec![0.0f64; self.model.num_targets()];
        let mut size = 0usize;
        for (c, &is_in) in mask.iter().enumerate() {
            if !is_in {
                continue;
            }
            size += self.model.sizes[c];
            for &(t, d) in &self.model.covers[c] {
                if d > best[t] {
                    best[t] = d;
                }
            }
        }
        let unexplained: f64 = best.iter().map(|d| 1.0 - d).sum();
        let errors = self
            .model
            .errors
            .iter()
            .filter(|g| g.creators.iter().any(|&c| mask[c]))
            .count() as f64;
        (unexplained, errors, size as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::tests::running_example;
    use crate::coverage::CoverageModel;

    /// The exact objective table from appendix §I:
    ///
    /// | M        | Σ 1−explains | Σ error | size | total |
    /// | {}       | 4            | 0       | 0    | 4     |
    /// | {θ1}     | 3 1/3        | 1       | 3    | 7 1/3 |
    /// | {θ3}     | 2            | 2       | 4    | 8     |
    /// | {θ1,θ3}  | 2            | 3       | 7    | 12    |
    #[test]
    fn appendix_table_reproduced_exactly() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let f = Objective::new(&model, ObjectiveWeights::unweighted());

        let eps = 1e-9;
        assert!((f.value(&[]) - 4.0).abs() < eps);
        assert!((f.value(&[0]) - (7.0 + 1.0 / 3.0)).abs() < eps);
        assert!((f.value(&[1]) - 8.0).abs() < eps);
        assert!((f.value(&[0, 1]) - 12.0).abs() < eps);

        let (u, e, s) = f.components(&[0]);
        assert!((u - (3.0 + 1.0 / 3.0)).abs() < eps);
        assert!((e - 1.0).abs() < eps);
        assert!((s - 3.0).abs() < eps);

        let (u, e, s) = f.components(&[0, 1]);
        assert!((u - 2.0).abs() < eps);
        assert!((e - 3.0).abs() < eps);
        assert!((s - 7.0).abs() < eps);
    }

    /// The appendix's overfitting remark: with five more ML-like projects
    /// the optimum flips from {} to {θ3}.
    #[test]
    fn extra_projects_flip_optimum_to_theta3() {
        let (src, tgt, mut i, mut j, cands) = running_example();
        let proj = src.rel_id("proj").unwrap();
        let task = tgt.rel_id("task").unwrap();
        for n in 0..5 {
            let name = format!("X{n}");
            i.insert_ground(proj, &[&name, "9", "SAP"]);
            j.insert_ground(task, &[&name, "Alice", "111"]);
        }
        let model = CoverageModel::build(&i, &j, &cands);
        let f = Objective::new(&model, ObjectiveWeights::unweighted());
        let empty = f.value(&[]);
        let t1 = f.value(&[0]);
        let t3 = f.value(&[1]);
        let both = f.value(&[0, 1]);
        assert!(t3 < empty, "θ3 ({t3}) must beat empty ({empty})");
        assert!(t3 < t1, "θ3 ({t3}) must beat θ1 ({t1})");
        assert!(t3 < both, "θ3 ({t3}) must beat both ({both})");
    }

    #[test]
    fn weights_scale_components() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let w = ObjectiveWeights {
            w_explain: 2.0,
            w_error: 0.5,
            w_size: 0.0,
        };
        let f = Objective::new(&model, w);
        // {θ1}: 2·(10/3) + 0.5·1 + 0 = 43/6.
        assert!((f.value(&[0]) - (2.0 * (10.0 / 3.0) + 0.5)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "selection mask size")]
    fn wrong_mask_size_panics() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        Objective::new(&model, ObjectiveWeights::unweighted()).value_mask(&[true]);
    }
}

//! Objective-weight learning from labeled scenarios.
//!
//! The paper's PSL system supports weight learning; with MAP inference as
//! the only primitive, the practical counterpart is supervised search over
//! the weight space: given training scenarios whose gold mapping is known,
//! pick the `(w1, w2, w3)` whose selections score best. `F` is invariant
//! under uniform scaling of the weights, so the grid fixes `w1 = 1` and
//! explores `(w2, w3)` on a log grid (DESIGN.md §5 records this
//! substitution: grid search in place of PSL's margin-based learners).

use crate::objective::ObjectiveWeights;
use crate::pipeline::evaluate_scenario;
use crate::selectors::{SelectError, Selector};
use cms_ibench::Scenario;

/// Which evaluation metric to maximize during learning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LearnMetric {
    /// Mapping-level F1 against the gold candidate set.
    MappingF1,
    /// Data-level F1 of the exchanged instances.
    DataF1,
}

/// The weight search space: `w1` is fixed to 1 (scale invariance), `w2`
/// and `w3` take values from these lists.
#[derive(Clone, Debug)]
pub struct WeightGrid {
    /// Error-weight values to try.
    pub w_error: Vec<f64>,
    /// Size-weight values to try.
    pub w_size: Vec<f64>,
}

impl Default for WeightGrid {
    fn default() -> WeightGrid {
        let axis = vec![0.25, 0.5, 1.0, 2.0, 4.0];
        WeightGrid {
            w_error: axis.clone(),
            w_size: axis,
        }
    }
}

impl WeightGrid {
    /// All weight combinations of the grid.
    pub fn combinations(&self) -> Vec<ObjectiveWeights> {
        let mut out = Vec::with_capacity(self.w_error.len() * self.w_size.len());
        for &w2 in &self.w_error {
            for &w3 in &self.w_size {
                out.push(ObjectiveWeights {
                    w_explain: 1.0,
                    w_error: w2,
                    w_size: w3,
                });
            }
        }
        out
    }
}

/// The outcome of weight learning.
#[derive(Clone, Debug)]
pub struct LearnedWeights {
    /// The best weights found.
    pub weights: ObjectiveWeights,
    /// Mean training metric of the best weights.
    pub train_score: f64,
    /// Mean training metric of the unweighted default, for reference.
    pub default_score: f64,
    /// Weight combinations evaluated.
    pub evaluated: usize,
}

/// Grid-search the objective weights on labeled training scenarios.
///
/// Ties are broken toward the default weights first, then grid order, so
/// learning never moves away from the default without evidence.
pub fn learn_weights(
    scenarios: &[Scenario],
    selector: &dyn Selector,
    grid: &WeightGrid,
    metric: LearnMetric,
) -> Result<LearnedWeights, SelectError> {
    assert!(
        !scenarios.is_empty(),
        "weight learning needs at least one scenario"
    );
    let score_of = |weights: &ObjectiveWeights| -> Result<f64, SelectError> {
        let mut total = 0.0;
        for s in scenarios {
            let outcome = evaluate_scenario(s, selector, weights)?;
            total += match metric {
                LearnMetric::MappingF1 => outcome.mapping.f1,
                LearnMetric::DataF1 => outcome.data.f1,
            };
        }
        Ok(total / scenarios.len() as f64)
    };

    let default = ObjectiveWeights::unweighted();
    let default_score = score_of(&default)?;
    let mut best = (default, default_score);
    let mut evaluated = 1usize;
    for weights in grid.combinations() {
        if weights == default {
            continue; // already scored
        }
        let score = score_of(&weights)?;
        evaluated += 1;
        if score > best.1 + 1e-12 {
            best = (weights, score);
        }
    }
    Ok(LearnedWeights {
        weights: best.0,
        train_score: best.1,
        default_score,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::Greedy;
    use cms_ibench::{generate, NoiseConfig, ScenarioConfig};

    fn training_batch() -> Vec<Scenario> {
        [3u64, 14]
            .iter()
            .map(|&seed| {
                generate(&ScenarioConfig {
                    rows_per_relation: 8,
                    noise: NoiseConfig::uniform(25.0),
                    seed,
                    ..ScenarioConfig::all_primitives(1)
                })
            })
            .collect()
    }

    #[test]
    fn learned_never_worse_than_default_on_training() {
        let scenarios = training_batch();
        let learned = learn_weights(
            &scenarios,
            &Greedy,
            &WeightGrid::default(),
            LearnMetric::MappingF1,
        )
        .unwrap();
        assert!(learned.train_score >= learned.default_score - 1e-12);
        assert!(learned.evaluated >= 2);
    }

    #[test]
    fn deterministic() {
        let scenarios = training_batch();
        let a = learn_weights(
            &scenarios,
            &Greedy,
            &WeightGrid::default(),
            LearnMetric::DataF1,
        )
        .unwrap();
        let b = learn_weights(
            &scenarios,
            &Greedy,
            &WeightGrid::default(),
            LearnMetric::DataF1,
        )
        .unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.train_score, b.train_score);
    }

    #[test]
    fn degenerate_grid_returns_default() {
        let scenarios = training_batch();
        let grid = WeightGrid {
            w_error: vec![1.0],
            w_size: vec![1.0],
        };
        let learned = learn_weights(&scenarios, &Greedy, &grid, LearnMetric::MappingF1).unwrap();
        assert_eq!(learned.weights, ObjectiveWeights::unweighted());
        assert_eq!(learned.evaluated, 1);
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_training_panics() {
        let _ = learn_weights(&[], &Greedy, &WeightGrid::default(), LearnMetric::MappingF1);
    }

    #[test]
    fn grid_combinations_cover_product() {
        let grid = WeightGrid {
            w_error: vec![1.0, 2.0],
            w_size: vec![0.5, 1.0, 2.0],
        };
        assert_eq!(grid.combinations().len(), 6);
    }
}

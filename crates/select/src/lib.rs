//! `cms-select` — collective, probabilistic schema-mapping selection.
//!
//! The paper's primary contribution: given a data example `(I, J)` and a
//! candidate set `C` of st tgds, select `M ⊆ C` minimizing objective
//! Eq. (4)/(9) — unexplained target data + invented target data + mapping
//! size. This crate provides:
//!
//! * the graded `covers`/`creates` semantics ([`coverage`]),
//! * the objective and its weighted generalization ([`objective`]),
//! * §III-C preprocessing ([`mod@preprocess`]),
//! * selectors: exhaustive, branch-and-bound (exact), greedy, local
//!   search, and the paper's **collective PSL** formulation
//!   ([`selectors`]),
//! * evaluation metrics ([`metrics`]) and the SET COVER reduction from the
//!   appendix's NP-hardness proof ([`reduction`]),
//! * a scenario-level pipeline ([`pipeline`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod explain;
pub mod incremental;
pub mod learn;
pub mod metrics;
pub mod objective;
pub mod pipeline;
pub mod preprocess;
pub mod reduction;
pub mod relaxation;
pub mod selectors;

pub use coverage::{CoverageModel, CoverageOptions, ErrorGroup};
pub use explain::{explain_selection, CandidateReport, SelectionReport};
pub use incremental::IncrementalObjective;
pub use learn::{learn_weights, LearnMetric, LearnedWeights, WeightGrid};
pub use metrics::{data_prf, mapping_prf, Prf};
pub use objective::{Objective, ObjectiveWeights};
pub use pipeline::{evaluate_scenario, SelectionOutcome};
pub use preprocess::{preprocess, PreprocessReport};
pub use reduction::{build_reduction, SetCoverInstance};
pub use relaxation::{build_eval_program, EvalPreds, WarmRelaxation};
pub use selectors::{
    BranchBound, Exhaustive, FixedSelection, Greedy, IndependentBaseline, LocalSearch,
    PslCollective, SelectError, Selection, SelectionTelemetry, Selector,
};

//! The graded `covers` / `creates` semantics of objective Eq. (9).
//!
//! For each candidate θ we chase `I` to get `K_θ` and compare against the
//! target instance `J`:
//!
//! * `k ∈ K_θ` **matches** `t ∈ J` iff every constant position agrees
//!   ([`cms_data::tuple_match`]); the match induces a null assignment.
//! * A null assignment `n ↦ c` is **supported** iff another tuple of `K_θ`
//!   containing `n` matches some `J` tuple inducing the same assignment —
//!   the join evidence that lets an existential "borrow" a concrete value
//!   (this is what makes θ3 in the appendix explain `task(ML, Alice, 111)`
//!   to degree 3/3 while θ1 only reaches 2/3).
//! * `covers(θ, t)` = max over matching `k` of
//!   `(#constants + #supported nulls) / arity`.
//! * `k` with **no** match in `J` is an error (`creates` = 1).
//!
//! Nulls are never shared across candidates (the chase freshens them per
//! firing), so per-candidate computation is exact for any selection:
//! `explains(M, t) = max_{θ ∈ M} covers(θ, t)`, and error tuples union.
//! Ground error tuples identical across candidates are merged into one
//! error *group* charged once per selection, matching `Σ_{t ∈ K_C − J}` of
//! Eq. (1).

use cms_data::{tuple_match, FxHashMap, Instance, NullId, Tuple, Value};
use cms_tgd::{chase_one, core_of, ChaseEngine, ChaseError, ChaseStats, StTgd};
use std::collections::BTreeMap;

/// Options for coverage-model construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageOptions {
    /// Minimize each candidate's universal solution to its **core** before
    /// computing covers/creates. The paper evaluates on the canonical
    /// (non-minimized) solution — this switch is the ablation: redundant
    /// null-tuples produced by duplicate firings then stop inflating the
    /// error term. See `cms_tgd::core_of`.
    pub use_core: bool,
}

/// A group of identical created-but-unmatched tuples and its creators.
#[derive(Clone, Debug)]
pub struct ErrorGroup {
    /// Candidate indices that create this tuple.
    pub creators: Vec<usize>,
    /// A representative tuple (for diagnostics).
    pub example: Tuple,
}

/// Everything the objective needs, precomputed per candidate.
#[derive(Clone, Debug)]
pub struct CoverageModel {
    /// Number of candidates.
    pub num_candidates: usize,
    /// The target tuples of `J`, indexed.
    pub targets: Vec<Tuple>,
    /// `size(θ)` per candidate.
    pub sizes: Vec<usize>,
    /// Sparse per-candidate covers: `(target index, degree)` with
    /// degree > 0, at most one entry per target.
    pub covers: Vec<Vec<(usize, f64)>>,
    /// Error groups (tuples in `K_C` with no match in `J`).
    pub errors: Vec<ErrorGroup>,
    /// Per-candidate count of error groups it participates in.
    pub error_counts: Vec<usize>,
}

impl CoverageModel {
    /// Build the model by chasing each candidate over `source` and
    /// comparing against `target` (canonical solutions, as in the paper).
    pub fn build(source: &Instance, target: &Instance, candidates: &[StTgd]) -> CoverageModel {
        CoverageModel::build_with(source, target, candidates, &CoverageOptions::default())
    }

    /// Build with explicit [`CoverageOptions`].
    ///
    /// The per-candidate solutions come from one [`ChaseEngine`] pass over
    /// the shared body-prefix trie rather than a per-candidate
    /// `chase_one` loop; results are identical to
    /// [`CoverageModel::build_reference`] (nulls are engine-renamed, which
    /// covers/creates cannot observe).
    ///
    /// Panics — before chasing anything — if a candidate fails chase
    /// validation; use [`CoverageModel::try_build_with`] for a `Result`.
    pub fn build_with(
        source: &Instance,
        target: &Instance,
        candidates: &[StTgd],
        options: &CoverageOptions,
    ) -> CoverageModel {
        CoverageModel::try_build_with(source, target, candidates, options)
            .unwrap_or_else(|e| panic!("CoverageModel: invalid candidate tgd: {e}"))
    }

    /// Fallible [`CoverageModel::build_with`].
    pub fn try_build_with(
        source: &Instance,
        target: &Instance,
        candidates: &[StTgd],
        options: &CoverageOptions,
    ) -> Result<CoverageModel, ChaseError> {
        CoverageModel::build_with_stats(source, target, candidates, options).map(|(m, _)| m)
    }

    /// Reference implementation: per-candidate naive [`chase_one`] loop,
    /// kept for equivalence testing against the engine-backed build.
    pub fn build_reference(
        source: &Instance,
        target: &Instance,
        candidates: &[StTgd],
        options: &CoverageOptions,
    ) -> CoverageModel {
        let solutions = candidates
            .iter()
            .map(|tgd| chase_one(source, tgd))
            .collect();
        CoverageModel::from_solutions(target, candidates, solutions, options)
    }

    /// Engine-backed build that also reports the batch-chase work counters
    /// (prefix bindings computed vs reused, firings, trie size).
    pub fn build_with_stats(
        source: &Instance,
        target: &Instance,
        candidates: &[StTgd],
        options: &CoverageOptions,
    ) -> Result<(CoverageModel, ChaseStats), ChaseError> {
        let engine = ChaseEngine::new(candidates)?;
        let (solutions, stats) = engine.chase_all_stats(source);
        Ok((
            CoverageModel::from_solutions(target, candidates, solutions, options),
            stats,
        ))
    }

    /// Score precomputed per-candidate universal solutions against `target`.
    fn from_solutions(
        target: &Instance,
        candidates: &[StTgd],
        solutions: Vec<Instance>,
        options: &CoverageOptions,
    ) -> CoverageModel {
        debug_assert_eq!(candidates.len(), solutions.len());
        let targets: Vec<Tuple> = target
            .iter_all()
            .map(|(rel, row)| Tuple::new(rel, row.to_vec()))
            .collect();
        // Target index per relation for fast match lookup.
        let mut by_rel: FxHashMap<cms_data::RelId, Vec<usize>> = FxHashMap::default();
        for (i, t) in targets.iter().enumerate() {
            by_rel.entry(t.rel).or_default().push(i);
        }

        let mut covers: Vec<Vec<(usize, f64)>> = Vec::with_capacity(candidates.len());
        let mut ground_errors: BTreeMap<Tuple, Vec<usize>> = BTreeMap::new();
        let mut null_errors: Vec<ErrorGroup> = Vec::new();
        let mut sizes = Vec::with_capacity(candidates.len());

        for (cand_idx, (tgd, mut k)) in candidates.iter().zip(solutions).enumerate() {
            sizes.push(tgd.size());
            if options.use_core {
                k = core_of(&k);
            }
            let k_tuples: Vec<Tuple> = k
                .iter_all()
                .map(|(rel, row)| Tuple::new(rel, row.to_vec()))
                .collect();
            // Occurrences of each null across K_θ.
            let mut null_occurrences: FxHashMap<NullId, Vec<usize>> = FxHashMap::default();
            for (ki, kt) in k_tuples.iter().enumerate() {
                for v in &kt.args {
                    if let Some(n) = v.as_null() {
                        null_occurrences.entry(n).or_default().push(ki);
                    }
                }
            }
            // Support cache: is n ↦ c corroborated by a tuple other than
            // the asking one? Support is a property of (n, c) pairs plus
            // the asking tuple; since occurrences lists are tiny we check
            // directly with an exclusion index.
            let mut support_cache: FxHashMap<(NullId, Value, usize), bool> = FxHashMap::default();
            let mut is_supported = |n: NullId,
                                    c: Value,
                                    asking: usize,
                                    k_tuples: &[Tuple],
                                    null_occurrences: &FxHashMap<NullId, Vec<usize>>|
             -> bool {
                if let Some(&cached) = support_cache.get(&(n, c, asking)) {
                    return cached;
                }
                let mut supported = false;
                if let Some(occs) = null_occurrences.get(&n) {
                    'outer: for &other in occs {
                        if other == asking {
                            continue;
                        }
                        let kt = &k_tuples[other];
                        for ti in by_rel.get(&kt.rel).map_or(&[][..], Vec::as_slice) {
                            if let Some(assignment) = tuple_match(&kt.args, &targets[*ti].args) {
                                if assignment.get(&n) == Some(&c) {
                                    supported = true;
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
                support_cache.insert((n, c, asking), supported);
                supported
            };

            let mut cand_covers: FxHashMap<usize, f64> = FxHashMap::default();
            for (ki, kt) in k_tuples.iter().enumerate() {
                let mut matched = false;
                for ti in by_rel.get(&kt.rel).map_or(&[][..], Vec::as_slice) {
                    let t = &targets[*ti];
                    let Some(assignment) = tuple_match(&kt.args, &t.args) else {
                        continue;
                    };
                    matched = true;
                    let arity = kt.arity() as f64;
                    let mut hits = 0usize;
                    for (pos, v) in kt.args.iter().enumerate() {
                        match v {
                            Value::Const(_) => hits += 1,
                            Value::Null(n) => {
                                // Invariant: `assignment` came from
                                // `tuple_match(&kt.args, ..)`, which maps
                                // *every* null position of `kt.args` (the
                                // slice `n` is drawn from) or returns
                                // `None` — so the lookup cannot miss.
                                let c = *assignment.get(n).expect("matched null has assignment");
                                debug_assert_eq!(c, t.args[pos]);
                                if is_supported(*n, c, ki, &k_tuples, &null_occurrences) {
                                    hits += 1;
                                }
                            }
                        }
                    }
                    let degree = (hits as f64 / arity).min(1.0);
                    let entry = cand_covers.entry(*ti).or_insert(0.0);
                    if degree > *entry {
                        *entry = degree;
                    }
                }
                if !matched {
                    if kt.is_ground() {
                        ground_errors.entry(kt.clone()).or_default().push(cand_idx);
                    } else {
                        null_errors.push(ErrorGroup {
                            creators: vec![cand_idx],
                            example: kt.clone(),
                        });
                    }
                }
            }
            let mut list: Vec<(usize, f64)> =
                cand_covers.into_iter().filter(|&(_, d)| d > 0.0).collect();
            list.sort_by_key(|&(t, _)| t);
            covers.push(list);
        }

        let mut errors: Vec<ErrorGroup> = ground_errors
            .into_iter()
            .map(|(example, mut creators)| {
                creators.sort_unstable();
                creators.dedup();
                ErrorGroup { creators, example }
            })
            .collect();
        errors.append(&mut null_errors);

        let mut error_counts = vec![0usize; candidates.len()];
        for g in &errors {
            for &c in &g.creators {
                error_counts[c] += 1;
            }
        }

        CoverageModel {
            num_candidates: candidates.len(),
            targets,
            sizes,
            covers,
            errors,
            error_counts,
        }
    }

    /// Number of target tuples.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// Best cover of target `t` by candidate `c` (0 if none).
    pub fn cover(&self, c: usize, t: usize) -> f64 {
        self.covers[c]
            .iter()
            .find(|&&(ti, _)| ti == t)
            .map_or(0.0, |&(_, d)| d)
    }

    /// Indices of targets no candidate covers at all ("certain
    /// unexplained", removable before optimization per §III-C).
    pub fn certainly_unexplained(&self) -> Vec<usize> {
        let mut covered = vec![false; self.targets.len()];
        for cand in &self.covers {
            for &(t, _) in cand {
                covered[t] = true;
            }
        }
        covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Candidates with no positive cover: they can only add errors and
    /// size, so no optimal selection includes them.
    pub fn useless_candidates(&self) -> Vec<usize> {
        (0..self.num_candidates)
            .filter(|&c| self.covers[c].is_empty())
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cms_data::Schema;
    use cms_tgd::parse_tgd;

    /// The paper's running example (appendix §I), reconstructed:
    ///   source: proj(name, code, firm), team(pcode, emp)
    ///   target: task(pname, emp, oid), org(oid, firm)
    ///   θ1: proj(x,c,f) & team(c,e) -> task(x,e,o)
    ///   θ3: proj(x,c,f) & team(c,e) -> task(x,e,o) & org(o,f)
    pub(crate) fn running_example() -> (Schema, Schema, Instance, Instance, Vec<StTgd>) {
        let mut src = Schema::new("s");
        src.add_relation("proj", &["name", "code", "firm"]);
        src.add_relation("team", &["pcode", "emp"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("task", &["pname", "emp", "oid"]);
        tgt.add_relation("org", &["oid", "firm"]);

        let mut i = Instance::new();
        let proj = src.rel_id("proj").unwrap();
        let team = src.rel_id("team").unwrap();
        i.insert_ground(proj, &["BigData", "7", "IBM"]);
        i.insert_ground(proj, &["ML", "9", "SAP"]);
        i.insert_ground(team, &["7", "Bob"]);
        i.insert_ground(team, &["9", "Alice"]);

        let mut j = Instance::new();
        let task = tgt.rel_id("task").unwrap();
        let org = tgt.rel_id("org").unwrap();
        j.insert_ground(task, &["ML", "Alice", "111"]);
        j.insert_ground(org, &["111", "SAP"]);
        // Two tuples no candidate explains (keeps |J| = 4 as in the
        // appendix's objective table).
        j.insert_ground(task, &["Web", "Carol", "333"]);
        j.insert_ground(org, &["444", "Oracle"]);

        let theta1 = parse_tgd("proj(x, c, f) & team(c, e) -> task(x, e, o)", &src, &tgt).unwrap();
        let theta3 = parse_tgd(
            "proj(x, c, f) & team(c, e) -> task(x, e, o) & org(o, f)",
            &src,
            &tgt,
        )
        .unwrap();
        (src, tgt, i, j, vec![theta1, theta3])
    }

    #[test]
    fn theta1_covers_two_thirds_unsupported_null() {
        let (_, tgt, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let task = tgt.rel_id("task").unwrap();
        let ml_idx = model
            .targets
            .iter()
            .position(|t| t.rel == task && t.args[0] == Value::constant("ML"))
            .unwrap();
        assert!((model.cover(0, ml_idx) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn theta3_covers_fully_via_join_support() {
        let (_, tgt, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        let task = tgt.rel_id("task").unwrap();
        let org = tgt.rel_id("org").unwrap();
        let ml_idx = model
            .targets
            .iter()
            .position(|t| t.rel == task && t.args[0] == Value::constant("ML"))
            .unwrap();
        let org_idx = model
            .targets
            .iter()
            .position(|t| t.rel == org && t.args[0] == Value::constant("111"))
            .unwrap();
        assert!(
            (model.cover(1, ml_idx) - 1.0).abs() < 1e-12,
            "3/3 via supported null"
        );
        assert!(
            (model.cover(1, org_idx) - 1.0).abs() < 1e-12,
            "2/2 via supported null"
        );
    }

    #[test]
    fn error_counts_match_appendix() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        // θ1 creates 1 error (BigData task); θ3 creates 2 (BigData task +
        // IBM org). Nulls keep them in distinct groups.
        assert_eq!(model.error_counts, vec![1, 2]);
        assert_eq!(model.errors.len(), 3);
    }

    #[test]
    fn sizes_match_appendix() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        assert_eq!(model.sizes, vec![3, 4]);
    }

    #[test]
    fn certainly_unexplained_detects_junk_targets() {
        let (_, _, i, j, cands) = running_example();
        let model = CoverageModel::build(&i, &j, &cands);
        assert_eq!(model.certainly_unexplained().len(), 2);
    }

    #[test]
    fn ground_duplicate_errors_merge_across_candidates() {
        let mut src = Schema::new("s");
        src.add_relation("a", &["x"]);
        src.add_relation("b", &["x"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x"]);
        let c1 = parse_tgd("a(x) -> t(x)", &src, &tgt).unwrap();
        let c2 = parse_tgd("b(x) -> t(x)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(src.rel_id("a").unwrap(), &["v"]);
        i.insert_ground(src.rel_id("b").unwrap(), &["v"]);
        let j = Instance::new(); // everything is an error
        let model = CoverageModel::build(&i, &j, &[c1, c2]);
        // Both candidates create the *same* ground tuple t(v): one group,
        // two creators — charged once per Eq. (1)'s sum over K_C − J.
        assert_eq!(model.errors.len(), 1);
        assert_eq!(model.errors[0].creators, vec![0, 1]);
    }

    #[test]
    fn useless_candidates_have_no_covers() {
        let (_, _, i, j, mut cands) = running_example();
        // A candidate writing only junk no J tuple matches.
        let (src, tgt) = {
            let (s, t, _, _, _) = running_example();
            (s, t)
        };
        cands.push(parse_tgd("team(c, e) -> org(e, c)", &src, &tgt).unwrap());
        let model = CoverageModel::build(&i, &j, &cands);
        assert_eq!(model.useless_candidates(), vec![2]);
    }

    #[test]
    fn core_option_removes_redundant_errors() {
        // A tgd whose body ignores one column fires twice per "ML" value,
        // producing two pattern-identical error tuples; the core ablation
        // collapses them to one.
        let mut src = Schema::new("s");
        src.add_relation("a", &["x", "y"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x", "k"]);
        let tgd = parse_tgd("a(x, y) -> t(x, n)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(src.rel_id("a").unwrap(), &["ML", "1"]);
        i.insert_ground(src.rel_id("a").unwrap(), &["ML", "2"]);
        let j = Instance::new(); // everything is an error
        let canonical = CoverageModel::build(&i, &j, std::slice::from_ref(&tgd));
        assert_eq!(canonical.error_counts, vec![2], "two firings, two errors");
        let cored = CoverageModel::build_with(
            &i,
            &j,
            std::slice::from_ref(&tgd),
            &CoverageOptions { use_core: true },
        );
        assert_eq!(cored.error_counts, vec![1], "core collapses the duplicate");
    }

    #[test]
    fn null_support_spans_multiple_target_relations() {
        // a(x) -> t(x,n) & u(n) & w(n,x): one null threaded through three
        // target relations. Support for n ↦ c in any one relation comes
        // from the *other* relations' matches.
        let mut src = Schema::new("s");
        src.add_relation("a", &["x"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x", "k"]);
        tgt.add_relation("u", &["k"]);
        tgt.add_relation("w", &["k", "x"]);
        let tgd = parse_tgd("a(x) -> t(x, n) & u(n) & w(n, x)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(src.rel_id("a").unwrap(), &["v"]);

        // Full corroboration: every relation holds the consistent n ↦ c
        // image; all three covers are exact.
        let mut j = Instance::new();
        j.insert_ground(tgt.rel_id("t").unwrap(), &["v", "c"]);
        j.insert_ground(tgt.rel_id("u").unwrap(), &["c"]);
        j.insert_ground(tgt.rel_id("w").unwrap(), &["c", "v"]);
        let model = CoverageModel::build(&i, &j, std::slice::from_ref(&tgd));
        for t in 0..model.num_targets() {
            assert!(
                (model.cover(0, t) - 1.0).abs() < 1e-12,
                "target {t}: cross-relation support must make the cover exact"
            );
        }
        assert!(model.errors.is_empty());

        // Drop w from J: t and u still corroborate each other (support
        // only needs *one* other inducing occurrence), while the w tuple
        // becomes a null error.
        let mut j2 = Instance::new();
        j2.insert_ground(tgt.rel_id("t").unwrap(), &["v", "c"]);
        j2.insert_ground(tgt.rel_id("u").unwrap(), &["c"]);
        let model2 = CoverageModel::build(&i, &j2, std::slice::from_ref(&tgd));
        for t in 0..model2.num_targets() {
            assert!((model2.cover(0, t) - 1.0).abs() < 1e-12);
        }
        assert_eq!(
            model2.error_counts,
            vec![1],
            "unmatched w(n, v) is an error"
        );
        assert!(!model2.errors[0].example.is_ground());
    }

    #[test]
    fn conflicting_induced_assignments_are_not_support() {
        // a(x) -> t(x,n) & u(n,x): J induces n ↦ c1 from the t match but
        // n ↦ c2 from the u match. Conflicting assignments corroborate
        // nothing — both covers stay at the constant fraction 1/2.
        let mut src = Schema::new("s");
        src.add_relation("a", &["x"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x", "k"]);
        tgt.add_relation("u", &["k", "x"]);
        let tgd = parse_tgd("a(x) -> t(x, n) & u(n, x)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(src.rel_id("a").unwrap(), &["v"]);

        let mut j = Instance::new();
        j.insert_ground(tgt.rel_id("t").unwrap(), &["v", "c1"]);
        j.insert_ground(tgt.rel_id("u").unwrap(), &["c2", "v"]);
        let model = CoverageModel::build(&i, &j, std::slice::from_ref(&tgd));
        for t in 0..model.num_targets() {
            assert!(
                (model.cover(0, t) - 0.5).abs() < 1e-12,
                "target {t}: n ↦ c1 vs n ↦ c2 must not count as support"
            );
        }

        // Consistent assignments flip both covers to exact.
        let mut j_ok = Instance::new();
        j_ok.insert_ground(tgt.rel_id("t").unwrap(), &["v", "c"]);
        j_ok.insert_ground(tgt.rel_id("u").unwrap(), &["c", "v"]);
        let model_ok = CoverageModel::build(&i, &j_ok, std::slice::from_ref(&tgd));
        for t in 0..model_ok.num_targets() {
            assert!((model_ok.cover(0, t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn use_core_can_retract_the_partially_covering_null_tuple() {
        // a(x) -> t(x,x) & t(x,e): the firing produces the ground t(v,v)
        // and the padded t(v,N); N retracts onto v, so the core drops the
        // null tuple. Against J = {t(v,w)} only t(v,N) matches (degree
        // 1/2) — coring therefore *lowers* the cover to 0 while the ground
        // error stays. The supported-null machinery must follow whichever
        // instance it is given.
        let mut src = Schema::new("s");
        src.add_relation("a", &["x"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x", "y"]);
        let tgd = parse_tgd("a(x) -> t(x, x) & t(x, e)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(src.rel_id("a").unwrap(), &["v"]);
        let mut j = Instance::new();
        j.insert_ground(tgt.rel_id("t").unwrap(), &["v", "w"]);

        let canonical = CoverageModel::build(&i, &j, std::slice::from_ref(&tgd));
        assert!((canonical.cover(0, 0) - 0.5).abs() < 1e-12);
        assert_eq!(canonical.error_counts, vec![1], "ground t(v,v) is an error");

        let cored = CoverageModel::build_with(
            &i,
            &j,
            std::slice::from_ref(&tgd),
            &CoverageOptions { use_core: true },
        );
        assert_eq!(cored.cover(0, 0), 0.0, "core dropped the covering tuple");
        assert_eq!(cored.error_counts, vec![1]);

        // When J matches the ground tuple exactly, coring is lossless:
        // cover stays exact and nothing becomes an error.
        let mut j_exact = Instance::new();
        j_exact.insert_ground(tgt.rel_id("t").unwrap(), &["v", "v"]);
        for options in [
            CoverageOptions::default(),
            CoverageOptions { use_core: true },
        ] {
            let model =
                CoverageModel::build_with(&i, &j_exact, std::slice::from_ref(&tgd), &options);
            assert!(
                (model.cover(0, 0) - 1.0).abs() < 1e-12,
                "use_core={}",
                options.use_core
            );
            assert!(model.errors.is_empty(), "use_core={}", options.use_core);
        }
    }

    #[test]
    fn engine_and_reference_builds_agree_on_running_example() {
        let (_, _, i, j, cands) = running_example();
        let engine = CoverageModel::build(&i, &j, &cands);
        let reference = CoverageModel::build_reference(&i, &j, &cands, &CoverageOptions::default());
        assert_eq!(engine.covers, reference.covers);
        assert_eq!(engine.sizes, reference.sizes);
        assert_eq!(engine.error_counts, reference.error_counts);
        assert_eq!(engine.errors.len(), reference.errors.len());
    }

    #[test]
    fn full_tgd_ground_cover_is_exact() {
        let mut src = Schema::new("s");
        src.add_relation("a", &["x", "y"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x", "y"]);
        let c = parse_tgd("a(x, y) -> t(x, y)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(src.rel_id("a").unwrap(), &["p", "q"]);
        let mut j = Instance::new();
        j.insert_ground(tgt.rel_id("t").unwrap(), &["p", "q"]);
        let model = CoverageModel::build(&i, &j, &[c]);
        assert_eq!(model.cover(0, 0), 1.0);
        assert!(model.errors.is_empty());
    }
}

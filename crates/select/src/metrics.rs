//! Evaluation metrics: how close is a selected mapping to the gold one?
//!
//! Two granularities, both reported in the experiments:
//!
//! * **mapping-level** — precision/recall/F1 of the selected candidate set
//!   against the gold indices;
//! * **data-level** — precision/recall/F1 of the exchanged instance
//!   `K_M = chase(I, M)` against `K_MG`, compared as multisets of
//!   null-canonicalized tuple patterns (nulls from different chases can
//!   never be equal verbatim).

use cms_data::{multiset_overlap, pattern_multiset, Instance};
use cms_tgd::{ChaseEngine, StTgd};

/// Precision / recall / F1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prf {
    /// |sel ∩ gold| / |sel|.
    pub precision: f64,
    /// |sel ∩ gold| / |gold|.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

impl Prf {
    /// From raw counts. Empty-vs-empty counts as perfect (the selection
    /// made no mistake); empty-vs-nonempty as zero.
    pub fn from_counts(true_pos: usize, selected: usize, gold: usize) -> Prf {
        if selected == 0 && gold == 0 {
            return Prf {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0,
            };
        }
        let precision = if selected == 0 {
            0.0
        } else {
            true_pos as f64 / selected as f64
        };
        let recall = if gold == 0 {
            0.0
        } else {
            true_pos as f64 / gold as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf {
            precision,
            recall,
            f1,
        }
    }
}

/// Mapping-level P/R/F1 of selected candidate indices vs gold indices.
pub fn mapping_prf(selected: &[usize], gold: &[usize]) -> Prf {
    let tp = selected.iter().filter(|c| gold.contains(c)).count();
    Prf::from_counts(tp, selected.len(), gold.len())
}

/// Data-level P/R/F1: exchanged instances compared as pattern multisets.
pub fn data_prf(
    source: &Instance,
    candidates: &[StTgd],
    selected: &[usize],
    gold: &[usize],
) -> Prf {
    // Exchange through the batched engine (merged solution per selection);
    // patterns are invariant under its null renaming.
    let exchange = |idxs: &[usize]| -> Instance {
        let picked: Vec<StTgd> = idxs.iter().map(|&i| candidates[i].clone()).collect();
        ChaseEngine::new(&picked)
            .unwrap_or_else(|e| panic!("data_prf: invalid candidate tgd: {e}"))
            .chase_merged(source)
    };
    let k_sel = exchange(selected);
    let k_gold = exchange(gold);
    let (ms, mg) = (pattern_multiset(&k_sel), pattern_multiset(&k_gold));
    let overlap = multiset_overlap(&ms, &mg);
    let n_sel: usize = ms.values().sum();
    let n_gold: usize = mg.values().sum();
    Prf::from_counts(overlap, n_sel, n_gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_data::{RelId, Schema};
    use cms_tgd::parse_tgd;

    #[test]
    fn mapping_prf_basic() {
        let p = mapping_prf(&[0, 2], &[0, 1]);
        assert!((p.precision - 0.5).abs() < 1e-12);
        assert!((p.recall - 0.5).abs() < 1e-12);
        assert!((p.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_empty_edge_cases() {
        let perfect = mapping_prf(&[1, 2], &[1, 2]);
        assert_eq!(perfect.f1, 1.0);
        let both_empty = mapping_prf(&[], &[]);
        assert_eq!(both_empty.f1, 1.0);
        let nothing_selected = mapping_prf(&[], &[0]);
        assert_eq!(nothing_selected.f1, 0.0);
        assert_eq!(nothing_selected.precision, 0.0);
        let all_wrong = mapping_prf(&[5], &[0]);
        assert_eq!(all_wrong.f1, 0.0);
    }

    #[test]
    fn data_prf_identical_selection_is_perfect() {
        let mut src = Schema::new("s");
        src.add_relation("a", &["x", "y"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x", "z"]);
        let c0 = parse_tgd("a(x, y) -> t(x, e)", &src, &tgt).unwrap();
        let c1 = parse_tgd("a(x, y) -> t(y, x)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(RelId(0), &["p", "q"]);
        i.insert_ground(RelId(0), &["r", "s"]);
        let p = data_prf(&i, &[c0.clone(), c1.clone()], &[0], &[0]);
        assert_eq!(p.f1, 1.0);
        // Different candidate: no pattern overlap.
        let p = data_prf(&i, &[c0, c1], &[1], &[0]);
        assert_eq!(p.f1, 0.0);
    }

    #[test]
    fn data_prf_superset_selection_loses_precision() {
        let mut src = Schema::new("s");
        src.add_relation("a", &["x"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x"]);
        tgt.add_relation("u", &["x"]);
        let good = parse_tgd("a(x) -> t(x)", &src, &tgt).unwrap();
        let extra = parse_tgd("a(x) -> u(x)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(RelId(0), &["v"]);
        let p = data_prf(&i, &[good, extra], &[0, 1], &[0]);
        assert!((p.precision - 0.5).abs() < 1e-12);
        assert!((p.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn data_prf_is_null_renaming_invariant() {
        let mut src = Schema::new("s");
        src.add_relation("a", &["x"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("t", &["x", "k"]);
        // Two structurally equal candidates written separately: their
        // chases use different nulls, but patterns agree.
        let c0 = parse_tgd("a(x) -> t(x, e)", &src, &tgt).unwrap();
        let c1 = parse_tgd("a(y) -> t(y, n)", &src, &tgt).unwrap();
        let mut i = Instance::new();
        i.insert_ground(RelId(0), &["v"]);
        let p = data_prf(&i, &[c0, c1], &[0], &[1]);
        assert_eq!(p.f1, 1.0);
    }
}

//! Attribute correspondences (schema matches).
//!
//! A correspondence asserts that a source attribute "means the same" as a
//! target attribute — the metadata evidence the paper's candidate
//! generation starts from (produced upstream by a schema matcher; perturbed
//! in experiments by the πCorresp noise knob).

use cms_data::{AttrRef, Schema};
use std::fmt;

/// A directed attribute correspondence `source attr → target attr`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Correspondence {
    /// The source-side attribute.
    pub source: AttrRef,
    /// The target-side attribute.
    pub target: AttrRef,
}

impl Correspondence {
    /// Construct a correspondence.
    pub fn new(source: AttrRef, target: AttrRef) -> Correspondence {
        Correspondence { source, target }
    }

    /// Render as `src.attr -> tgt.attr` against the schema pair.
    pub fn display(&self, src: &Schema, tgt: &Schema) -> String {
        format!(
            "{} -> {}",
            src.attr_name(self.source),
            tgt.attr_name(self.target)
        )
    }
}

/// Build a correspondence from relation/attribute names; panics on unknown
/// names (test/example convenience).
pub fn corr(
    src: &Schema,
    src_rel: &str,
    src_attr: &str,
    tgt: &Schema,
    tgt_rel: &str,
    tgt_attr: &str,
) -> Correspondence {
    let resolve = |schema: &Schema, rel: &str, attr: &str| -> AttrRef {
        let rel_id = schema
            .rel_id(rel)
            .unwrap_or_else(|| panic!("unknown relation {rel:?}"));
        let col = schema
            .relation(rel_id)
            .col_of(cms_data::Sym::new(attr))
            .unwrap_or_else(|| panic!("unknown attribute {rel}.{attr}"));
        AttrRef::new(rel_id, col)
    };
    Correspondence::new(
        resolve(src, src_rel, src_attr),
        resolve(tgt, tgt_rel, tgt_attr),
    )
}

impl fmt::Display for Correspondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}.{} -> r{}.{}",
            self.source.rel.0, self.source.col, self.target.rel.0, self.target.col
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_resolves_names() {
        let mut src = Schema::new("s");
        src.add_relation("proj", &["name", "code"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("task", &["pname", "emp"]);
        let c = corr(&src, "proj", "name", &tgt, "task", "pname");
        assert_eq!(c.source.col, 0);
        assert_eq!(c.target.col, 0);
        assert_eq!(c.display(&src, &tgt), "proj.name -> task.pname");
        assert_eq!(c.to_string(), "r0.0 -> r0.0");
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn corr_panics_on_bad_attr() {
        let mut src = Schema::new("s");
        src.add_relation("proj", &["name"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("task", &["pname"]);
        corr(&src, "proj", "nope", &tgt, "task", "pname");
    }
}

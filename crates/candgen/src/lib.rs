//! `cms-candgen` — Clio-style candidate mapping generation.
//!
//! Given a source schema, a target schema, and a set of attribute
//! correspondences (schema matches), this crate produces the candidate set
//! `C` of st tgds the selection problem chooses from:
//!
//! 1. compute *logical relations* — FK-closure join trees — on both sides;
//! 2. for every (source LR, target LR) pair connected by a correspondence,
//!    emit a candidate tgd exporting matched attributes and inventing
//!    existentials for the rest;
//! 3. deduplicate structurally.
//!
//! This replaces the Clio system the paper uses as its candidate generator
//! (see DESIGN.md §5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correspondence;
pub mod generate;
pub mod logical_relation;

pub use correspondence::{corr, Correspondence};
pub use generate::{generate_candidates, CandGenConfig};
pub use logical_relation::{expand, logical_relations, LogicalRelation, LrAtom};

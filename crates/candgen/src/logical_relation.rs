//! Clio-style logical relations: relations closed under foreign-key joins.
//!
//! Clio's mapping generation first "chases" each relation with the schema's
//! referential constraints, producing *logical relations* — join trees that
//! gather semantically connected tuples. A logical relation rooted at `R`
//! contains `R`'s atom plus, transitively, an atom for every relation
//! reachable through outgoing foreign keys, with the FK columns unified.
//!
//! Example: `team(pcode, emp)` with `team.pcode → proj.code` yields the
//! logical relation `team(v0, v1) ⋈ proj(v2, v0, v3)` (joined on `v0`).

use cms_data::{AttrRef, RelId, Schema};
use std::fmt;

/// One atom of a logical relation: a relation and its column variables
/// (variables are indices local to the logical relation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LrAtom {
    /// The relation.
    pub rel: RelId,
    /// Per-column variable indices.
    pub vars: Vec<usize>,
}

/// A join tree of atoms rooted at [`LogicalRelation::root`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogicalRelation {
    /// The root relation the expansion started from.
    pub root: RelId,
    /// Atoms, root first, then FK-joined relations in expansion order.
    pub atoms: Vec<LrAtom>,
    /// Number of distinct variables.
    pub num_vars: usize,
}

impl LogicalRelation {
    /// Variable carrying attribute `attr`, if the attribute's relation
    /// occurs in this logical relation (first occurrence wins when a
    /// relation appears more than once).
    pub fn var_of(&self, attr: AttrRef) -> Option<usize> {
        self.atoms
            .iter()
            .find(|a| a.rel == attr.rel)
            .map(|a| a.vars[attr.col])
    }

    /// All attributes covered, as `(AttrRef, var)` pairs (first occurrence
    /// per relation).
    pub fn covered_attrs(&self) -> Vec<(AttrRef, usize)> {
        let mut seen: Vec<RelId> = Vec::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            if seen.contains(&atom.rel) {
                continue;
            }
            seen.push(atom.rel);
            for (col, &var) in atom.vars.iter().enumerate() {
                out.push((AttrRef::new(atom.rel, col), var));
            }
        }
        out
    }
}

impl fmt::Display for LogicalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "r{}(", a.rel.0)?;
            for (j, v) in a.vars.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "v{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Compute the logical relation rooted at `root`, expanding outgoing
/// foreign keys breadth-first. Each relation is joined in at most once
/// (cycle guard); expansion depth is bounded by `max_atoms`.
pub fn expand(schema: &Schema, root: RelId, max_atoms: usize) -> LogicalRelation {
    let mut atoms: Vec<LrAtom> = Vec::new();
    let mut num_vars = 0usize;
    let mut present: Vec<RelId> = Vec::new();

    let fresh_atom = |rel: RelId, num_vars: &mut usize| -> LrAtom {
        let arity = schema.relation(rel).arity();
        let vars: Vec<usize> = (*num_vars..*num_vars + arity).collect();
        *num_vars += arity;
        LrAtom { rel, vars }
    };

    atoms.push(fresh_atom(root, &mut num_vars));
    present.push(root);

    let mut frontier = 0usize;
    while frontier < atoms.len() && atoms.len() < max_atoms {
        let current = atoms[frontier].clone();
        for fk in &schema.relation(current.rel).fks {
            if present.contains(&fk.target) || atoms.len() >= max_atoms {
                continue; // cycle / self-reference guard
            }
            let mut joined = fresh_atom(fk.target, &mut num_vars);
            // Unify: referenced columns take the referencing columns' vars.
            for (&from_col, &to_col) in fk.cols.iter().zip(fk.target_cols.iter()) {
                joined.vars[to_col] = current.vars[from_col];
            }
            present.push(fk.target);
            atoms.push(joined);
        }
        frontier += 1;
    }

    LogicalRelation {
        root,
        atoms,
        num_vars,
    }
}

/// All logical relations of a schema (one per root relation).
pub fn logical_relations(schema: &Schema, max_atoms: usize) -> Vec<LogicalRelation> {
    schema
        .rel_ids()
        .map(|r| expand(schema, r, max_atoms))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_data::ForeignKey;

    /// proj(name, code, leader) key code; team(pcode, emp) fk pcode→code.
    fn schema() -> Schema {
        let mut s = Schema::new("src");
        let proj = s.add_relation_full("proj", &["name", "code", "leader"], &[1], Vec::new());
        s.add_relation_full(
            "team",
            &["pcode", "emp"],
            &[],
            vec![ForeignKey {
                cols: vec![0],
                target: proj,
                target_cols: vec![1],
            }],
        );
        s
    }

    #[test]
    fn leaf_relation_expands_to_itself() {
        let s = schema();
        let proj = s.rel_id("proj").unwrap();
        let lr = expand(&s, proj, 8);
        assert_eq!(lr.atoms.len(), 1);
        assert_eq!(lr.num_vars, 3);
    }

    #[test]
    fn fk_joins_in_referenced_relation() {
        let s = schema();
        let team = s.rel_id("team").unwrap();
        let proj = s.rel_id("proj").unwrap();
        let lr = expand(&s, team, 8);
        assert_eq!(lr.atoms.len(), 2);
        assert_eq!(lr.atoms[0].rel, team);
        assert_eq!(lr.atoms[1].rel, proj);
        // team.pcode and proj.code share a variable.
        assert_eq!(lr.atoms[0].vars[0], lr.atoms[1].vars[1]);
        // Other proj vars are fresh.
        assert_ne!(lr.atoms[1].vars[0], lr.atoms[0].vars[0]);
        assert_eq!(lr.var_of(AttrRef::new(proj, 1)), Some(lr.atoms[0].vars[0]));
    }

    #[test]
    fn covered_attrs_lists_all_columns_once() {
        let s = schema();
        let team = s.rel_id("team").unwrap();
        let lr = expand(&s, team, 8);
        assert_eq!(lr.covered_attrs().len(), 5); // 2 + 3 columns
    }

    #[test]
    fn cycles_do_not_loop() {
        let mut s = Schema::new("cyclic");
        let a = s.add_relation("a", &["x", "y"]);
        let b = s.add_relation_full(
            "b",
            &["p", "q"],
            &[],
            vec![ForeignKey {
                cols: vec![0],
                target: a,
                target_cols: vec![0],
            }],
        );
        s.add_fk(
            a,
            ForeignKey {
                cols: vec![1],
                target: b,
                target_cols: vec![1],
            },
        );
        let lr = expand(&s, a, 8);
        assert_eq!(lr.atoms.len(), 2);
        let lr_b = expand(&s, b, 8);
        assert_eq!(lr_b.atoms.len(), 2);
    }

    #[test]
    fn max_atoms_bounds_expansion() {
        let mut s = Schema::new("chain");
        let mut prev = s.add_relation("r0", &["k"]);
        for i in 1..6 {
            let cur = s.add_relation_full(
                &format!("r{i}"),
                &["k", "fk"],
                &[],
                vec![ForeignKey {
                    cols: vec![1],
                    target: prev,
                    target_cols: vec![0],
                }],
            );
            prev = cur;
        }
        let lr = expand(&s, prev, 3);
        assert_eq!(lr.atoms.len(), 3);
    }

    #[test]
    fn all_logical_relations() {
        let s = schema();
        let lrs = logical_relations(&s, 8);
        assert_eq!(lrs.len(), 2);
    }

    #[test]
    fn display_renders_join() {
        let s = schema();
        let team = s.rel_id("team").unwrap();
        let lr = expand(&s, team, 8);
        let text = lr.to_string();
        assert!(text.contains("⋈"), "{text}");
    }
}

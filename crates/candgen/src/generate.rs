//! Candidate st-tgd generation from correspondences (Clio-style).
//!
//! For every pair of a source logical relation and a target logical
//! relation connected by at least one correspondence, emit candidate
//! st tgds:
//!
//! * body = the source join tree;
//! * head = the target join tree, where each target attribute covered by a
//!   correspondence (whose source attribute the source side covers) reuses
//!   the corresponding source variable, and every other target variable is
//!   existential.
//!
//! When several correspondences *conflict* — map different source
//! attributes onto the same target attribute — Clio proposes alternative
//! mappings rather than picking one arbitrarily. We do the same: one
//! candidate per combination of conflicting choices, capped at
//! [`CandGenConfig::max_alternatives_per_pair`] (combinations are
//! enumerated in correspondence order, so the first candidate is the
//! "first match wins" mapping).
//!
//! The emitted set is deduplicated structurally. This mirrors how Clio
//! turns matches into mappings and guarantees — as the paper's scenarios
//! require — that the gold mapping is generated whenever the true
//! correspondences are present (`MG ⊆ C`).

use crate::correspondence::Correspondence;
use crate::logical_relation::{logical_relations, LogicalRelation};
use cms_data::{FxHashMap, Schema};
use cms_tgd::{dedup_tgds, Atom, StTgd, Term, VarId};

/// Tuning knobs for candidate generation.
#[derive(Clone, Debug)]
pub struct CandGenConfig {
    /// Maximum atoms per logical relation (bounds FK-closure size).
    pub max_join_atoms: usize,
    /// Maximum alternative candidates emitted per (source LR, target LR)
    /// pair when correspondences conflict.
    pub max_alternatives_per_pair: usize,
}

impl Default for CandGenConfig {
    fn default() -> CandGenConfig {
        CandGenConfig {
            max_join_atoms: 6,
            max_alternatives_per_pair: 8,
        }
    }
}

/// Generate the candidate set `C` for a schema pair and correspondence set.
pub fn generate_candidates(
    source: &Schema,
    target: &Schema,
    correspondences: &[Correspondence],
    config: &CandGenConfig,
) -> Vec<StTgd> {
    let src_lrs = logical_relations(source, config.max_join_atoms);
    let tgt_lrs = logical_relations(target, config.max_join_atoms);

    let mut raw: Vec<StTgd> = Vec::new();
    for src_lr in &src_lrs {
        for tgt_lr in &tgt_lrs {
            raw.extend(candidates_for_pair(src_lr, tgt_lr, correspondences, config));
        }
    }
    let (deduped, _) = dedup_tgds(raw);
    deduped
}

/// Build the candidates for one (source LR, target LR) pair; empty if no
/// correspondence connects them.
fn candidates_for_pair(
    src_lr: &LogicalRelation,
    tgt_lr: &LogicalRelation,
    correspondences: &[Correspondence],
    config: &CandGenConfig,
) -> Vec<StTgd> {
    // For each target variable, the distinct source variables offered by
    // applicable correspondences, in first-seen order.
    let mut options: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    let mut tgt_var_order: Vec<usize> = Vec::new();
    for c in correspondences {
        let (Some(src_var), Some(tgt_var)) = (src_lr.var_of(c.source), tgt_lr.var_of(c.target))
        else {
            continue;
        };
        let entry = options.entry(tgt_var).or_insert_with(|| {
            tgt_var_order.push(tgt_var);
            Vec::new()
        });
        if !entry.contains(&src_var) {
            entry.push(src_var);
        }
    }
    if options.is_empty() {
        return Vec::new();
    }

    // Enumerate combinations of choices (mixed-radix counter over the
    // conflicting variables), capped.
    let radices: Vec<usize> = tgt_var_order.iter().map(|v| options[v].len()).collect();
    let total: usize = radices.iter().product();
    let emit = total.min(config.max_alternatives_per_pair.max(1));

    let mut out = Vec::with_capacity(emit);
    for combo in 0..emit {
        let mut binding: FxHashMap<usize, usize> = FxHashMap::default(); // tgt var -> src var
        let mut rest = combo;
        for (v, radix) in tgt_var_order.iter().zip(radices.iter()) {
            let pick = rest % radix;
            rest /= radix;
            binding.insert(*v, options[v][pick]);
        }
        out.push(build_tgd(src_lr, tgt_lr, &binding));
    }
    out
}

/// Materialize one tgd for a fixed target-variable binding.
fn build_tgd(
    src_lr: &LogicalRelation,
    tgt_lr: &LogicalRelation,
    head_binding: &FxHashMap<usize, usize>,
) -> StTgd {
    // Source variables keep their LR indices [0, src_lr.num_vars); target
    // variables not bound by a correspondence become existentials numbered
    // from src_lr.num_vars, shared across head atoms (they are LR-unified).
    let mut exist_map: FxHashMap<usize, u32> = FxHashMap::default();
    let mut next_var = src_lr.num_vars as u32;
    let mut var_names: Vec<String> = (0..src_lr.num_vars).map(|i| format!("x{i}")).collect();

    let body: Vec<Atom> = src_lr
        .atoms
        .iter()
        .map(|a| {
            Atom::new(
                a.rel,
                a.vars.iter().map(|&v| Term::Var(VarId(v as u32))).collect(),
            )
        })
        .collect();

    let head: Vec<Atom> = tgt_lr
        .atoms
        .iter()
        .map(|a| {
            Atom::new(
                a.rel,
                a.vars
                    .iter()
                    .map(|&tv| match head_binding.get(&tv) {
                        Some(&sv) => Term::Var(VarId(sv as u32)),
                        None => {
                            let id = *exist_map.entry(tv).or_insert_with(|| {
                                let id = next_var;
                                next_var += 1;
                                var_names.push(format!("e{}", id as usize - src_lr.num_vars));
                                id
                            });
                            Term::Var(VarId(id))
                        }
                    })
                    .collect(),
            )
        })
        .collect();

    StTgd::new(body, head, var_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::corr;
    use cms_data::ForeignKey;
    use cms_tgd::{canonical_key, parse_tgd};

    /// Source: proj(name, code, leader) / team(pcode→code, emp).
    /// Target: task(pname, emp, oid) / org(oid, firm), task.oid → org.oid.
    fn schemas() -> (Schema, Schema) {
        let mut src = Schema::new("s");
        let proj = src.add_relation_full("proj", &["name", "code", "leader"], &[1], Vec::new());
        src.add_relation_full(
            "team",
            &["pcode", "emp"],
            &[],
            vec![ForeignKey {
                cols: vec![0],
                target: proj,
                target_cols: vec![1],
            }],
        );
        let mut tgt = Schema::new("t");
        let org = tgt.add_relation_full("org", &["oid", "firm"], &[0], Vec::new());
        tgt.add_relation_full(
            "task",
            &["pname", "emp", "oid"],
            &[],
            vec![ForeignKey {
                cols: vec![2],
                target: org,
                target_cols: vec![0],
            }],
        );
        (src, tgt)
    }

    #[test]
    fn generates_projection_and_join_candidates() {
        let (src, tgt) = schemas();
        let corrs = vec![
            corr(&src, "proj", "name", &tgt, "task", "pname"),
            corr(&src, "team", "emp", &tgt, "task", "emp"),
        ];
        let cands = generate_candidates(&src, &tgt, &corrs, &CandGenConfig::default());
        // Source LRs: {proj}, {team ⋈ proj}. Target LRs: {org}, {task ⋈ org}.
        // Pairs with a correspondence: (proj, task⋈org), (team⋈proj, task⋈org).
        assert_eq!(cands.len(), 2);

        // The θ3-style candidate must be among them.
        let theta3 = parse_tgd(
            "team(c, e) & proj(x, c, l) -> task(x, e, o) & org(o, f)",
            &src,
            &tgt,
        )
        .unwrap();
        assert!(
            cands
                .iter()
                .any(|c| canonical_key(c) == canonical_key(&theta3)),
            "θ3-style candidate missing: {:?}",
            cands
                .iter()
                .map(|c| c.display(&src, &tgt).to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_correspondences_yields_no_candidates() {
        let (src, tgt) = schemas();
        let cands = generate_candidates(&src, &tgt, &[], &CandGenConfig::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn existentials_are_shared_across_head_atoms() {
        let (src, tgt) = schemas();
        let corrs = vec![corr(&src, "proj", "name", &tgt, "task", "pname")];
        let cands = generate_candidates(&src, &tgt, &corrs, &CandGenConfig::default());
        // Candidate proj → task ⋈ org: task.oid and org.oid must share one
        // existential variable.
        let c = cands
            .iter()
            .find(|c| c.head.len() == 2 && c.body.len() == 1)
            .expect("proj → task⋈org candidate");
        let task_atom = c.head.iter().find(|a| a.arity() == 3).unwrap();
        let org_atom = c.head.iter().find(|a| a.arity() == 2).unwrap();
        assert_eq!(task_atom.terms[2], org_atom.terms[0]);
        let exists = c.existential_vars();
        assert!(exists.len() >= 2); // oid + firm (+ emp)
    }

    #[test]
    fn conflicting_correspondences_yield_alternatives() {
        let (src, tgt) = schemas();
        let corrs = vec![
            corr(&src, "proj", "name", &tgt, "task", "pname"),
            corr(&src, "proj", "leader", &tgt, "task", "pname"),
        ];
        let cands = generate_candidates(&src, &tgt, &corrs, &CandGenConfig::default());
        // Each connected pair now yields two alternatives (name vs leader
        // exported to pname); dedup keeps them distinct.
        let name_variant =
            parse_tgd("proj(x, c, l) -> task(x, e, o) & org(o, f)", &src, &tgt).unwrap();
        let leader_variant =
            parse_tgd("proj(x, c, l) -> task(l, e, o) & org(o, f)", &src, &tgt).unwrap();
        let keys: Vec<String> = cands.iter().map(canonical_key).collect();
        assert!(
            keys.contains(&canonical_key(&name_variant)),
            "name variant missing"
        );
        assert!(
            keys.contains(&canonical_key(&leader_variant)),
            "leader variant missing"
        );
        for c in &cands {
            assert!(c.validate(&src, &tgt).is_ok());
        }
    }

    #[test]
    fn alternatives_are_capped() {
        let (src, tgt) = schemas();
        // Three conflicting options on pname × two on emp = 6 combos;
        // cap at 2 keeps the first two.
        let corrs = vec![
            corr(&src, "proj", "name", &tgt, "task", "pname"),
            corr(&src, "proj", "leader", &tgt, "task", "pname"),
            corr(&src, "proj", "code", &tgt, "task", "pname"),
            corr(&src, "team", "emp", &tgt, "task", "emp"),
            corr(&src, "team", "pcode", &tgt, "task", "emp"),
        ];
        let capped = generate_candidates(
            &src,
            &tgt,
            &corrs,
            &CandGenConfig {
                max_alternatives_per_pair: 2,
                ..CandGenConfig::default()
            },
        );
        let full = generate_candidates(&src, &tgt, &corrs, &CandGenConfig::default());
        assert!(
            capped.len() < full.len(),
            "{} !< {}",
            capped.len(),
            full.len()
        );
    }

    #[test]
    fn first_candidate_is_first_match_wins() {
        let (src, tgt) = schemas();
        let corrs = vec![
            corr(&src, "proj", "name", &tgt, "task", "pname"),
            corr(&src, "proj", "leader", &tgt, "task", "pname"),
        ];
        // With the cap at 1 the behaviour degenerates to the old
        // "first applicable correspondence wins".
        let cands = generate_candidates(
            &src,
            &tgt,
            &corrs,
            &CandGenConfig {
                max_alternatives_per_pair: 1,
                ..CandGenConfig::default()
            },
        );
        let name_variant =
            parse_tgd("proj(x, c, l) -> task(x, e, o) & org(o, f)", &src, &tgt).unwrap();
        assert!(cands
            .iter()
            .any(|c| canonical_key(c) == canonical_key(&name_variant)));
        let leader_variant =
            parse_tgd("proj(x, c, l) -> task(l, e, o) & org(o, f)", &src, &tgt).unwrap();
        assert!(!cands
            .iter()
            .any(|c| canonical_key(c) == canonical_key(&leader_variant)));
    }

    #[test]
    fn dedup_collapses_identical_pairs() {
        let (src, tgt) = schemas();
        // Duplicate correspondence entries must not duplicate candidates.
        let c1 = corr(&src, "proj", "name", &tgt, "task", "pname");
        let cands = generate_candidates(&src, &tgt, &[c1, c1], &CandGenConfig::default());
        let keys: Vec<String> = cands.iter().map(canonical_key).collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(keys.len(), deduped.len());
    }

    #[test]
    fn all_candidates_validate() {
        let (src, tgt) = schemas();
        let corrs = vec![
            corr(&src, "proj", "name", &tgt, "task", "pname"),
            corr(&src, "team", "emp", &tgt, "task", "emp"),
            corr(&src, "proj", "leader", &tgt, "org", "firm"),
        ];
        let cands = generate_candidates(&src, &tgt, &corrs, &CandGenConfig::default());
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.validate(&src, &tgt).is_ok(), "{}", c.display(&src, &tgt));
        }
    }
}

//! Property-based tests for candidate generation.

use cms_candgen::{expand, generate_candidates, CandGenConfig, Correspondence};
use cms_data::{AttrRef, ForeignKey, Instance, RelId, Schema};
use cms_tgd::{chase_one, chase_one_canonical, ChaseEngine};
use proptest::prelude::*;

/// A random schema: `n` relations of arity 2–4, each (except the first)
/// optionally carrying a foreign key to an earlier relation.
fn arb_schema(prefix: &'static str) -> impl Strategy<Value = Schema> {
    (
        2usize..=4,
        prop::collection::vec((2usize..=4, prop::option::of(0usize..3)), 1..4),
    )
        .prop_map(move |(_, rels)| {
            let mut schema = Schema::new(prefix);
            for (i, (arity, fk_to)) in rels.iter().enumerate() {
                let attrs: Vec<String> = (0..*arity).map(|a| format!("{prefix}{i}_a{a}")).collect();
                let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let fks = match fk_to {
                    Some(t) if *t < i => vec![ForeignKey {
                        cols: vec![0],
                        target: RelId(*t as u32),
                        target_cols: vec![0],
                    }],
                    _ => Vec::new(),
                };
                schema.add_relation_full(&format!("{prefix}{i}"), &attr_refs, &[0], fks);
            }
            schema
        })
}

/// Random correspondences between two schemas, by index.
fn arb_corrs() -> impl Strategy<Value = Vec<(usize, usize, usize, usize)>> {
    prop::collection::vec((0usize..4, 0usize..4, 0usize..4, 0usize..4), 0..8)
}

fn resolve(
    raw: &[(usize, usize, usize, usize)],
    src: &Schema,
    tgt: &Schema,
) -> Vec<Correspondence> {
    raw.iter()
        .filter_map(|&(sr, sc, tr, tc)| {
            if sr >= src.len() || tr >= tgt.len() {
                return None;
            }
            let s_rel = RelId(sr as u32);
            let t_rel = RelId(tr as u32);
            if sc >= src.relation(s_rel).arity() || tc >= tgt.relation(t_rel).arity() {
                return None;
            }
            Some(Correspondence::new(
                AttrRef::new(s_rel, sc),
                AttrRef::new(t_rel, tc),
            ))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated candidate validates, is structurally unique, and
    /// exports at least one source variable.
    #[test]
    fn candidates_are_wellformed(src in arb_schema("s"), tgt in arb_schema("t"), raw in arb_corrs()) {
        let corrs = resolve(&raw, &src, &tgt);
        let cands = generate_candidates(&src, &tgt, &corrs, &CandGenConfig::default());
        let mut keys: Vec<String> = cands.iter().map(cms_tgd::canonical_key).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), n, "structural duplicates emitted");
        for c in &cands {
            prop_assert!(c.validate(&src, &tgt).is_ok());
            // At least one head variable is universal (a correspondence
            // fired), otherwise the pair shouldn't have been emitted.
            let exist = c.existential_vars();
            let head_vars: usize = c.head.iter().flat_map(|a| a.vars()).count();
            prop_assert!(head_vars > exist.len() || head_vars == 0 ||
                c.head.iter().flat_map(|a| a.vars()).any(|v| !exist.contains(&v)),
                "candidate exports nothing");
        }
        // No correspondences ⇒ no candidates.
        if corrs.is_empty() {
            prop_assert!(cands.is_empty());
        }
    }

    /// Raising the alternatives cap never *removes* candidates.
    #[test]
    fn alternatives_monotone_in_cap(src in arb_schema("s"), tgt in arb_schema("t"), raw in arb_corrs()) {
        let corrs = resolve(&raw, &src, &tgt);
        let lo = generate_candidates(&src, &tgt, &corrs,
            &CandGenConfig { max_alternatives_per_pair: 1, ..CandGenConfig::default() });
        let hi = generate_candidates(&src, &tgt, &corrs,
            &CandGenConfig { max_alternatives_per_pair: 16, ..CandGenConfig::default() });
        prop_assert!(hi.len() >= lo.len());
        let hi_keys: Vec<String> = hi.iter().map(cms_tgd::canonical_key).collect();
        for c in &lo {
            prop_assert!(hi_keys.contains(&cms_tgd::canonical_key(c)));
        }
    }

    /// Candgen-emitted candidate sets chase identically through the
    /// batched engine and the per-tgd naive chase: same tuple patterns per
    /// candidate (null renaming invariant), bit-identical to the
    /// canonical-order reference. This is the workload the shared
    /// body-prefix trie exists for — every (source LR, target LR) pairing
    /// reuses the same body, so the engine must dedup without changing a
    /// single solution.
    #[test]
    fn generated_candidates_chase_identically_batched(
        src in arb_schema("s"),
        tgt in arb_schema("t"),
        raw in arb_corrs(),
        rows in prop::collection::vec((0usize..4, 0u32..6, 0u32..6, 0u32..6, 0u32..6), 0..24),
    ) {
        let corrs = resolve(&raw, &src, &tgt);
        let cands = generate_candidates(&src, &tgt, &corrs, &CandGenConfig::default());
        // Populate the source schema with pooled values so FK joins hit.
        let mut inst = Instance::new();
        for (r, a, b, c, d) in rows {
            if r >= src.len() {
                continue;
            }
            let rel = RelId(r as u32);
            let arity = src.relation(rel).arity();
            let vals = [a, b, c, d];
            let row: Vec<String> = (0..arity).map(|i| format!("p{}", vals[i])).collect();
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            inst.insert_ground(rel, &refs);
        }
        let engine = ChaseEngine::new(&cands).expect("candgen output is chase-valid");
        let solutions = engine.chase_all(&inst);
        prop_assert_eq!(solutions.len(), cands.len());
        for (k, tgd) in solutions.iter().zip(&cands) {
            let naive = chase_one(&inst, tgd);
            prop_assert_eq!(
                cms_data::pattern_multiset(k),
                cms_data::pattern_multiset(&naive)
            );
            let canonical = chase_one_canonical(&inst, tgd).expect("valid tgd");
            prop_assert_eq!(k.to_tuples(), canonical.to_tuples());
        }
    }

    /// Logical-relation expansion: FK-unified variables really are shared,
    /// and the number of atoms respects the cap.
    #[test]
    fn expansion_respects_fks(schema in arb_schema("s"), cap in 1usize..5) {
        for root in schema.rel_ids() {
            let lr = expand(&schema, root, cap);
            prop_assert!(lr.atoms.len() <= cap);
            prop_assert_eq!(lr.atoms[0].rel, root);
            // All variable indices are < num_vars.
            for atom in &lr.atoms {
                for &v in &atom.vars {
                    prop_assert!(v < lr.num_vars);
                }
            }
        }
    }
}

//! Property-based tests for the PSL engine: grounding semantics and the
//! convexity/feasibility contracts of ADMM MAP inference.

use cms_psl::{
    ground_rule, AdmmConfig, AdmmSolver, ConstraintKind, Database, GroundAtom, GroundConstraint,
    GroundPotential, GroundSink, LinExpr, RuleBuilder, VarRegistry, Vocabulary,
};
use proptest::prelude::*;

/// Random linear hinge potentials over `n` variables.
fn arb_potentials(n: usize) -> impl Strategy<Value = Vec<GroundPotential>> {
    let term = (0..n, -2i32..=2).prop_map(|(v, c)| (v, c as f64));
    let potential = (
        prop::collection::vec(term, 1..4),
        -2i32..=2,
        1u32..4,
        any::<bool>(),
    )
        .prop_map(|(terms, constant, w, squared)| {
            let mut expr = LinExpr::constant(constant as f64 * 0.5);
            for (v, c) in terms {
                if c != 0.0 {
                    expr.add_term(v, c);
                }
            }
            expr.normalize();
            GroundPotential {
                expr,
                weight: w as f64,
                squared,
                origin: String::new(),
            }
        });
    prop::collection::vec(potential, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ADMM's solution is a global minimum of the (convex) objective up to
    /// tolerance: no sampled point in the box does meaningfully better.
    #[test]
    fn admm_beats_random_points(potentials in arb_potentials(5), probes in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 5), 20)) {
        let solver = AdmmSolver::new(&potentials, &[], 5);
        let sol = solver.solve(&AdmmConfig::default());
        for probe in &probes {
            let probe_obj = solver.objective(probe);
            prop_assert!(
                sol.objective <= probe_obj + 1e-3,
                "ADMM {} worse than probe {}",
                sol.objective,
                probe_obj
            );
        }
    }

    /// With hard box-interior constraints, the solution satisfies them
    /// within tolerance.
    #[test]
    fn admm_respects_constraints(potentials in arb_potentials(4), cap in 0.1f64..0.9) {
        // Constrain y0 ≤ cap and y1 = cap.
        let mut le = LinExpr::constant(-cap);
        le.add_term(0, 1.0);
        let mut eq = LinExpr::constant(-cap);
        eq.add_term(1, 1.0);
        let constraints = vec![
            GroundConstraint { expr: le, kind: ConstraintKind::LeqZero, origin: String::new() },
            GroundConstraint { expr: eq, kind: ConstraintKind::EqZero, origin: String::new() },
        ];
        let solver = AdmmSolver::new(&potentials, &constraints, 4);
        let sol = solver.solve(&AdmmConfig::default());
        prop_assert!(sol.values[0] <= cap + 5e-3, "y0 = {} > cap {}", sol.values[0], cap);
        prop_assert!((sol.values[1] - cap).abs() < 5e-3, "y1 = {} != {}", sol.values[1], cap);
    }

    /// Solutions always stay in the [0,1] box and the reported objective
    /// matches re-evaluation.
    #[test]
    fn admm_box_and_objective_consistency(potentials in arb_potentials(6)) {
        let solver = AdmmSolver::new(&potentials, &[], 6);
        let sol = solver.solve(&AdmmConfig::default());
        for &v in &sol.values {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let re = solver.objective(&sol.values);
        prop_assert!((re - sol.objective).abs() < 1e-9);
    }
}

/// Grounding semantics: the compiled hinge equals the Łukasiewicz distance
/// to satisfaction computed directly, over a grid of truth assignments.
#[test]
fn grounding_matches_lukasiewicz_semantics() {
    let mut vocab = Vocabulary::new();
    let a = vocab.closed("a", 1);
    let b = vocab.open("b", 1);
    let c = vocab.open("c", 1);
    for &av in &[0.0, 0.3, 0.7, 1.0] {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(a, &["x"]), av);
        db.target(GroundAtom::from_strs(b, &["x"]));
        db.target(GroundAtom::from_strs(c, &["x"]));
        // a(X) & b(X) -> c(X), weight 1.
        let rule = RuleBuilder::new("r")
            .body(a, vec![cms_psl::rvar("X")])
            .body(b, vec![cms_psl::rvar("X")])
            .head(c, vec![cms_psl::rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();

        for bv in [0.0, 0.25, 0.5, 1.0] {
            for cv in [0.0, 0.5, 1.0] {
                // Direct Łukasiewicz: I(body) = max(0, av + bv − 1);
                // distance = max(0, I(body) − cv).
                let body_truth = (av + bv - 1.0).max(0.0);
                let expected = (body_truth - cv).max(0.0);
                let mut y = vec![0.0; registry.len()];
                if let Some(i) = registry.lookup(&GroundAtom::from_strs(b, &["x"])) {
                    y[i] = bv;
                }
                if let Some(i) = registry.lookup(&GroundAtom::from_strs(c, &["x"])) {
                    y[i] = cv;
                }
                let total: f64 = sink.potentials.iter().map(|p| p.value(&y)).sum();
                assert!(
                    (total - expected).abs() < 1e-9,
                    "a={av} b={bv} c={cv}: got {total}, want {expected}"
                );
            }
        }
    }
}

/// Hard rules ground to constraints whose satisfaction coincides with the
/// Łukasiewicz satisfaction of the clause.
#[test]
fn hard_rule_constraint_semantics() {
    let mut vocab = Vocabulary::new();
    let p = vocab.closed("p", 1);
    let q = vocab.open("q", 1);
    let mut db = Database::new();
    db.observe(GroundAtom::from_strs(p, &["x"]), 1.0);
    db.target(GroundAtom::from_strs(q, &["x"]));
    let rule = RuleBuilder::new("hard")
        .body(p, vec![cms_psl::rvar("X")])
        .head(q, vec![cms_psl::rvar("X")])
        .build();
    let mut registry = VarRegistry::new();
    let mut sink = GroundSink::default();
    ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
    assert_eq!(sink.constraints.len(), 1);
    let qi = registry.lookup(&GroundAtom::from_strs(q, &["x"])).unwrap();
    let mut y = vec![0.0; registry.len()];
    // q = 0 violates p → q by 1.
    assert!((sink.constraints[0].violation(&y) - 1.0).abs() < 1e-9);
    y[qi] = 1.0;
    assert_eq!(sink.constraints[0].violation(&y), 0.0);
}

// ---------------------------------------------------------------------------
// Plan-compiled grounding vs the naive reference grounder.
// ---------------------------------------------------------------------------

mod grounding_equivalence {
    use super::*;
    use cms_psl::ground_rule_naive;
    use cms_psl::rule::{Literal, LogicalRule, RAtom, RTerm};
    use cms_psl::PredId;

    /// Predicate conventions for the random worlds: preds 0 (arity 1) and
    /// 1 (arity 2) are observed; preds 2 (arity 1) and 3 (arity 2) hold
    /// target atoms.
    const ARITIES: [usize; 4] = [1, 2, 1, 2];

    fn sym_pool(i: u32) -> String {
        format!("s{i}")
    }

    fn arb_db() -> impl Strategy<Value = Database> {
        (
            prop::collection::vec((0u32..6, 0u32..=10), 0..12), // pred0 obs
            prop::collection::vec((0u32..6, 0u32..6, 0u32..=10), 0..16), // pred1 obs
            prop::collection::vec(0u32..6, 0..8),               // pred2 targets
            prop::collection::vec((0u32..6, 0u32..6), 0..10),   // pred3 targets
        )
            .prop_map(|(p0, p1, t2, t3)| {
                let mut db = Database::new();
                for (a, v) in p0 {
                    let atom = GroundAtom::from_strs(PredId(0), &[&sym_pool(a)]);
                    if db.observed_value(&atom).is_none() {
                        db.observe(atom, f64::from(v) / 10.0);
                    }
                }
                for (a, b, v) in p1 {
                    let atom = GroundAtom::from_strs(PredId(1), &[&sym_pool(a), &sym_pool(b)]);
                    if db.observed_value(&atom).is_none() {
                        db.observe(atom, f64::from(v) / 10.0);
                    }
                }
                for a in t2 {
                    db.target(GroundAtom::from_strs(PredId(2), &[&sym_pool(a)]));
                }
                for (a, b) in t3 {
                    db.target(GroundAtom::from_strs(
                        PredId(3),
                        &[&sym_pool(a), &sym_pool(b)],
                    ));
                }
                db
            })
    }

    /// A positive body literal over the observed predicates: terms are
    /// (is_var, var_id or sym).
    fn arb_body_literal() -> impl Strategy<Value = (u32, Vec<(bool, u32)>)> {
        (0u32..2, prop::collection::vec((any::<bool>(), 0u32..4), 2)).prop_map(|(p, mut terms)| {
            terms.truncate(ARITIES[p as usize]);
            (p, terms)
        })
    }

    /// Assemble a safe rule: head/negated variables only reuse variables
    /// that some positive body literal anchors.
    fn arb_rule() -> impl Strategy<Value = LogicalRule> {
        (
            prop::collection::vec(arb_body_literal(), 1..4),
            (2u32..4, prop::collection::vec(0u32..8, 2)), // head pred + term picks
            any::<bool>(),                                // head present?
            any::<bool>(),                                // weighted?
            0u32..=8,                                     // weight
            any::<bool>(),                                // squared
        )
            .prop_map(
                |(body, (head_pred, head_picks), with_head, weighted, w, squared)| {
                    let var_name = |i: u32| format!("V{}", i % 4);
                    let mut anchored: Vec<String> = Vec::new();
                    let mut literals: Vec<Literal> = Vec::new();
                    for (p, terms) in body {
                        let args: Vec<RTerm> = terms
                            .iter()
                            .map(|&(is_var, x)| {
                                if is_var {
                                    let name = var_name(x);
                                    if !anchored.contains(&name) {
                                        anchored.push(name.clone());
                                    }
                                    RTerm::Var(name)
                                } else {
                                    cms_psl::rconst(&sym_pool(x % 6))
                                }
                            })
                            .collect();
                        literals.push(Literal {
                            atom: RAtom {
                                pred: PredId(p),
                                args,
                            },
                            negated: false,
                        });
                    }
                    let head = if with_head {
                        let arity = ARITIES[head_pred as usize];
                        let args: Vec<RTerm> = head_picks
                            .iter()
                            .take(arity)
                            .map(|&pick| {
                                if anchored.is_empty() || pick >= 6 {
                                    cms_psl::rconst(&sym_pool(pick % 6))
                                } else {
                                    RTerm::Var(anchored[pick as usize % anchored.len()].clone())
                                }
                            })
                            .collect();
                        vec![Literal {
                            atom: RAtom {
                                pred: PredId(head_pred),
                                args,
                            },
                            negated: false,
                        }]
                    } else {
                        Vec::new()
                    };
                    LogicalRule {
                        name: "rand".into(),
                        body: literals,
                        head,
                        weight: weighted.then_some(f64::from(w) * 0.5),
                        squared,
                    }
                },
            )
    }

    /// Canonical (registry-independent) description of a sink.
    fn canonical(sink: &GroundSink, registry: &VarRegistry) -> Vec<String> {
        let desc = |expr: &LinExpr| {
            let mut terms: Vec<String> = expr
                .terms
                .iter()
                .map(|&(v, c)| format!("{c:.9}*{}", registry.atom(v)))
                .collect();
            terms.sort();
            format!("c={:.9} {}", expr.constant, terms.join(" + "))
        };
        let mut out: Vec<String> = Vec::new();
        for p in &sink.potentials {
            out.push(format!(
                "P w={:.9} sq={} {}",
                p.weight,
                p.squared,
                desc(&p.expr)
            ));
        }
        for c in &sink.constraints {
            out.push(format!("C {:?} {}", c.kind, desc(&c.expr)));
        }
        out.sort();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The plan-compiled, index-probing grounder emits exactly the
        /// ground program the naive nested-loop reference emits, for any
        /// database and any safe rule.
        #[test]
        fn plan_grounding_equals_naive_grounding(db in arb_db(), rules in prop::collection::vec(arb_rule(), 1..4)) {
            for rule in &rules {
                prop_assert!(rule.is_safe(), "generator must build safe rules");
                let mut reg_plan = VarRegistry::new();
                let mut sink_plan = GroundSink::default();
                let plan_stats = ground_rule(rule, &db, &mut reg_plan, &mut sink_plan).unwrap();
                let mut reg_naive = VarRegistry::new();
                let mut sink_naive = GroundSink::default();
                let naive_stats = ground_rule_naive(rule, &db, &mut reg_naive, &mut sink_naive).unwrap();
                prop_assert_eq!(plan_stats.substitutions, naive_stats.substitutions);
                prop_assert_eq!(plan_stats.potentials, naive_stats.potentials);
                prop_assert_eq!(plan_stats.constraints, naive_stats.constraints);
                prop_assert_eq!(plan_stats.pruned, naive_stats.pruned);
                prop_assert!((plan_stats.constant_loss - naive_stats.constant_loss).abs() < 1e-9);
                prop_assert_eq!(canonical(&sink_plan, &reg_plan), canonical(&sink_naive, &reg_naive));
            }
        }
    }

    // -----------------------------------------------------------------
    // Delta regrounding vs full grounding over random mutation sequences.
    // -----------------------------------------------------------------

    /// One random database mutation (see `apply_op`): kind, predicate
    /// coin, two symbol picks, one value pick.
    type MutOp = (u8, bool, u32, u32, u32);

    fn arb_ops() -> impl Strategy<Value = Vec<MutOp>> {
        prop::collection::vec((0u8..5, any::<bool>(), 0u32..6, 0u32..6, 0u32..=10), 1..16)
    }

    /// Apply one mutation to the program's database: (re-)observations of
    /// the closed preds 0/1 (adds, value changes, and exact no-ops), new
    /// targets on the open preds 2/3, and retractions of pooled atoms.
    fn apply_op(program: &mut cms_psl::Program, op: MutOp) {
        let (kind, wide, a, b, v) = op;
        let value = f64::from(v) / 10.0;
        match kind {
            0 => {
                // Observe (new, changed, or unchanged) on pred 0 or 1.
                let atom = if wide {
                    GroundAtom::from_strs(PredId(1), &[&sym_pool(a), &sym_pool(b)])
                } else {
                    GroundAtom::from_strs(PredId(0), &[&sym_pool(a)])
                };
                program.db.observe(atom, value);
            }
            1 => {
                // Re-observe an existing pooled atom (forces Changed/no-op
                // entries on atoms the prior grounding actually used).
                let pred = PredId(u32::from(wide));
                let pool = program.db.atoms_of(pred).to_vec();
                if !pool.is_empty() {
                    let atom = pool[a as usize % pool.len()].clone();
                    program.db.observe(atom, value);
                }
            }
            2 => {
                let atom = if wide {
                    GroundAtom::from_strs(PredId(3), &[&sym_pool(a), &sym_pool(b)])
                } else {
                    GroundAtom::from_strs(PredId(2), &[&sym_pool(a)])
                };
                program.db.target(atom);
            }
            3 => {
                // Retract a pooled observed atom, if any.
                let pred = PredId(u32::from(wide));
                let pool = program.db.atoms_of(pred).to_vec();
                if !pool.is_empty() {
                    let atom = pool[a as usize % pool.len()].clone();
                    program.db.retract(&atom);
                }
            }
            _ => {
                // Retract a pooled target atom, if any.
                let pred = PredId(2 + u32::from(wide));
                let pool = program.db.atoms_of(pred).to_vec();
                if !pool.is_empty() {
                    let atom = pool[a as usize % pool.len()].clone();
                    program.db.retract(&atom);
                }
            }
        }
    }

    fn vocab_for_arities() -> cms_psl::Vocabulary {
        let mut vocab = Vocabulary::new();
        vocab.closed("p0", ARITIES[0]);
        vocab.closed("p1", ARITIES[1]);
        vocab.open("q2", ARITIES[2]);
        vocab.open("q3", ARITIES[3]);
        vocab
    }

    // -----------------------------------------------------------------
    // Sharded parallel ADMM vs the serial solve.
    // -----------------------------------------------------------------

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The sharded, multi-threaded consensus step is **bit-identical**
        /// to the single-threaded solve on random ground programs: same
        /// iterates, same iteration count, same objective bits — for cold
        /// solves and for warm solves resumed from consensus + duals. The
        /// shard structure depends only on the problem (here forced to be
        /// several shards via a tiny `shard_slots`), never on `threads`.
        #[test]
        fn sharded_solve_is_bit_identical_across_thread_counts(
            db in arb_db(),
            rules in prop::collection::vec(arb_rule(), 1..4),
        ) {
            let mut program = cms_psl::Program::new(vocab_for_arities());
            program.db = db;
            for rule in rules {
                program.add_rule(rule);
            }
            let ground = program.ground().unwrap();
            let cfg = AdmmConfig {
                threads: 1,
                parallel_threshold: 0, // engage the parallel path at any size
                shard_slots: 4,        // force several consensus shards
                max_iterations: 500,
                ..AdmmConfig::default()
            };
            let (base, base_duals) = ground.solve_warm_dual(&cfg, &[], None);
            let (base_resumed, _) =
                ground.solve_warm_dual(&cfg, &base.admm.values, Some(&base_duals));
            for threads in [2usize, 4, 7] {
                let tcfg = AdmmConfig { threads, ..cfg.clone() };
                let sol = ground.solve(&tcfg);
                prop_assert_eq!(sol.admm.iterations, base.admm.iterations,
                    "iteration count diverged at threads={}", threads);
                prop_assert_eq!(sol.admm.objective.to_bits(), base.admm.objective.to_bits(),
                    "objective bits diverged at threads={}", threads);
                for (v, (a, b)) in base
                    .admm
                    .values
                    .iter()
                    .zip(sol.admm.values.iter())
                    .enumerate()
                {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "iterate bits diverged at threads={} var={}", threads, v);
                }
                // Warm resume (consensus + duals) must be identical too.
                let (resumed, _) =
                    ground.solve_warm_dual(&tcfg, &base.admm.values, Some(&base_duals));
                prop_assert_eq!(resumed.admm.iterations, base_resumed.admm.iterations,
                    "warm iteration count diverged at threads={}", threads);
                for (v, (a, b)) in base_resumed
                    .admm
                    .values
                    .iter()
                    .zip(resumed.admm.values.iter())
                    .enumerate()
                {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "warm iterate bits diverged at threads={} var={}", threads, v);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `reground(delta)` after any mutation sequence describes exactly
        /// the HL-MRF a fresh `ground()` builds — chained: each step
        /// regrounds the *previous* increment, never a fresh baseline.
        #[test]
        fn reground_equals_full_ground_over_mutation_sequences(
            db in arb_db(),
            rules in prop::collection::vec(arb_rule(), 1..4),
            ops in arb_ops(),
        ) {
            let mut program = cms_psl::Program::new(vocab_for_arities());
            program.db = db;
            for rule in rules {
                program.add_rule(rule);
            }
            let mut prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            for op in ops {
                apply_op(&mut program, op);
                let delta = program.db.take_delta();
                prior = program.reground_owned(prior, &delta).unwrap();
                let fresh = program.ground().unwrap();
                prop_assert_eq!(prior.canonical_terms(), fresh.canonical_terms());
                prop_assert!((prior.constant_loss - fresh.constant_loss).abs() < 1e-9,
                    "constant loss {} vs {}", prior.constant_loss, fresh.constant_loss);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A whole mutation batch drained as ONE coalesced delta (adds,
        /// changes, retractions — including injected cancelling pairs that
        /// must net out before the regrounder sees them) regrounds to
        /// exactly the HL-MRF a fresh `ground()` builds, chained across
        /// batches over programs with logical *and* arithmetic rules.
        #[test]
        fn batched_reground_equals_full_ground_over_mutation_batches(
            db in arb_db(),
            rules in prop::collection::vec(arb_rule(), 1..4),
            arith in arb_arith_rule(),
            ops in arb_ops(),
            batch in 2usize..6,
            cancel in any::<bool>(),
        ) {
            let mut program = cms_psl::Program::new(vocab_for_arities());
            program.db = db;
            for rule in rules {
                program.add_rule(rule);
            }
            program.add_arith_rule(arith);
            let mut prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            for chunk in ops.chunks(batch) {
                for &op in chunk {
                    apply_op(&mut program, op);
                }
                if cancel {
                    // Fold an a→b→a round-trip into the batch: two raw
                    // entries with zero net effect.
                    let pool = program.db.atoms_of(PredId(0)).to_vec();
                    if let Some(atom) = pool.first() {
                        let old = program.db.observed_value(atom).unwrap();
                        program.db.observe(atom.clone(), old + 0.05);
                        program.db.observe(atom.clone(), old);
                    }
                }
                let delta = program.db.take_delta();
                prop_assert!(delta.len() <= delta.raw_entries(),
                    "coalescing can only shrink: {} net vs {} raw",
                    delta.len(), delta.raw_entries());
                prior = program.reground_owned(prior, &delta).unwrap();
                let fresh = program.ground().unwrap();
                prop_assert_eq!(prior.canonical_terms(), fresh.canonical_terms());
                prop_assert!((prior.constant_loss - fresh.constant_loss).abs() < 1e-9,
                    "constant loss {} vs {}", prior.constant_loss, fresh.constant_loss);
            }
        }
    }

    // -----------------------------------------------------------------
    // Arithmetic splice tables: random arith rules + mutation sequences.
    // -----------------------------------------------------------------

    /// A random arithmetic term: a handful of closed-predicate atoms plus
    /// at most one open-predicate atom, so every product stays linear in
    /// the MAP variables regardless of the database.
    fn arb_arith_term() -> impl Strategy<Value = cms_psl::ArithTerm> {
        use cms_psl::ArithTerm;
        let closed_atom = (0u32..2, prop::collection::vec((any::<bool>(), 0u32..4), 2));
        let open_atom = (2u32..4, prop::collection::vec((any::<bool>(), 0u32..4), 2));
        (
            -20i32..=20,
            prop::collection::vec(closed_atom, 0..=2),
            prop::option::of(open_atom),
        )
            .prop_map(|(coef, mut closed, open)| {
                if closed.is_empty() && open.is_none() {
                    // A term needs at least one atom; fall back to p0(s0).
                    closed.push((0, vec![(false, 0), (false, 0)]));
                }
                let var_name = |i: u32| format!("V{}", i % 3);
                let atom = |(p, picks): (u32, Vec<(bool, u32)>)| {
                    let args: Vec<RTerm> = picks
                        .into_iter()
                        .take(ARITIES[p as usize])
                        .map(|(is_var, x)| {
                            if is_var {
                                RTerm::Var(var_name(x))
                            } else {
                                cms_psl::rconst(&sym_pool(x % 6))
                            }
                        })
                        .collect();
                    RAtom {
                        pred: PredId(p),
                        args,
                    }
                };
                let atoms: Vec<RAtom> =
                    closed.into_iter().map(atom).chain(open.map(atom)).collect();
                ArithTerm {
                    coef: f64::from(coef) / 10.0,
                    atoms,
                }
            })
    }

    /// A random, *valid* arithmetic rule: the summation variable (if any)
    /// is picked from the variables the terms actually use, so the rule
    /// passes the builder's validation by construction.
    fn arb_arith_rule() -> impl Strategy<Value = cms_psl::ArithRule> {
        use cms_psl::{ArithRule, Comparison};
        (
            prop::collection::vec(arb_arith_term(), 1..=2),
            -10i32..=10,                 // constant ×0.1
            0u32..3,                     // comparison
            prop::option::of(0u32..=8),  // weight ×0.5
            any::<bool>(),               // squared
            prop::option::of(0usize..4), // sum-var pick
        )
            .prop_map(|(terms, constant, cmp, weight, squared, sum_pick)| {
                let used: Vec<String> = {
                    let mut v: Vec<String> = Vec::new();
                    for t in terms.iter().flat_map(|t| &t.atoms) {
                        for a in &t.args {
                            if let RTerm::Var(name) = a {
                                if !v.contains(name) {
                                    v.push(name.clone());
                                }
                            }
                        }
                    }
                    v
                };
                let sum_vars = match sum_pick {
                    Some(i) if !used.is_empty() => vec![used[i % used.len()].clone()],
                    _ => Vec::new(),
                };
                ArithRule {
                    name: "rand-arith".into(),
                    terms,
                    constant: f64::from(constant) / 10.0,
                    comparison: match cmp {
                        0 => Comparison::LeqZero,
                        1 => Comparison::EqZero,
                        _ => Comparison::GeqZero,
                    },
                    weight: weight.map(|w| f64::from(w) * 0.5),
                    squared,
                    sum_vars,
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The arithmetic splice tables: regrounding through any mutation
        /// sequence over programs with random arithmetic rules (value
        /// re-weights re-fold single bindings, pool mutations diff the
        /// binding set) stays equivalent to a fresh grounding, chained
        /// across the whole sequence.
        #[test]
        fn arith_reground_equals_full_ground_over_mutation_sequences(
            db in arb_db(),
            rule in arb_rule(),
            arith in prop::collection::vec(arb_arith_rule(), 1..=2),
            ops in arb_ops(),
        ) {
            let mut program = cms_psl::Program::new(vocab_for_arities());
            program.db = db;
            program.add_rule(rule);
            for r in arith {
                program.add_arith_rule(r);
            }
            let mut prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            let mut spliced_total = 0usize;
            for op in ops {
                apply_op(&mut program, op);
                let delta = program.db.take_delta();
                prior = program.reground_owned(prior, &delta).unwrap();
                let fresh = program.ground().unwrap();
                prop_assert_eq!(prior.canonical_terms(), fresh.canonical_terms());
                prop_assert!((prior.constant_loss - fresh.constant_loss).abs() < 1e-9,
                    "constant loss {} vs {}", prior.constant_loss, fresh.constant_loss);
                spliced_total += prior.total_stats().arith_bindings_spliced;
            }
            // Not every random rule grounds bindings, but the counter must
            // never be touched by full grounds.
            prop_assert_eq!(program.ground().unwrap().total_stats().arith_bindings_spliced, 0);
            let _ = spliced_total;
        }
    }

    // -----------------------------------------------------------------
    // Delta-guard invariants: stale, foreign, and double-drained deltas
    // are rejected with `StateMismatch`; the documented fallback (a
    // fresh ground) matches a from-scratch grounding and re-arms the
    // incremental path.
    // -----------------------------------------------------------------

    use cms_psl::RegroundError;

    fn guard_program(db: Database, rules: &[LogicalRule]) -> cms_psl::Program {
        let mut program = cms_psl::Program::new(vocab_for_arities());
        program.db = db;
        for rule in rules {
            program.add_rule(rule.clone());
        }
        program
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Applying the same delta twice is a state mismatch the second
        /// time: the first splice advanced the prior's stamp past the
        /// delta's base generation.
        #[test]
        fn double_drained_delta_is_rejected(
            db in arb_db(),
            rules in prop::collection::vec(arb_rule(), 1..4),
            ops in arb_ops(),
        ) {
            let mut program = guard_program(db, &rules);
            let prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            for op in ops {
                apply_op(&mut program, op);
            }
            let delta = program.db.take_delta();
            if delta.is_empty() {
                // prop_assume: no generation span to guard (shim has no prop_assume)
                return;
            }
            let next = program.reground_owned(prior, &delta).unwrap();
            let err = program.reground_owned(next, &delta).unwrap_err();
            prop_assert!(
                matches!(err, RegroundError::StateMismatch { .. }),
                "double-drained delta must be a StateMismatch, got {}", err
            );
        }

        /// A delta that starts *past* the prior's stamp (an intermediate
        /// drain was lost) is rejected instead of spliced over the gap.
        #[test]
        fn delta_skipping_a_generation_is_rejected(
            db in arb_db(),
            rules in prop::collection::vec(arb_rule(), 1..4),
            ops in arb_ops(),
        ) {
            let mut program = guard_program(db, &rules);
            let prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            for op in ops {
                apply_op(&mut program, op);
            }
            let lost = program.db.take_delta();
            if lost.is_empty() {
                // prop_assume: no generation span to guard (shim has no prop_assume)
                return;
            }
            // One more mutation after the lost drain: its delta's base
            // generation is newer than the prior's stamp.
            program
                .db
                .observe(GroundAtom::from_strs(PredId(0), &["guard-new"]), 0.5);
            let late = program.db.take_delta();
            let err = program.reground_owned(prior, &late).unwrap_err();
            prop_assert!(
                matches!(err, RegroundError::StateMismatch { .. }),
                "generation-skipping delta must be a StateMismatch, got {}", err
            );
        }

        /// A delta drained from a *different* database — even a clone with
        /// identical content and generation numbers — is rejected on
        /// database identity, never spliced.
        #[test]
        fn foreign_database_delta_is_rejected(
            db in arb_db(),
            rules in prop::collection::vec(arb_rule(), 1..4),
        ) {
            let mut program = guard_program(db.clone(), &rules);
            let prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            // An identical twin: same content and generation history, but
            // cloning mints a fresh database identity.
            let mut twin = guard_program(db, &rules);
            let _ = twin.ground().unwrap();
            let _ = twin.db.take_delta();
            twin.db
                .observe(GroundAtom::from_strs(PredId(0), &["twin-only"]), 0.4);
            let foreign = twin.db.take_delta();
            let err = program.reground_owned(prior, &foreign).unwrap_err();
            prop_assert!(
                matches!(err, RegroundError::StateMismatch { .. }),
                "foreign delta must be a StateMismatch, got {}", err
            );
        }

        /// The ladder's answer to a guard rejection — a fresh ground —
        /// describes exactly the HL-MRF a from-scratch build describes,
        /// and its new stamp re-arms the incremental path.
        #[test]
        fn fallback_fresh_ground_equals_from_scratch(
            db in arb_db(),
            rules in prop::collection::vec(arb_rule(), 1..4),
            ops in arb_ops(),
        ) {
            let mut program = guard_program(db, &rules);
            let prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            for op in ops {
                apply_op(&mut program, op);
            }
            let delta = program.db.take_delta();
            if delta.is_empty() {
                // prop_assume: no generation span to guard (shim has no prop_assume)
                return;
            }
            let next = program.reground_owned(prior, &delta).unwrap();
            // A stale re-apply trips the guard …
            prop_assert!(program.reground_owned(next, &delta).is_err());
            // … and the fallback fresh ground equals a from-scratch build
            // of the same (mutated) database.
            let fallback = program.ground().unwrap();
            let reference = guard_program(program.db.clone(), &rules).ground().unwrap();
            prop_assert_eq!(fallback.canonical_terms(), reference.canonical_terms());
            prop_assert!(
                (fallback.constant_loss - reference.constant_loss).abs() < 1e-9,
                "constant loss {} vs {}", fallback.constant_loss, reference.constant_loss
            );
            // The fallback is freshly stamped: the next delta splices.
            program
                .db
                .observe(GroundAtom::from_strs(PredId(0), &["after-fallback"]), 0.7);
            let tail = program.db.take_delta();
            prop_assert!(program.reground_owned(fallback, &tail).is_ok());
        }
    }
}

//! The logical rule language.
//!
//! A PSL logical rule has the form
//!
//! ```text
//! w : B1 ∧ ... ∧ Bn  →  H1 ∨ ... ∨ Hm     (optionally squared)
//! ```
//!
//! where each literal is a possibly-negated atom with variables or
//! constants. Under the Łukasiewicz relaxation, the rule's *distance to
//! satisfaction* for a grounding is
//!
//! ```text
//! d = max(0, 1 − Σ_i (1 − t(Bi)) − Σ_j t(Hj))
//! ```
//!
//! with `t(¬a) = 1 − t(a)`. Weighted rules contribute `w · d^p` potentials;
//! unweighted (hard) rules contribute the constraint `d = 0`, i.e. the
//! linear constraint `1 − Σ(1−t(Bi)) − Σ t(Hj) ≤ 0`.
//!
//! **Safety**: every variable must occur in at least one *positive body*
//! literal; grounding joins over those. An empty head is allowed (the rule
//! then penalizes the body conjunction); an empty body is not.

use crate::predicate::PredId;
use cms_data::Sym;
use std::fmt;

/// A term in a rule atom: named variable or constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RTerm {
    /// A named variable, bound during grounding.
    Var(String),
    /// A constant.
    Const(Sym),
}

/// Shorthand for a rule variable.
pub fn rvar(name: &str) -> RTerm {
    RTerm::Var(name.to_owned())
}

/// Shorthand for a rule constant.
pub fn rconst(value: &str) -> RTerm {
    RTerm::Const(Sym::new(value))
}

/// An atom with (possibly) variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RAtom {
    /// The predicate.
    pub pred: PredId,
    /// Argument terms.
    pub args: Vec<RTerm>,
}

/// A possibly negated atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Literal {
    /// The atom.
    pub atom: RAtom,
    /// True iff the literal is `¬atom`.
    pub negated: bool,
}

/// A logical rule (weighted potential template or hard constraint).
#[derive(Clone, Debug)]
pub struct LogicalRule {
    /// Name for diagnostics and grounding statistics.
    pub name: String,
    /// Conjunctive body.
    pub body: Vec<Literal>,
    /// Disjunctive head (may be empty: rule penalizes its body).
    pub head: Vec<Literal>,
    /// `Some(w)` for a weighted rule, `None` for a hard rule.
    pub weight: Option<f64>,
    /// True to square the hinge (only meaningful for weighted rules).
    pub squared: bool,
}

impl LogicalRule {
    /// All variable names in the rule, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for lit in self.body.iter().chain(self.head.iter()) {
            for t in &lit.atom.args {
                if let RTerm::Var(name) = t {
                    if !seen.contains(&name.as_str()) {
                        seen.push(name);
                    }
                }
            }
        }
        seen
    }

    /// Variables bound by positive body literals.
    pub fn anchored_variables(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for lit in self.body.iter().filter(|l| !l.negated) {
            for t in &lit.atom.args {
                if let RTerm::Var(name) = t {
                    if !seen.contains(&name.as_str()) {
                        seen.push(name);
                    }
                }
            }
        }
        seen
    }

    /// True iff every variable is anchored (safe to ground).
    pub fn is_safe(&self) -> bool {
        let anchored = self.anchored_variables();
        self.variables().iter().all(|v| anchored.contains(v))
    }
}

/// Fluent builder for [`LogicalRule`].
#[derive(Debug)]
pub struct RuleBuilder {
    rule: LogicalRule,
}

impl RuleBuilder {
    /// Start a rule with the given diagnostic name.
    pub fn new(name: &str) -> RuleBuilder {
        RuleBuilder {
            rule: LogicalRule {
                name: name.to_owned(),
                body: Vec::new(),
                head: Vec::new(),
                weight: None,
                squared: false,
            },
        }
    }

    /// Add a positive body literal.
    pub fn body(mut self, pred: PredId, args: Vec<RTerm>) -> RuleBuilder {
        self.rule.body.push(Literal {
            atom: RAtom { pred, args },
            negated: false,
        });
        self
    }

    /// Add a negated body literal.
    pub fn body_neg(mut self, pred: PredId, args: Vec<RTerm>) -> RuleBuilder {
        self.rule.body.push(Literal {
            atom: RAtom { pred, args },
            negated: true,
        });
        self
    }

    /// Add a positive head literal.
    pub fn head(mut self, pred: PredId, args: Vec<RTerm>) -> RuleBuilder {
        self.rule.head.push(Literal {
            atom: RAtom { pred, args },
            negated: false,
        });
        self
    }

    /// Add a negated head literal.
    pub fn head_neg(mut self, pred: PredId, args: Vec<RTerm>) -> RuleBuilder {
        self.rule.head.push(Literal {
            atom: RAtom { pred, args },
            negated: true,
        });
        self
    }

    /// Make the rule weighted with a linear hinge.
    pub fn weight(mut self, w: f64) -> RuleBuilder {
        assert!(w >= 0.0, "rule weight must be non-negative");
        self.rule.weight = Some(w);
        self
    }

    /// Square the hinge (call after [`RuleBuilder::weight`]).
    pub fn squared(mut self) -> RuleBuilder {
        self.rule.squared = true;
        self
    }

    /// Finish. Hard rule if no weight was set.
    ///
    /// # Panics
    /// Panics if the rule has an empty body or is unsafe.
    pub fn build(self) -> LogicalRule {
        assert!(
            !self.rule.body.is_empty(),
            "rule {:?} has an empty body",
            self.rule.name
        );
        assert!(
            self.rule.is_safe(),
            "rule {:?} is unsafe: some variable is not bound by a positive body literal",
            self.rule.name
        );
        self.rule
    }
}

impl fmt::Display for LogicalRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.weight {
            Some(w) => write!(f, "{w} : ")?,
            None => write!(f, "hard : ")?,
        }
        let lit = |f: &mut fmt::Formatter<'_>, l: &Literal| -> fmt::Result {
            if l.negated {
                write!(f, "!")?;
            }
            write!(f, "p{}(", l.atom.pred.0)?;
            for (i, t) in l.atom.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                match t {
                    RTerm::Var(v) => write!(f, "{v}")?,
                    RTerm::Const(c) => write!(f, "'{c}'")?,
                }
            }
            write!(f, ")")
        };
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            lit(f, l)?;
        }
        write!(f, " -> ")?;
        if self.head.is_empty() {
            write!(f, "false")?;
        }
        for (i, l) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            lit(f, l)?;
        }
        if self.squared {
            write!(f, " ^2")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let covers = PredId(0);
        let in_map = PredId(1);
        let explained = PredId(2);
        let r = RuleBuilder::new("r1")
            .body(covers, vec![rvar("C"), rvar("T")])
            .body(in_map, vec![rvar("C")])
            .head(explained, vec![rvar("T")])
            .weight(2.0)
            .build();
        assert_eq!(r.to_string(), "2 : p0(C,T) & p1(C) -> p2(T)");
        assert_eq!(r.variables(), vec!["C", "T"]);
        assert!(r.is_safe());
    }

    #[test]
    fn empty_head_rule_displays_false() {
        let r = RuleBuilder::new("penalty")
            .body(PredId(0), vec![rvar("X")])
            .weight(1.0)
            .build();
        assert_eq!(r.to_string(), "1 : p0(X) -> false");
    }

    #[test]
    fn unsafe_rule_detected() {
        // Variable Y appears only in the head.
        let r = LogicalRule {
            name: "bad".into(),
            body: vec![Literal {
                atom: RAtom {
                    pred: PredId(0),
                    args: vec![rvar("X")],
                },
                negated: false,
            }],
            head: vec![Literal {
                atom: RAtom {
                    pred: PredId(1),
                    args: vec![rvar("Y")],
                },
                negated: false,
            }],
            weight: Some(1.0),
            squared: false,
        };
        assert!(!r.is_safe());
    }

    #[test]
    fn negated_body_does_not_anchor() {
        let r = LogicalRule {
            name: "neg".into(),
            body: vec![Literal {
                atom: RAtom {
                    pred: PredId(0),
                    args: vec![rvar("X")],
                },
                negated: true,
            }],
            head: vec![],
            weight: Some(1.0),
            squared: false,
        };
        assert!(!r.is_safe());
    }

    #[test]
    #[should_panic(expected = "unsafe")]
    fn builder_rejects_unsafe() {
        RuleBuilder::new("bad")
            .body(PredId(0), vec![rvar("X")])
            .head(PredId(1), vec![rvar("Y")])
            .weight(1.0)
            .build();
    }

    #[test]
    fn constants_in_rules() {
        let r = RuleBuilder::new("c")
            .body(PredId(0), vec![rvar("X"), rconst("fixed")])
            .head(PredId(1), vec![rvar("X")])
            .build();
        assert_eq!(r.to_string(), "hard : p0(X,'fixed') -> p1(X)");
    }
}

//! Ground atoms: a predicate applied to constant arguments.

use crate::predicate::PredId;
use cms_data::Sym;
use std::fmt;

/// A ground atom `p(c1, ..., cn)`. Arguments are interned symbols.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GroundAtom {
    /// The predicate.
    pub pred: PredId,
    /// Constant arguments.
    pub args: Vec<Sym>,
}

impl GroundAtom {
    /// Construct a ground atom.
    pub fn new(pred: PredId, args: Vec<Sym>) -> GroundAtom {
        GroundAtom { pred, args }
    }

    /// Construct from string arguments (interning them).
    pub fn from_strs(pred: PredId, args: &[&str]) -> GroundAtom {
        GroundAtom {
            pred,
            args: args.iter().map(|a| Sym::new(a)).collect(),
        }
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}(", self.pred.0)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_display() {
        let a = GroundAtom::from_strs(PredId(0), &["t1"]);
        let b = GroundAtom::from_strs(PredId(0), &["t1"]);
        let c = GroundAtom::from_strs(PredId(0), &["t2"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "p0(t1)");
    }
}

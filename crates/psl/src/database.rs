//! The database of a PSL program: observed atom truths and target atoms.
//!
//! Besides the per-predicate candidate pools the grounder joins over, the
//! database maintains a lazy **argument-position index**
//! `(pred, arg position, symbol) → positions in the pool`. The join-plan
//! executor ([`crate::grounding`]) probes it instead of scanning whole
//! pools once a literal has at least one bound argument. The index is built
//! on first use and invalidated by [`Database::observe`] /
//! [`Database::target`]; reads go through an `RwLock` so parallel grounding
//! workers can share it.

use crate::atom::GroundAtom;
use crate::predicate::{PredId, Vocabulary};
use cms_data::{FxHashMap, FxHashSet, Sym};
use std::sync::{RwLock, RwLockReadGuard};

/// Posting lists of the argument-position index.
#[derive(Debug, Default)]
pub(crate) struct AtomIndex {
    posting: FxHashMap<(PredId, u32, Sym), Vec<u32>>,
    /// Distinct symbols per `(pred, arg position)` — the planner's
    /// average-selectivity estimate for joins on not-yet-known symbols.
    distinct: FxHashMap<(PredId, u32), usize>,
    empty: Vec<u32>,
}

impl AtomIndex {
    /// Pool positions (into [`Database::atoms_of`]) of atoms of `pred`
    /// whose argument `pos` is `sym`, in pool order.
    pub(crate) fn postings(&self, pred: PredId, pos: usize, sym: Sym) -> &[u32] {
        self.posting
            .get(&(pred, pos as u32, sym))
            .unwrap_or(&self.empty)
    }

    /// Number of distinct symbols occurring at `(pred, pos)`.
    pub(crate) fn distinct(&self, pred: PredId, pos: usize) -> usize {
        self.distinct.get(&(pred, pos as u32)).copied().unwrap_or(0)
    }
}

/// Observed truths in `[0,1]` plus the set of atoms to infer.
#[derive(Debug, Default)]
pub struct Database {
    observations: FxHashMap<GroundAtom, f64>,
    targets: FxHashSet<GroundAtom>,
    /// Observed atoms grouped per predicate, for grounding joins.
    by_pred: FxHashMap<PredId, Vec<GroundAtom>>,
    /// Lazy argument-position index; `None` after any mutation.
    index: RwLock<Option<AtomIndex>>,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            observations: self.observations.clone(),
            targets: self.targets.clone(),
            by_pred: self.by_pred.clone(),
            // The clone rebuilds its index on first use.
            index: RwLock::new(None),
        }
    }
}

/// How an atom resolves during grounding.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Resolved {
    /// Observed (or closed-world default) truth value.
    Observed(f64),
    /// A target atom: inferred by MAP; identified later by variable index.
    Target,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Record an observation. Values are clamped to `[0,1]`.
    ///
    /// # Panics
    /// Panics if the atom was declared a target.
    pub fn observe(&mut self, atom: GroundAtom, value: f64) {
        assert!(
            !self.targets.contains(&atom),
            "atom {atom} is already a target"
        );
        let clamped = value.clamp(0.0, 1.0);
        if self.observations.insert(atom.clone(), clamped).is_none() {
            self.by_pred.entry(atom.pred).or_default().push(atom);
            self.invalidate_index();
        }
    }

    /// Declare an atom as a MAP target (a free variable of inference).
    ///
    /// # Panics
    /// Panics if the atom was observed.
    pub fn target(&mut self, atom: GroundAtom) {
        assert!(
            !self.observations.contains_key(&atom),
            "atom {atom} is already observed"
        );
        if self.targets.insert(atom.clone()) {
            self.by_pred.entry(atom.pred).or_default().push(atom);
            self.invalidate_index();
        }
    }

    /// Drop the argument-position index (called on every pool mutation).
    fn invalidate_index(&mut self) {
        *self.index.get_mut().expect("database index lock poisoned") = None;
    }

    /// Build the argument-position index if absent.
    pub fn ensure_index(&self) {
        let mut guard = self.index.write().expect("database index lock poisoned");
        if guard.is_none() {
            let mut idx = AtomIndex::default();
            for (&pred, pool) in &self.by_pred {
                for (i, atom) in pool.iter().enumerate() {
                    for (pos, &sym) in atom.args.iter().enumerate() {
                        let posting = idx.posting.entry((pred, pos as u32, sym)).or_default();
                        if posting.is_empty() {
                            *idx.distinct.entry((pred, pos as u32)).or_default() += 1;
                        }
                        posting.push(i as u32);
                    }
                }
            }
            *guard = Some(idx);
        }
    }

    /// Read access to the argument-position index, building it if needed.
    /// The guard must be dropped before any `&mut self` call.
    pub(crate) fn index(&self) -> RwLockReadGuard<'_, Option<AtomIndex>> {
        loop {
            let guard = self.index.read().expect("database index lock poisoned");
            if guard.is_some() {
                return guard;
            }
            drop(guard);
            self.ensure_index();
        }
    }

    /// Number of known atoms of `pred` whose argument `pos` equals `sym` —
    /// the index cardinality the join planner consults. Builds the index on
    /// first use; exposed for observability and invalidation tests.
    pub fn count_matching(&self, pred: PredId, pos: usize, sym: Sym) -> usize {
        self.index()
            .as_ref()
            .expect("index just ensured")
            .postings(pred, pos, sym)
            .len()
    }

    /// Resolve an atom: target, observed value, or closed-world default 0.
    ///
    /// Unobserved atoms of *open* predicates that were never declared
    /// targets also resolve to 0 — the same pragmatic default PSL's lazy
    /// grounding applies.
    pub fn resolve(&self, atom: &GroundAtom) -> Resolved {
        if self.targets.contains(atom) {
            Resolved::Target
        } else {
            Resolved::Observed(self.observations.get(atom).copied().unwrap_or(0.0))
        }
    }

    /// Observed truth of an atom (None if target or unknown).
    pub fn observed_value(&self, atom: &GroundAtom) -> Option<f64> {
        self.observations.get(atom).copied()
    }

    /// All known atoms (observed or target) of a predicate, in insertion
    /// order. This is the candidate pool the grounder joins over.
    pub fn atoms_of(&self, pred: PredId) -> &[GroundAtom] {
        self.by_pred.get(&pred).map_or(&[], Vec::as_slice)
    }

    /// Iterate all target atoms (order unspecified).
    pub fn targets(&self) -> impl Iterator<Item = &GroundAtom> {
        self.targets.iter()
    }

    /// Number of observations.
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Number of target atoms.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// Sanity-check all atoms against a vocabulary (arity agreement).
    pub fn validate(&self, vocab: &Vocabulary) -> Result<(), String> {
        for atom in self.observations.keys().chain(self.targets.iter()) {
            let pred = vocab.predicate(atom.pred);
            if pred.arity != atom.args.len() {
                return Err(format!(
                    "atom {atom} has {} args but {} expects {}",
                    atom.args.len(),
                    pred.name,
                    pred.arity
                ));
            }
            if pred.closed && self.targets.contains(atom) {
                return Err(format!(
                    "target atom {atom} belongs to closed predicate {}",
                    pred.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_and_resolve() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.7);
        assert_eq!(db.resolve(&a), Resolved::Observed(0.7));
        assert_eq!(db.observed_value(&a), Some(0.7));
        let unknown = GroundAtom::from_strs(PredId(0), &["y"]);
        assert_eq!(db.resolve(&unknown), Resolved::Observed(0.0));
    }

    #[test]
    fn observation_clamps() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 1.5);
        assert_eq!(db.observed_value(&a), Some(1.0));
    }

    #[test]
    fn re_observation_overwrites_without_duplicating_pool() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.3);
        db.observe(a.clone(), 0.9);
        assert_eq!(db.observed_value(&a), Some(0.9));
        assert_eq!(db.atoms_of(PredId(0)).len(), 1);
    }

    #[test]
    fn targets_resolve_as_targets() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(1), &["m"]);
        db.target(a.clone());
        assert_eq!(db.resolve(&a), Resolved::Target);
        assert_eq!(db.num_targets(), 1);
    }

    #[test]
    #[should_panic(expected = "already observed")]
    fn target_after_observe_panics() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.5);
        db.target(a);
    }

    #[test]
    #[should_panic(expected = "already a target")]
    fn observe_after_target_panics() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.target(a.clone());
        db.observe(a, 0.5);
    }

    #[test]
    fn index_postings_match_pools() {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(PredId(0), &["a", "x"]), 1.0);
        db.observe(GroundAtom::from_strs(PredId(0), &["a", "y"]), 1.0);
        db.observe(GroundAtom::from_strs(PredId(0), &["b", "x"]), 1.0);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 2);
        assert_eq!(db.count_matching(PredId(0), 1, Sym::new("x")), 2);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("zzz")), 0);
    }

    #[test]
    fn index_invalidated_by_observe_and_target() {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(PredId(0), &["a"]), 1.0);
        // Force the index to exist, then mutate through both entry points.
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 1);
        db.observe(GroundAtom::from_strs(PredId(0), &["a2"]), 0.5);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a2")), 1);
        db.target(GroundAtom::from_strs(PredId(1), &["a"]));
        assert_eq!(db.count_matching(PredId(1), 0, Sym::new("a")), 1);
        // Re-observing an existing atom only updates the value; the pool is
        // unchanged either way, so counts stay put.
        db.observe(GroundAtom::from_strs(PredId(0), &["a"]), 0.1);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 1);
    }

    #[test]
    fn cloned_database_rebuilds_its_own_index() {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(PredId(0), &["a"]), 1.0);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 1);
        let mut copy = db.clone();
        copy.observe(GroundAtom::from_strs(PredId(0), &["b"]), 1.0);
        assert_eq!(copy.count_matching(PredId(0), 0, Sym::new("b")), 1);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("b")), 0);
    }

    #[test]
    fn validate_checks_arity_and_closedness() {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);

        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["a", "b"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["a"]));
        assert!(db.validate(&vocab).is_ok());

        let mut bad_arity = db.clone();
        bad_arity.observe(GroundAtom::from_strs(covers, &["only-one"]), 1.0);
        assert!(bad_arity.validate(&vocab).is_err());

        let mut bad_closed = db;
        bad_closed.target(GroundAtom::from_strs(covers, &["x", "y"]));
        assert!(bad_closed.validate(&vocab).is_err());
    }
}

//! The database of a PSL program: observed atom truths and target atoms.

use crate::atom::GroundAtom;
use crate::predicate::{PredId, Vocabulary};
use cms_data::{FxHashMap, FxHashSet};

/// Observed truths in `[0,1]` plus the set of atoms to infer.
#[derive(Clone, Debug, Default)]
pub struct Database {
    observations: FxHashMap<GroundAtom, f64>,
    targets: FxHashSet<GroundAtom>,
    /// Observed atoms grouped per predicate, for grounding joins.
    by_pred: FxHashMap<PredId, Vec<GroundAtom>>,
}

/// How an atom resolves during grounding.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Resolved {
    /// Observed (or closed-world default) truth value.
    Observed(f64),
    /// A target atom: inferred by MAP; identified later by variable index.
    Target,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Record an observation. Values are clamped to `[0,1]`.
    ///
    /// # Panics
    /// Panics if the atom was declared a target.
    pub fn observe(&mut self, atom: GroundAtom, value: f64) {
        assert!(
            !self.targets.contains(&atom),
            "atom {atom} is already a target"
        );
        let clamped = value.clamp(0.0, 1.0);
        if self.observations.insert(atom.clone(), clamped).is_none() {
            self.by_pred.entry(atom.pred).or_default().push(atom);
        }
    }

    /// Declare an atom as a MAP target (a free variable of inference).
    ///
    /// # Panics
    /// Panics if the atom was observed.
    pub fn target(&mut self, atom: GroundAtom) {
        assert!(
            !self.observations.contains_key(&atom),
            "atom {atom} is already observed"
        );
        if self.targets.insert(atom.clone()) {
            self.by_pred.entry(atom.pred).or_default().push(atom);
        }
    }

    /// Resolve an atom: target, observed value, or closed-world default 0.
    ///
    /// Unobserved atoms of *open* predicates that were never declared
    /// targets also resolve to 0 — the same pragmatic default PSL's lazy
    /// grounding applies.
    pub fn resolve(&self, atom: &GroundAtom) -> Resolved {
        if self.targets.contains(atom) {
            Resolved::Target
        } else {
            Resolved::Observed(self.observations.get(atom).copied().unwrap_or(0.0))
        }
    }

    /// Observed truth of an atom (None if target or unknown).
    pub fn observed_value(&self, atom: &GroundAtom) -> Option<f64> {
        self.observations.get(atom).copied()
    }

    /// All known atoms (observed or target) of a predicate, in insertion
    /// order. This is the candidate pool the grounder joins over.
    pub fn atoms_of(&self, pred: PredId) -> &[GroundAtom] {
        self.by_pred.get(&pred).map_or(&[], Vec::as_slice)
    }

    /// Iterate all target atoms (order unspecified).
    pub fn targets(&self) -> impl Iterator<Item = &GroundAtom> {
        self.targets.iter()
    }

    /// Number of observations.
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Number of target atoms.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// Sanity-check all atoms against a vocabulary (arity agreement).
    pub fn validate(&self, vocab: &Vocabulary) -> Result<(), String> {
        for atom in self.observations.keys().chain(self.targets.iter()) {
            let pred = vocab.predicate(atom.pred);
            if pred.arity != atom.args.len() {
                return Err(format!(
                    "atom {atom} has {} args but {} expects {}",
                    atom.args.len(),
                    pred.name,
                    pred.arity
                ));
            }
            if pred.closed && self.targets.contains(atom) {
                return Err(format!(
                    "target atom {atom} belongs to closed predicate {}",
                    pred.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_and_resolve() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.7);
        assert_eq!(db.resolve(&a), Resolved::Observed(0.7));
        assert_eq!(db.observed_value(&a), Some(0.7));
        let unknown = GroundAtom::from_strs(PredId(0), &["y"]);
        assert_eq!(db.resolve(&unknown), Resolved::Observed(0.0));
    }

    #[test]
    fn observation_clamps() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 1.5);
        assert_eq!(db.observed_value(&a), Some(1.0));
    }

    #[test]
    fn re_observation_overwrites_without_duplicating_pool() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.3);
        db.observe(a.clone(), 0.9);
        assert_eq!(db.observed_value(&a), Some(0.9));
        assert_eq!(db.atoms_of(PredId(0)).len(), 1);
    }

    #[test]
    fn targets_resolve_as_targets() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(1), &["m"]);
        db.target(a.clone());
        assert_eq!(db.resolve(&a), Resolved::Target);
        assert_eq!(db.num_targets(), 1);
    }

    #[test]
    #[should_panic(expected = "already observed")]
    fn target_after_observe_panics() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.5);
        db.target(a);
    }

    #[test]
    #[should_panic(expected = "already a target")]
    fn observe_after_target_panics() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.target(a.clone());
        db.observe(a, 0.5);
    }

    #[test]
    fn validate_checks_arity_and_closedness() {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);

        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["a", "b"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["a"]));
        assert!(db.validate(&vocab).is_ok());

        let mut bad_arity = db.clone();
        bad_arity.observe(GroundAtom::from_strs(covers, &["only-one"]), 1.0);
        assert!(bad_arity.validate(&vocab).is_err());

        let mut bad_closed = db;
        bad_closed.target(GroundAtom::from_strs(covers, &["x", "y"]));
        assert!(bad_closed.validate(&vocab).is_err());
    }
}

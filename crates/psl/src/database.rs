//! The database of a PSL program: observed atom truths and target atoms.
//!
//! Besides the per-predicate candidate pools the grounder joins over, the
//! database maintains a lazy **argument-position index**
//! `(pred, arg position, symbol) → positions in the pool`. The join-plan
//! executor ([`crate::grounding`]) probes it instead of scanning whole
//! pools once a literal has at least one bound argument; reads go through
//! an `RwLock` so parallel grounding workers can share it.
//!
//! ## Generation stamps and incremental maintenance
//!
//! Every pool mutation bumps the database **generation**. The index is
//! generation-stamped: appends (new observations, new targets) patch its
//! posting lists in place and re-stamp it instead of discarding it;
//! only [`Database::retract`] — which shifts pool positions — invalidates
//! it wholesale. Value-only re-observations leave both pools and index
//! untouched, and re-observing an *unchanged* value is completely free
//! (no generation bump, no delta entry).
//!
//! Mutations are additionally logged as [`DeltaEntry`]s; callers drain the
//! log with [`Database::take_delta`] — which **coalesces** the raw log to
//! its net per-atom effect while stamping the raw mutation count — and
//! hand the resulting [`DbDelta`] to [`crate::Program::reground`] (see
//! [`crate::delta`] and the "Batched deltas" section of
//! `docs/robustness.md`).
//!
//! ## Lock poisoning
//!
//! The index `RwLock`'s poisoning is deliberately **recovered**
//! (`PoisonError::into_inner`), not propagated: every writer builds its
//! replacement index completely (or patches posting lists append-only)
//! before it is visible, so a panic elsewhere can never leave a
//! half-updated index behind — the same writer-invariant pattern as
//! `cms_data::Instance`.

use crate::atom::GroundAtom;
use crate::delta::{DbDelta, DeltaEntry, DeltaKind};
use crate::predicate::{PredId, Vocabulary};
use cms_data::{FxHashMap, FxHashSet, Sym};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

/// Process-wide database identity counter. Every [`Database`] — including
/// clones — gets a distinct id, so a [`DbDelta`] can prove which database
/// produced it and [`crate::Program::reground`] can reject deltas from a
/// different one.
static NEXT_DB_ID: AtomicU64 = AtomicU64::new(1);

/// Posting lists of the argument-position index.
#[derive(Debug, Default)]
pub(crate) struct AtomIndex {
    posting: FxHashMap<(PredId, u32, Sym), Vec<u32>>,
    /// Distinct symbols per `(pred, arg position)` — the planner's
    /// average-selectivity estimate for joins on not-yet-known symbols.
    distinct: FxHashMap<(PredId, u32), usize>,
    /// Database generation at which the index was built from scratch.
    built_at: u64,
    /// Database generation the index is current for (patched in place).
    stamp: u64,
    empty: Vec<u32>,
}

impl AtomIndex {
    /// Pool positions (into [`Database::atoms_of`]) of atoms of `pred`
    /// whose argument `pos` is `sym`, in pool order.
    pub(crate) fn postings(&self, pred: PredId, pos: usize, sym: Sym) -> &[u32] {
        self.posting
            .get(&(pred, pos as u32, sym))
            .unwrap_or(&self.empty)
    }

    /// Number of distinct symbols occurring at `(pred, pos)`.
    pub(crate) fn distinct(&self, pred: PredId, pos: usize) -> usize {
        self.distinct.get(&(pred, pos as u32)).copied().unwrap_or(0)
    }

    /// Patch the posting lists for an atom appended at pool position `pos`
    /// (mirrors one step of the from-scratch build loop).
    fn append(&mut self, atom: &GroundAtom, pos: u32) {
        for (i, &sym) in atom.args.iter().enumerate() {
            let posting = self.posting.entry((atom.pred, i as u32, sym)).or_default();
            if posting.is_empty() {
                *self.distinct.entry((atom.pred, i as u32)).or_default() += 1;
            }
            posting.push(pos);
        }
    }
}

/// Observed truths in `[0,1]` plus the set of atoms to infer.
#[derive(Debug)]
pub struct Database {
    observations: FxHashMap<GroundAtom, f64>,
    targets: FxHashSet<GroundAtom>,
    /// Observed atoms grouped per predicate, for grounding joins.
    by_pred: FxHashMap<PredId, Vec<GroundAtom>>,
    /// Lazy argument-position index; `None` until first use or after a
    /// retraction. Appends patch it in place (generation-stamped).
    index: RwLock<Option<AtomIndex>>,
    /// Bumped on every pool or value mutation.
    generation: u64,
    /// Mutations since the last [`Database::take_delta`].
    pending: Vec<DeltaEntry>,
    /// Process-unique identity (fresh for every database, clones included).
    id: u64,
    /// Generation at the last [`Database::take_delta`] (or at creation) —
    /// the base stamp of the next drained delta.
    delta_base: u64,
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            observations: self.observations.clone(),
            targets: self.targets.clone(),
            by_pred: self.by_pred.clone(),
            // The clone rebuilds its index on first use.
            index: RwLock::new(None),
            generation: self.generation,
            pending: self.pending.clone(),
            // The clone is a *different* database: deltas it drains must
            // not validate against ground programs of the original.
            id: NEXT_DB_ID.fetch_add(1, Ordering::Relaxed),
            delta_base: self.delta_base,
        }
    }
}

/// How an atom resolves during grounding.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Resolved {
    /// Observed (or closed-world default) truth value.
    Observed(f64),
    /// A target atom: inferred by MAP; identified later by variable index.
    Target,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database {
            observations: FxHashMap::default(),
            targets: FxHashSet::default(),
            by_pred: FxHashMap::default(),
            index: RwLock::new(None),
            generation: 0,
            pending: Vec::new(),
            id: NEXT_DB_ID.fetch_add(1, Ordering::Relaxed),
            delta_base: 0,
        }
    }

    /// Process-unique identity of this database. Clones get fresh ids, so
    /// a [`DbDelta`] stamped with one database's id never validates
    /// against a ground program of another.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Record an observation. Values are clamped to `[0,1]`.
    ///
    /// Re-observing an atom with an **unchanged** value is a complete
    /// no-op: no generation bump, no index work, no delta entry. A changed
    /// value logs a [`DeltaKind::Changed`] entry but leaves pools and index
    /// untouched; a brand-new atom logs [`DeltaKind::Added`] and patches
    /// the index in place.
    ///
    /// # Panics
    /// Panics if the atom was declared a target.
    pub fn observe(&mut self, atom: GroundAtom, value: f64) {
        assert!(
            !self.targets.contains(&atom),
            "atom {atom} is already a target"
        );
        let clamped = value.clamp(0.0, 1.0);
        match self.observations.get(&atom) {
            Some(&old) if old == clamped => {} // free no-op write
            Some(&old) => {
                self.observations.insert(atom.clone(), clamped);
                self.generation += 1;
                self.pending.push(DeltaEntry {
                    atom,
                    kind: DeltaKind::Changed { old, new: clamped },
                });
            }
            None => {
                self.observations.insert(atom.clone(), clamped);
                self.append_to_pool(atom);
            }
        }
    }

    /// Declare an atom as a MAP target (a free variable of inference).
    /// Re-declaring an existing target is a free no-op.
    ///
    /// # Panics
    /// Panics if the atom was observed.
    pub fn target(&mut self, atom: GroundAtom) {
        assert!(
            !self.observations.contains_key(&atom),
            "atom {atom} is already observed"
        );
        if self.targets.insert(atom.clone()) {
            self.append_to_pool(atom);
        }
    }

    /// Remove an atom (observation or target) from the database entirely.
    /// Returns `true` if the atom was present. Pool positions shift, so
    /// this is the one mutation that still invalidates the index.
    pub fn retract(&mut self, atom: &GroundAtom) -> bool {
        let was_observed = self.observations.remove(atom).is_some();
        if was_observed || self.targets.remove(atom) {
            let pool = self
                .by_pred
                .get_mut(&atom.pred)
                .expect("pooled atom has a pool");
            let pos = pool
                .iter()
                .position(|a| a == atom)
                .expect("pooled atom is in its pool");
            pool.remove(pos);
            self.generation += 1;
            self.invalidate_index();
            self.pending.push(DeltaEntry {
                atom: atom.clone(),
                kind: DeltaKind::Removed,
            });
            true
        } else {
            false
        }
    }

    /// Append a new atom to its predicate pool: bump the generation, patch
    /// the index in place (if built), and log the delta entry.
    ///
    /// # Panics
    /// Panics if the pool already holds `u32::MAX` atoms — posting lists
    /// store pool positions as `u32`, and a silent `as`-truncation here
    /// would corrupt the index (every position past 2³²−1 would alias a
    /// low one). The explicit capacity check turns that corruption into a
    /// loud, immediate failure.
    fn append_to_pool(&mut self, atom: GroundAtom) {
        let pool = self.by_pred.entry(atom.pred).or_default();
        pool.push(atom.clone());
        let pos = u32::try_from(pool.len() - 1)
            .expect("predicate pool exceeds u32::MAX atoms (index position capacity)");
        self.generation += 1;
        if let Some(idx) = self
            .index
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_mut()
        {
            idx.append(&atom, pos);
            idx.stamp = self.generation;
        }
        self.pending.push(DeltaEntry {
            atom,
            kind: DeltaKind::Added,
        });
    }

    /// Drain the mutation log accumulated since the previous call (or since
    /// creation) and **coalesce it to its net per-atom effect**: an
    /// in-window add cancelled by a retraction vanishes, chains of value
    /// writes fold to one `Changed { first old, last new }` (an a→b→a
    /// round-trip vanishes entirely), and a changed-then-retracted atom
    /// nets to a single `Removed`. Feed the resulting [`DbDelta`] to
    /// [`crate::Program::reground`].
    ///
    /// The drained delta is stamped `(raw, base, end, db)` so the reground
    /// guard can verify it is *the* delta between the prior ground's
    /// snapshot and this database's current state — every effective
    /// mutation bumps the generation exactly once and logs exactly one raw
    /// entry, so `raw_entries() == end − base` is the invariant the guard
    /// checks (the coalesced net entry list may be shorter, down to empty
    /// for a batch that cancelled itself out). See the "Batched deltas"
    /// section of `docs/robustness.md`.
    pub fn take_delta(&mut self) -> DbDelta {
        let mut entries = std::mem::take(&mut self.pending);
        // Fault-harness hooks: corrupt the drained log (never the
        // database) so the delta guard's count invariant must catch it.
        // They run *before* the raw count is taken, like any real log
        // corruption would.
        if crate::fault::take(crate::fault::Fault::DropDeltaEntry) {
            entries.pop();
        }
        if crate::fault::take(crate::fault::Fault::DuplicateDeltaEntry) {
            if let Some(last) = entries.last().cloned() {
                entries.push(last);
            }
        }
        let raw = entries.len();
        let base = self.delta_base;
        self.delta_base = self.generation;
        DbDelta::new(
            crate::delta::coalesce(entries),
            raw,
            base,
            self.generation,
            self.id,
        )
    }

    /// Current mutation generation (bumped on every effective write).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `(built_at, stamp)` generations of the argument-position index, or
    /// `None` if the index is not currently built. `stamp == generation()`
    /// means the index is current; `built_at < stamp` means it was patched
    /// in place since its last from-scratch build. Exposed for maintenance
    /// tests and observability.
    pub fn index_stamp(&self) -> Option<(u64, u64)> {
        self.index
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|idx| (idx.built_at, idx.stamp))
    }

    /// Drop the argument-position index (only retractions need this).
    fn invalidate_index(&mut self) {
        *self
            .index
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// Build the argument-position index if absent.
    pub fn ensure_index(&self) {
        let mut guard = self
            .index
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            let mut idx = AtomIndex {
                built_at: self.generation,
                stamp: self.generation,
                ..AtomIndex::default()
            };
            for pool in self.by_pred.values() {
                for (i, atom) in pool.iter().enumerate() {
                    idx.append(atom, i as u32);
                }
            }
            *guard = Some(idx);
        }
    }

    /// Read access to the argument-position index, building it if needed.
    /// The guard must be dropped before any `&mut self` call.
    pub(crate) fn index(&self) -> RwLockReadGuard<'_, Option<AtomIndex>> {
        loop {
            let guard = self
                .index
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if guard.is_some() {
                return guard;
            }
            drop(guard);
            self.ensure_index();
        }
    }

    /// Number of known atoms of `pred` whose argument `pos` equals `sym` —
    /// the index cardinality the join planner consults. Builds the index on
    /// first use; exposed for observability and invalidation tests.
    pub fn count_matching(&self, pred: PredId, pos: usize, sym: Sym) -> usize {
        self.index()
            .as_ref()
            .expect("index just ensured")
            .postings(pred, pos, sym)
            .len()
    }

    /// Resolve an atom: target, observed value, or closed-world default 0.
    ///
    /// Unobserved atoms of *open* predicates that were never declared
    /// targets also resolve to 0 — the same pragmatic default PSL's lazy
    /// grounding applies.
    pub fn resolve(&self, atom: &GroundAtom) -> Resolved {
        if self.targets.contains(atom) {
            Resolved::Target
        } else {
            Resolved::Observed(self.observations.get(atom).copied().unwrap_or(0.0))
        }
    }

    /// Observed truth of an atom (None if target or unknown).
    pub fn observed_value(&self, atom: &GroundAtom) -> Option<f64> {
        self.observations.get(atom).copied()
    }

    /// All known atoms (observed or target) of a predicate, in insertion
    /// order. This is the candidate pool the grounder joins over.
    pub fn atoms_of(&self, pred: PredId) -> &[GroundAtom] {
        self.by_pred.get(&pred).map_or(&[], Vec::as_slice)
    }

    /// Iterate all target atoms (order unspecified).
    pub fn targets(&self) -> impl Iterator<Item = &GroundAtom> {
        self.targets.iter()
    }

    /// Number of observations.
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Number of target atoms.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// Sanity-check all atoms against a vocabulary (arity agreement).
    pub fn validate(&self, vocab: &Vocabulary) -> Result<(), String> {
        for atom in self.observations.keys().chain(self.targets.iter()) {
            let pred = vocab.predicate(atom.pred);
            if pred.arity != atom.args.len() {
                return Err(format!(
                    "atom {atom} has {} args but {} expects {}",
                    atom.args.len(),
                    pred.name,
                    pred.arity
                ));
            }
            if pred.closed && self.targets.contains(atom) {
                return Err(format!(
                    "target atom {atom} belongs to closed predicate {}",
                    pred.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_and_resolve() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.7);
        assert_eq!(db.resolve(&a), Resolved::Observed(0.7));
        assert_eq!(db.observed_value(&a), Some(0.7));
        let unknown = GroundAtom::from_strs(PredId(0), &["y"]);
        assert_eq!(db.resolve(&unknown), Resolved::Observed(0.0));
    }

    #[test]
    fn observation_clamps() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 1.5);
        assert_eq!(db.observed_value(&a), Some(1.0));
    }

    #[test]
    fn re_observation_overwrites_without_duplicating_pool() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.3);
        db.observe(a.clone(), 0.9);
        assert_eq!(db.observed_value(&a), Some(0.9));
        assert_eq!(db.atoms_of(PredId(0)).len(), 1);
    }

    #[test]
    fn targets_resolve_as_targets() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(1), &["m"]);
        db.target(a.clone());
        assert_eq!(db.resolve(&a), Resolved::Target);
        assert_eq!(db.num_targets(), 1);
    }

    #[test]
    #[should_panic(expected = "already observed")]
    fn target_after_observe_panics() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.5);
        db.target(a);
    }

    #[test]
    #[should_panic(expected = "already a target")]
    fn observe_after_target_panics() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.target(a.clone());
        db.observe(a, 0.5);
    }

    #[test]
    fn index_postings_match_pools() {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(PredId(0), &["a", "x"]), 1.0);
        db.observe(GroundAtom::from_strs(PredId(0), &["a", "y"]), 1.0);
        db.observe(GroundAtom::from_strs(PredId(0), &["b", "x"]), 1.0);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 2);
        assert_eq!(db.count_matching(PredId(0), 1, Sym::new("x")), 2);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("zzz")), 0);
    }

    #[test]
    fn index_patched_in_place_by_observe_and_target() {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(PredId(0), &["a"]), 1.0);
        // Force the index to exist, then mutate through both entry points.
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 1);
        let (built_at, _) = db.index_stamp().unwrap();
        db.observe(GroundAtom::from_strs(PredId(0), &["a2"]), 0.5);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a2")), 1);
        db.target(GroundAtom::from_strs(PredId(1), &["a"]));
        assert_eq!(db.count_matching(PredId(1), 0, Sym::new("a")), 1);
        let pool_gen = db.generation();
        // Re-observing an existing atom only updates the value; the pool is
        // unchanged either way, so counts stay put and the index is not
        // even re-stamped (it describes pools, not values).
        db.observe(GroundAtom::from_strs(PredId(0), &["a"]), 0.1);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 1);
        // All of the above patched the original index build in place.
        let (built_after, stamp) = db.index_stamp().unwrap();
        assert_eq!(built_at, built_after, "index must not have been rebuilt");
        assert_eq!(stamp, pool_gen, "index is current for the last pool write");
    }

    #[test]
    fn unchanged_write_is_free() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.5);
        db.target(GroundAtom::from_strs(PredId(1), &["t"]));
        let gen = db.generation();
        let _ = db.take_delta();
        // Same value, already-registered target: nothing may happen.
        db.observe(a.clone(), 0.5);
        db.target(GroundAtom::from_strs(PredId(1), &["t"]));
        assert_eq!(db.generation(), gen);
        assert!(db.take_delta().is_empty());
        // A genuinely changed value bumps the generation and logs a delta.
        db.observe(a.clone(), 0.75);
        assert_eq!(db.generation(), gen + 1);
        let delta = db.take_delta();
        assert_eq!(delta.len(), 1);
        assert!(matches!(
            delta.entries()[0].kind,
            crate::delta::DeltaKind::Changed { old, new }
                if (old - 0.5).abs() < 1e-12 && (new - 0.75).abs() < 1e-12
        ));
    }

    #[test]
    fn take_delta_coalesces_to_net_effect() {
        use crate::delta::DeltaKind;
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["a"]);
        let t = GroundAtom::from_strs(PredId(1), &["t"]);
        // Raw log: Added a, Added t, Changed a, Removed a — four raw
        // mutations whose net effect is only the target add (a's add,
        // value write, and retraction cancel out).
        db.observe(a.clone(), 0.2);
        db.target(t.clone());
        db.observe(a.clone(), 0.9);
        assert!(db.retract(&a));
        assert!(!db.retract(&a));
        let delta = db.take_delta();
        assert_eq!(delta.raw_entries(), 4, "raw count survives coalescing");
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.entries()[0].atom, t);
        assert!(matches!(delta.entries()[0].kind, DeltaKind::Added));
        assert!(db.observed_value(&a).is_none());
        assert!(db.atoms_of(PredId(0)).is_empty());
        assert_eq!(db.resolve(&t), Resolved::Target);
    }

    #[test]
    fn value_round_trip_coalesces_to_net_empty_delta() {
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["x"]);
        db.observe(a.clone(), 0.25);
        let _ = db.take_delta();
        // a→b→a within one un-drained window: two raw Changed entries,
        // zero net effect.
        db.observe(a.clone(), 0.8);
        db.observe(a.clone(), 0.25);
        let delta = db.take_delta();
        assert_eq!(delta.raw_entries(), 2);
        assert!(delta.is_net_empty());
        assert!(!delta.is_empty(), "the generation span is still real");
        assert_eq!(delta.end_generation() - delta.base_generation(), 2);
        // The *next* drain starts from the advanced base.
        db.observe(a.clone(), 0.5);
        let next = db.take_delta();
        assert_eq!(next.base_generation(), delta.end_generation());
        assert_eq!(next.len(), 1);
    }

    #[test]
    fn changed_chains_fold_and_changed_removed_folds_to_removed() {
        use crate::delta::DeltaKind;
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["a"]);
        let b = GroundAtom::from_strs(PredId(0), &["b"]);
        db.observe(a.clone(), 0.1);
        db.observe(b.clone(), 0.5);
        let _ = db.take_delta();
        // a: 0.1→0.3→0.7 folds to one Changed{0.1, 0.7}; b: changed then
        // retracted folds to Removed.
        db.observe(a.clone(), 0.3);
        db.observe(a.clone(), 0.7);
        db.observe(b.clone(), 0.9);
        assert!(db.retract(&b));
        let delta = db.take_delta();
        assert_eq!(delta.raw_entries(), 4);
        assert_eq!(delta.len(), 2);
        assert!(matches!(
            delta.entries()[0].kind,
            DeltaKind::Changed { old, new }
                if (old - 0.1).abs() < 1e-12 && (new - 0.7).abs() < 1e-12
        ));
        assert_eq!(delta.entries()[1].atom, b);
        assert!(matches!(delta.entries()[1].kind, DeltaKind::Removed));
    }

    #[test]
    fn retract_then_re_add_stays_a_pool_delta() {
        use crate::delta::DeltaKind;
        let mut db = Database::new();
        let a = GroundAtom::from_strs(PredId(0), &["a"]);
        db.observe(a.clone(), 0.4);
        let _ = db.take_delta();
        // Removed then re-Added cannot fold to a value change: pool
        // positions shifted, so both entries survive (adjacent, in the
        // atom's first-appearance slot).
        assert!(db.retract(&a));
        db.observe(a.clone(), 0.4);
        let delta = db.take_delta();
        assert_eq!(delta.raw_entries(), 2);
        assert_eq!(delta.len(), 2);
        assert!(matches!(delta.entries()[0].kind, DeltaKind::Removed));
        assert!(matches!(delta.entries()[1].kind, DeltaKind::Added));
        assert!(delta.pools_changed());
    }

    #[test]
    fn retract_invalidates_index_and_rebuild_is_consistent() {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(PredId(0), &["a"]), 1.0);
        db.observe(GroundAtom::from_strs(PredId(0), &["b"]), 1.0);
        db.observe(GroundAtom::from_strs(PredId(0), &["c"]), 1.0);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("b")), 1);
        assert!(db.retract(&GroundAtom::from_strs(PredId(0), &["a"])));
        assert!(db.index_stamp().is_none(), "retraction drops the index");
        // Rebuilt postings must track the shifted pool positions.
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 0);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("c")), 1);
        assert_eq!(db.atoms_of(PredId(0)).len(), 2);
    }

    #[test]
    fn cloned_database_rebuilds_its_own_index() {
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(PredId(0), &["a"]), 1.0);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("a")), 1);
        let mut copy = db.clone();
        copy.observe(GroundAtom::from_strs(PredId(0), &["b"]), 1.0);
        assert_eq!(copy.count_matching(PredId(0), 0, Sym::new("b")), 1);
        assert_eq!(db.count_matching(PredId(0), 0, Sym::new("b")), 0);
    }

    #[test]
    fn validate_checks_arity_and_closedness() {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);

        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["a", "b"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["a"]));
        assert!(db.validate(&vocab).is_ok());

        let mut bad_arity = db.clone();
        bad_arity.observe(GroundAtom::from_strs(covers, &["only-one"]), 1.0);
        assert!(bad_arity.validate(&vocab).is_err());

        let mut bad_closed = db;
        bad_closed.target(GroundAtom::from_strs(covers, &["x", "y"]));
        assert!(bad_closed.validate(&vocab).is_err());
    }
}

//! Deterministic fault-injection hooks for the self-healing pipeline.
//!
//! The incremental solve path (delta capture → splice reground → dual
//! carry → warm ADMM) defends itself with guards and watchdogs; this
//! module lets tests *prove* those defenses work by injecting one fault at
//! a precisely chosen point and asserting the documented recovery rung
//! fires. Injection is:
//!
//! * **thread-local** — a fault armed on one thread never fires on
//!   another, so the suite can run faults in parallel tests, and the
//!   solver's coordinator-side hooks behave identically under
//!   `ADMM_THREADS > 1` (the residual check always runs on the thread
//!   that called `solve`);
//! * **one-shot** — the first injection point whose kind matches consumes
//!   the armed fault, so a recovery retry of the same operation runs
//!   clean;
//! * **zero-cost when disarmed** — each hook is a thread-local `Cell`
//!   read.
//!
//! The `cms-fault` crate builds seeded, whole-pipeline [`FaultPlan`]s on
//! top of these primitives; see `docs/robustness.md` for the fault → guard
//! → ladder-rung table.
//!
//! [`FaultPlan`]: https://docs.rs/cms-fault

use std::cell::Cell;

/// One injectable fault. Each variant corresponds to exactly one hook in
/// the pipeline and is detected by a specific guard or watchdog (the
/// recovery suite asserts the full chain per variant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// NaN-poison the first non-empty dual vector produced by
    /// [`crate::GroundProgram::carry_duals`]. Detected by
    /// [`crate::DualState::all_finite`] (warm-consensus rung) or, failing
    /// that, by the solver's non-finite watchdog.
    PoisonDuals,
    /// Silently drop the last entry from the next
    /// [`crate::Database::take_delta`]. Detected by the delta guard's
    /// entry-count invariant (`len == end − base`).
    DropDeltaEntry,
    /// Duplicate the last entry of the next
    /// [`crate::Database::take_delta`]. Detected by the same entry-count
    /// invariant as [`Fault::DropDeltaEntry`].
    DuplicateDeltaEntry,
    /// Corrupt one splice-table slot ordinal to an out-of-range value at
    /// the start of [`crate::Program::reground`]. Detected by the splice
    /// shape check before any splicing happens.
    CorruptSpliceOrdinal,
    /// Report the database atom index as unavailable mid-reground.
    /// Surfaces as [`crate::GroundingError::IndexUnavailable`]; the ladder
    /// falls back to a fresh ground (which, being a later operation,
    /// re-ensures the index and succeeds).
    InvalidateIndex,
    /// Force the solver watchdog to report a stall at the next residual
    /// check, regardless of actual progress. Exercises
    /// [`crate::SolveHealth::Stalled`] and the restart policy.
    SolverStall,
}

impl Fault {
    /// Stable lowercase label, used by the telemetry journal's
    /// fault events and the recovery suite's diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Fault::PoisonDuals => "poison-duals",
            Fault::DropDeltaEntry => "drop-delta-entry",
            Fault::DuplicateDeltaEntry => "duplicate-delta-entry",
            Fault::CorruptSpliceOrdinal => "corrupt-splice-ordinal",
            Fault::InvalidateIndex => "invalidate-index",
            Fault::SolverStall => "solver-stall",
        }
    }
}

thread_local! {
    static ARMED: Cell<Option<Fault>> = const { Cell::new(None) };
}

/// Arm `fault` on the current thread. At most one fault is armed at a
/// time; arming replaces any previous one. The next matching injection
/// point consumes it.
pub fn arm(fault: Fault) {
    ARMED.with(|a| a.set(Some(fault)));
}

/// Disarm whatever is armed on the current thread (idempotent). Recovery
/// tests call this between steps so a fault never leaks across scenarios.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// The fault currently armed on this thread, if any (not consumed).
pub fn armed() -> Option<Fault> {
    ARMED.with(|a| a.get())
}

/// One-shot hook: if `kind` is armed on this thread, disarm it and return
/// true (the caller then performs the injection). Called from the
/// pipeline's injection points only.
pub(crate) fn take(kind: Fault) -> bool {
    let fired = ARMED.with(|a| {
        if a.get() == Some(kind) {
            a.set(None);
            true
        } else {
            false
        }
    });
    if fired {
        cms_obs::count("fault.injected", 1);
        cms_obs::emit(cms_obs::Event::Fault {
            fault: kind.label().to_owned(),
        });
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_one_shot_and_kind_specific() {
        disarm();
        assert!(!take(Fault::SolverStall));
        arm(Fault::SolverStall);
        assert_eq!(armed(), Some(Fault::SolverStall));
        assert!(!take(Fault::PoisonDuals), "wrong kind must not consume");
        assert!(take(Fault::SolverStall));
        assert!(!take(Fault::SolverStall), "consumed exactly once");
        assert_eq!(armed(), None);
    }

    #[test]
    fn faults_are_thread_local() {
        arm(Fault::PoisonDuals);
        std::thread::spawn(|| {
            assert_eq!(armed(), None);
            assert!(!take(Fault::PoisonDuals));
        })
        .join()
        .unwrap();
        assert!(take(Fault::PoisonDuals));
    }
}

//! Grounding: instantiate rule templates over the database.
//!
//! ## Strategy: compile once, probe indexes, execute a plan
//!
//! Each [`LogicalRule`] is compiled to a [`crate::plan::JoinPlan`]
//! before any candidate atom is touched:
//!
//! 1. **Slot interning** — rule variables become dense slot ids; the
//!    substitution is a `Vec<Option<Sym>>`, so the innermost loop performs
//!    no string hashing and no per-binding allocation.
//! 2. **Selectivity ordering** — the positive body literals are reordered
//!    most-selective-first using the cardinalities of the database's lazy
//!    `(pred, arg position, symbol) → pool positions` index
//!    (see [`Database::count_matching`]).
//! 3. **Probe-vs-scan execution** — at each backtracking node the executor
//!    probes the shortest posting list among the literal's bound argument
//!    positions, falling back to a full pool scan only when nothing is
//!    bound. [`GroundStats::candidates_probed`] /
//!    [`GroundStats::candidates_scanned`] expose which mode did the work.
//!
//! Substitutions still join over the rule's *positive body literals*
//! against the known-atom pools (observed ∪ target atoms per predicate) —
//! the same lazy strategy PSL uses: an unobserved closed atom has truth 0,
//! so a grounding whose positive body mentions one can never have positive
//! distance-to-satisfaction *unless* the atom is negated or in the head,
//! which resolution handles via the closed-world default.
//!
//! Each complete binding compiles to a [`LinExpr`] for the distance to
//! satisfaction; groundings that are trivially satisfied for every value of
//! the target variables (`max over the [0,1] box ≤ 0`) are pruned.
//!
//! The pre-index nested-loop implementation is retained verbatim in
//! [`mod@reference`]: equivalence property tests and the grounding benches run
//! both engines on the same inputs and require identical ground programs.

use crate::atom::GroundAtom;
use crate::database::{Database, Resolved};
use crate::delta::TermSlot;
use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use crate::linear::LinExpr;
use crate::plan::{EmitLiteral, JoinPlan, SlotTerm};
use crate::rule::{Literal, LogicalRule};
use cms_data::{FxHashMap, Sym};
use std::time::{Duration, Instant};

/// Maps target atoms to dense variable indices; owns the variable order.
#[derive(Clone, Debug, Default)]
pub struct VarRegistry {
    atoms: Vec<GroundAtom>,
    index: FxHashMap<GroundAtom, usize>,
}

impl VarRegistry {
    /// Empty registry.
    pub fn new() -> VarRegistry {
        VarRegistry::default()
    }

    /// Index of `atom`, registering it if new.
    pub fn intern(&mut self, atom: &GroundAtom) -> usize {
        if let Some(&i) = self.index.get(atom) {
            return i;
        }
        let i = self.atoms.len();
        self.atoms.push(atom.clone());
        self.index.insert(atom.clone(), i);
        i
    }

    /// Index of `atom` if registered.
    pub fn lookup(&self, atom: &GroundAtom) -> Option<usize> {
        self.index.get(atom).copied()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True iff no variables registered.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom of variable `i`.
    pub fn atom(&self, i: usize) -> &GroundAtom {
        &self.atoms[i]
    }

    /// All atoms in variable order.
    pub fn atoms(&self) -> &[GroundAtom] {
        &self.atoms
    }
}

/// Failures during grounding.
#[derive(Clone, PartialEq, Debug)]
pub enum GroundingError {
    /// A rule has a variable not bound by any positive body literal.
    UnsafeRule {
        /// The rule's diagnostic name.
        rule: String,
    },
    /// A rule atom's argument count disagrees with its predicate.
    ArityMismatch {
        /// The rule's diagnostic name.
        rule: String,
    },
    /// An arithmetic rule failed to ground.
    Arith(crate::arith::ArithError),
    /// The database's argument-position index was unavailable on a
    /// grounding path that requires it (it should have been ensured by the
    /// caller; propagated instead of panicking).
    IndexUnavailable {
        /// The rule being ground when the index was missing.
        rule: String,
    },
}

impl std::fmt::Display for GroundingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroundingError::UnsafeRule { rule } => write!(f, "rule {rule:?} is unsafe"),
            GroundingError::ArityMismatch { rule } => {
                write!(f, "rule {rule:?} has an atom with wrong arity")
            }
            GroundingError::Arith(e) => write!(f, "{e}"),
            GroundingError::IndexUnavailable { rule } => {
                write!(
                    f,
                    "argument-position index unavailable while grounding rule {rule:?}"
                )
            }
        }
    }
}

impl std::error::Error for GroundingError {}

/// Per-rule grounding statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroundStats {
    /// Substitutions enumerated.
    pub substitutions: usize,
    /// Potentials emitted (weighted rules).
    pub potentials: usize,
    /// Constraints emitted (hard rules).
    pub constraints: usize,
    /// Groundings pruned as trivially satisfied.
    pub pruned: usize,
    /// Objective contribution of groundings whose distance is a positive
    /// constant (no free variables) — charged regardless of inference.
    pub constant_loss: f64,
    /// Candidate atoms reached through index probes (posting-list walks).
    pub candidates_probed: usize,
    /// Candidate atoms reached through full pool scans (no bound argument
    /// at that backtracking node). The index "short-circuits" work exactly
    /// when this stays near the root-literal pool size.
    pub candidates_scanned: usize,
    /// Ground terms spliced unchanged from a prior ground program by
    /// [`crate::Program::reground`] (always 0 for a full grounding).
    pub terms_reused: usize,
    /// Groundings recomputed by [`crate::Program::reground`] because a
    /// mutated atom touched them (always 0 for a full grounding).
    pub terms_recomputed: usize,
    /// Arithmetic-rule free bindings whose summation folds were spliced
    /// unchanged by [`crate::Program::reground`] — the per-binding splice
    /// table let them skip re-folding entirely (always 0 for a full
    /// grounding).
    pub arith_bindings_spliced: usize,
    /// Times the self-healing ladder abandoned an incremental reground (or
    /// an unhealthy solve) and fell back to a fresh
    /// [`crate::Program::ground`]. Always 0 for a single grounding —
    /// `cms-select` accumulates it under a synthetic `"self-healing"` rule
    /// entry.
    pub fallback_fresh_grounds: usize,
    /// ADMM watchdog restarts absorbed while solving against this program
    /// (a pipeline-level counter like `fallback_fresh_grounds`).
    pub solver_restarts: usize,
    /// Raw delta entries the drain coalesced away before
    /// [`crate::Program::reground`] saw them (cancelling add/remove pairs,
    /// folded `Changed` chains). Recorded delta-wide under the synthetic
    /// `"delta-batch"` rule entry; always 0 for a full grounding.
    pub entries_coalesced: usize,
    /// Batch entries whose work item (seeded re-grounding, arith free
    /// binding, or whole-rule re-ground) was already scheduled by an
    /// earlier entry of the same drained delta, so they cost nothing extra
    /// (always 0 for a full grounding).
    pub sources_deduped: usize,
    /// Wall time spent grounding this rule.
    pub wall: Duration,
}

impl GroundStats {
    /// Fold `other` into `self` (used when aggregating per-rule stats).
    pub fn absorb(&mut self, other: &GroundStats) {
        self.substitutions += other.substitutions;
        self.potentials += other.potentials;
        self.constraints += other.constraints;
        self.pruned += other.pruned;
        self.constant_loss += other.constant_loss;
        self.candidates_probed += other.candidates_probed;
        self.candidates_scanned += other.candidates_scanned;
        self.terms_reused += other.terms_reused;
        self.terms_recomputed += other.terms_recomputed;
        self.arith_bindings_spliced += other.arith_bindings_spliced;
        self.fallback_fresh_grounds += other.fallback_fresh_grounds;
        self.solver_restarts += other.solver_restarts;
        self.entries_coalesced += other.entries_coalesced;
        self.sources_deduped += other.sources_deduped;
        self.wall += other.wall;
    }

    /// These counters as the telemetry journal's grounding mirror
    /// ([`cms_obs::GroundCounters`] — `cms-obs` is dependency-free and
    /// cannot name this struct itself).
    pub fn obs_counters(&self) -> cms_obs::GroundCounters {
        cms_obs::GroundCounters {
            substitutions: self.substitutions as u64,
            potentials: self.potentials as u64,
            constraints: self.constraints as u64,
            pruned: self.pruned as u64,
            constant_loss: self.constant_loss,
            candidates_probed: self.candidates_probed as u64,
            candidates_scanned: self.candidates_scanned as u64,
            terms_reused: self.terms_reused as u64,
            terms_recomputed: self.terms_recomputed as u64,
            arith_bindings_spliced: self.arith_bindings_spliced as u64,
            fallback_fresh_grounds: self.fallback_fresh_grounds as u64,
            solver_restarts: self.solver_restarts as u64,
            entries_coalesced: self.entries_coalesced as u64,
            sources_deduped: self.sources_deduped as u64,
            wall_ns: self.wall.as_nanos() as u64,
        }
    }

    /// Bump the aggregate `<prefix>.*` registry counters for this stats
    /// block (`prefix` is `ground` or `reground`). Caller has already
    /// checked the level.
    ///
    /// This runs once per ground/reground inside the flip loop the
    /// telemetry-overhead gate times, so the two known prefixes go
    /// through pre-resolved [`cms_obs::LazyCounter`] handles — no name
    /// formatting, no registry lock after the first call.
    pub(crate) fn bump_registry(&self, prefix: &str) {
        static GROUND: StatCounters = StatCounters::new_ground();
        static REGROUND: StatCounters = StatCounters::new_reground();
        match prefix {
            "ground" => GROUND.bump(self),
            "reground" => REGROUND.bump(self),
            other => {
                // Unknown prefix: fall back to by-name lookups.
                let reg = cms_obs::registry();
                reg.counter(&format!("{other}.runs")).inc();
                reg.counter(&format!("{other}.substitutions"))
                    .add(self.substitutions as u64);
                reg.counter(&format!("{other}.potentials"))
                    .add(self.potentials as u64);
                reg.counter(&format!("{other}.constraints"))
                    .add(self.constraints as u64);
                reg.counter(&format!("{other}.pruned"))
                    .add(self.pruned as u64);
                reg.counter(&format!("{other}.candidates_probed"))
                    .add(self.candidates_probed as u64);
                reg.counter(&format!("{other}.candidates_scanned"))
                    .add(self.candidates_scanned as u64);
                reg.counter(&format!("{other}.terms_reused"))
                    .add(self.terms_reused as u64);
                reg.counter(&format!("{other}.terms_recomputed"))
                    .add(self.terms_recomputed as u64);
                reg.counter(&format!("{other}.arith_bindings_spliced"))
                    .add(self.arith_bindings_spliced as u64);
                reg.counter(&format!("{other}.entries_coalesced"))
                    .add(self.entries_coalesced as u64);
                reg.counter(&format!("{other}.sources_deduped"))
                    .add(self.sources_deduped as u64);
            }
        }
    }
}

/// The twelve `<prefix>.*` counters [`GroundStats::bump_registry`] bumps,
/// as cached handles.
struct StatCounters {
    runs: cms_obs::LazyCounter,
    substitutions: cms_obs::LazyCounter,
    potentials: cms_obs::LazyCounter,
    constraints: cms_obs::LazyCounter,
    pruned: cms_obs::LazyCounter,
    candidates_probed: cms_obs::LazyCounter,
    candidates_scanned: cms_obs::LazyCounter,
    terms_reused: cms_obs::LazyCounter,
    terms_recomputed: cms_obs::LazyCounter,
    arith_bindings_spliced: cms_obs::LazyCounter,
    entries_coalesced: cms_obs::LazyCounter,
    sources_deduped: cms_obs::LazyCounter,
}

impl StatCounters {
    const fn new_ground() -> StatCounters {
        StatCounters {
            runs: cms_obs::LazyCounter::new("ground.runs"),
            substitutions: cms_obs::LazyCounter::new("ground.substitutions"),
            potentials: cms_obs::LazyCounter::new("ground.potentials"),
            constraints: cms_obs::LazyCounter::new("ground.constraints"),
            pruned: cms_obs::LazyCounter::new("ground.pruned"),
            candidates_probed: cms_obs::LazyCounter::new("ground.candidates_probed"),
            candidates_scanned: cms_obs::LazyCounter::new("ground.candidates_scanned"),
            terms_reused: cms_obs::LazyCounter::new("ground.terms_reused"),
            terms_recomputed: cms_obs::LazyCounter::new("ground.terms_recomputed"),
            arith_bindings_spliced: cms_obs::LazyCounter::new("ground.arith_bindings_spliced"),
            entries_coalesced: cms_obs::LazyCounter::new("ground.entries_coalesced"),
            sources_deduped: cms_obs::LazyCounter::new("ground.sources_deduped"),
        }
    }

    const fn new_reground() -> StatCounters {
        StatCounters {
            runs: cms_obs::LazyCounter::new("reground.runs"),
            substitutions: cms_obs::LazyCounter::new("reground.substitutions"),
            potentials: cms_obs::LazyCounter::new("reground.potentials"),
            constraints: cms_obs::LazyCounter::new("reground.constraints"),
            pruned: cms_obs::LazyCounter::new("reground.pruned"),
            candidates_probed: cms_obs::LazyCounter::new("reground.candidates_probed"),
            candidates_scanned: cms_obs::LazyCounter::new("reground.candidates_scanned"),
            terms_reused: cms_obs::LazyCounter::new("reground.terms_reused"),
            terms_recomputed: cms_obs::LazyCounter::new("reground.terms_recomputed"),
            arith_bindings_spliced: cms_obs::LazyCounter::new("reground.arith_bindings_spliced"),
            entries_coalesced: cms_obs::LazyCounter::new("reground.entries_coalesced"),
            sources_deduped: cms_obs::LazyCounter::new("reground.sources_deduped"),
        }
    }

    fn bump(&self, stats: &GroundStats) {
        self.runs.inc();
        self.substitutions.add(stats.substitutions as u64);
        self.potentials.add(stats.potentials as u64);
        self.constraints.add(stats.constraints as u64);
        self.pruned.add(stats.pruned as u64);
        self.candidates_probed.add(stats.candidates_probed as u64);
        self.candidates_scanned.add(stats.candidates_scanned as u64);
        self.terms_reused.add(stats.terms_reused as u64);
        self.terms_recomputed.add(stats.terms_recomputed as u64);
        self.arith_bindings_spliced
            .add(stats.arith_bindings_spliced as u64);
        self.entries_coalesced.add(stats.entries_coalesced as u64);
        self.sources_deduped.add(stats.sources_deduped as u64);
    }
}

/// Output sink for [`ground_rule`].
#[derive(Debug, Default)]
pub struct GroundSink {
    /// Collected potentials.
    pub potentials: Vec<GroundPotential>,
    /// Collected constraints.
    pub constraints: Vec<GroundConstraint>,
    /// Complete-binding → emitted-artifact map recorded by the plan
    /// engine (`ground_rule`), keyed by the slot binding of each
    /// substitution; indices are relative to this sink. This is the splice
    /// table [`crate::Program::reground`] uses to patch single groundings
    /// in place. The naive reference grounder leaves it empty.
    pub(crate) slots: FxHashMap<Vec<Sym>, TermSlot>,
}

/// Ground one rule into `sink`, registering target atoms in `registry`.
///
/// Compiles the rule to a [`JoinPlan`] and executes it against the
/// database's argument-position index. All candidate pools of the rule's
/// positive body literals are arity-validated **before** enumeration
/// starts, so an [`GroundingError::ArityMismatch`] can never leave the sink
/// half-filled.
pub fn ground_rule(
    rule: &LogicalRule,
    db: &Database,
    registry: &mut VarRegistry,
    sink: &mut GroundSink,
) -> Result<GroundStats, GroundingError> {
    let start = Instant::now();
    if !rule.is_safe() {
        return Err(GroundingError::UnsafeRule {
            rule: rule.name.clone(),
        });
    }
    validate_pool_arities(rule, db)?;
    let plan = JoinPlan::compile(rule, db);
    let guard = db.index();
    let idx = guard
        .as_ref()
        .ok_or_else(|| GroundingError::IndexUnavailable {
            rule: rule.name.clone(),
        })?;
    let mut stats = GroundStats::default();
    plan.execute(db, idx, &mut stats, |binding, stats| {
        emit(rule, &plan, db, binding, registry, sink, stats)
    })?;
    stats.wall = start.elapsed();
    Ok(stats)
}

/// Check every candidate pool the join will touch against the literal
/// arities, up front.
fn validate_pool_arities(rule: &LogicalRule, db: &Database) -> Result<(), GroundingError> {
    for lit in rule.body.iter().filter(|l| !l.negated) {
        let want = lit.atom.args.len();
        if db
            .atoms_of(lit.atom.pred)
            .iter()
            .any(|c| c.args.len() != want)
        {
            return Err(GroundingError::ArityMismatch {
                rule: rule.name.clone(),
            });
        }
    }
    Ok(())
}

/// Instantiate one grounding: build its distance-to-satisfaction LinExpr
/// and record the binding → artifact slot for later delta splicing.
pub(crate) fn emit(
    rule: &LogicalRule,
    plan: &JoinPlan,
    db: &Database,
    binding: &[Option<Sym>],
    registry: &mut VarRegistry,
    sink: &mut GroundSink,
    stats: &mut GroundStats,
) -> Result<(), GroundingError> {
    // distance = max(0, 1 − Σ_body (1 − t(B)) − Σ_head t(H))
    let mut expr = LinExpr::constant(1.0);
    for lit in &plan.emit {
        add_literal(lit, db, binding, registry, &mut expr);
    }
    expr.normalize();
    let slot = classify(rule, expr, sink, stats);
    let key: Vec<Sym> = binding
        .iter()
        .map(|s| s.expect("complete binding has no holes"))
        .collect();
    sink.slots.insert(key, slot);
    Ok(())
}

/// Add one literal's affine contribution to the distance expression.
fn add_literal(
    lit: &EmitLiteral,
    db: &Database,
    binding: &[Option<Sym>],
    registry: &mut VarRegistry,
    expr: &mut LinExpr,
) {
    let atom = instantiate(&lit.atom.pred, &lit.atom.terms, binding);
    // The clause contribution of this literal is:
    //   body:  1 − t(lit)   head:  t(lit)
    // and t(lit) = v(atom) for positive, 1 − v(atom) for negated. The
    // contribution is subtracted from the expression. Work out the
    // affine form contribution = base + sign·v(atom):
    let (base, sign) = match (lit.in_body, lit.negated) {
        (true, false) => (1.0, -1.0), // 1 − v
        (true, true) => (0.0, 1.0),   // v
        (false, false) => (0.0, 1.0), // v
        (false, true) => (1.0, -1.0), // 1 − v
    };
    expr.add_constant(-base);
    match db.resolve(&atom) {
        Resolved::Observed(v) => {
            expr.add_constant(-sign * v);
        }
        Resolved::Target => {
            let var = registry.intern(&atom);
            expr.add_term(var, -sign);
        }
    }
}

fn instantiate(
    pred: &crate::predicate::PredId,
    terms: &[SlotTerm],
    binding: &[Option<Sym>],
) -> GroundAtom {
    GroundAtom::new(
        *pred,
        terms
            .iter()
            .map(|t| match *t {
                SlotTerm::Const(k) => k,
                SlotTerm::Slot(s) => binding[s as usize]
                    .expect("grounding produced unbound variable despite safety check"),
            })
            .collect(),
    )
}

/// Route a normalized distance expression to the sink (shared by the plan
/// executor and the naive reference grounder — the *semantics* of a
/// grounding are identical in both). Returns which artifact the grounding
/// produced, with indices relative to `sink`.
fn classify(
    rule: &LogicalRule,
    expr: LinExpr,
    sink: &mut GroundSink,
    stats: &mut GroundStats,
) -> TermSlot {
    // Prune if the hinge can never activate: max over the [0,1] box.
    let max_value: f64 = expr.constant + expr.terms.iter().map(|&(_, c)| c.max(0.0)).sum::<f64>();
    if max_value <= 1e-12 {
        stats.pruned += 1;
        return TermSlot::Pruned;
    }
    if expr.is_constant() {
        // Positive constant distance: nothing to infer.
        match rule.weight {
            Some(w) => {
                let d = expr.constant.max(0.0);
                let loss = if rule.squared { w * d * d } else { w * d };
                stats.constant_loss += loss;
                stats.pruned += 1;
                return TermSlot::ConstLoss(loss);
            }
            None => {
                // A hard rule violated by observations alone: keep it as a
                // constraint so the solver reports infeasibility instead of
                // silently dropping it.
                sink.constraints.push(GroundConstraint {
                    expr,
                    kind: ConstraintKind::LeqZero,
                    origin: rule.name.clone(),
                });
                stats.constraints += 1;
                return TermSlot::Constraint((sink.constraints.len() - 1) as u32);
            }
        }
    }

    match rule.weight {
        Some(w) => {
            sink.potentials.push(GroundPotential {
                expr,
                weight: w,
                squared: rule.squared,
                origin: rule.name.clone(),
            });
            stats.potentials += 1;
            TermSlot::Potential((sink.potentials.len() - 1) as u32)
        }
        None => {
            sink.constraints.push(GroundConstraint {
                expr,
                kind: ConstraintKind::LeqZero,
                origin: rule.name.clone(),
            });
            stats.constraints += 1;
            TermSlot::Constraint((sink.constraints.len() - 1) as u32)
        }
    }
}

/// The pre-index grounder, retained as an independent reference
/// implementation.
///
/// This is the original left-to-right nested-loop join with string-keyed
/// substitutions. It exists so equivalence tests and benches can check the
/// plan-compiled engine against it on identical inputs; production code
/// paths ([`crate::Program::ground`]) never call it.
pub mod reference {
    use super::*;
    use crate::rule::{RAtom, RTerm};

    /// Ground one rule with the naive nested-loop strategy.
    pub fn ground_rule_naive(
        rule: &LogicalRule,
        db: &Database,
        registry: &mut VarRegistry,
        sink: &mut GroundSink,
    ) -> Result<GroundStats, GroundingError> {
        let start = Instant::now();
        if !rule.is_safe() {
            return Err(GroundingError::UnsafeRule {
                rule: rule.name.clone(),
            });
        }
        let mut stats = GroundStats::default();
        let positives: Vec<&Literal> = rule.body.iter().filter(|l| !l.negated).collect();
        let mut substitution: FxHashMap<String, Sym> = FxHashMap::default();
        join(
            rule,
            &positives,
            0,
            db,
            &mut substitution,
            registry,
            sink,
            &mut stats,
        )?;
        stats.wall = start.elapsed();
        Ok(stats)
    }

    /// Recursive join over the positive body literals.
    #[allow(clippy::too_many_arguments)]
    fn join(
        rule: &LogicalRule,
        positives: &[&Literal],
        idx: usize,
        db: &Database,
        substitution: &mut FxHashMap<String, Sym>,
        registry: &mut VarRegistry,
        sink: &mut GroundSink,
        stats: &mut GroundStats,
    ) -> Result<(), GroundingError> {
        let Some(lit) = positives.get(idx) else {
            stats.substitutions += 1;
            emit_naive(rule, db, substitution, registry, sink, stats);
            return Ok(());
        };
        stats.candidates_scanned += db.atoms_of(lit.atom.pred).len();
        for cand in db.atoms_of(lit.atom.pred) {
            if cand.args.len() != lit.atom.args.len() {
                return Err(GroundingError::ArityMismatch {
                    rule: rule.name.clone(),
                });
            }
            let mut bound: Vec<String> = Vec::new();
            if unify(&lit.atom, cand, substitution, &mut bound) {
                join(
                    rule,
                    positives,
                    idx + 1,
                    db,
                    substitution,
                    registry,
                    sink,
                    stats,
                )?;
            }
            for name in bound {
                substitution.remove(&name);
            }
        }
        Ok(())
    }

    fn unify(
        pattern: &RAtom,
        cand: &GroundAtom,
        substitution: &mut FxHashMap<String, Sym>,
        bound: &mut Vec<String>,
    ) -> bool {
        for (t, &c) in pattern.args.iter().zip(cand.args.iter()) {
            match t {
                RTerm::Const(k) => {
                    if *k != c {
                        return false;
                    }
                }
                RTerm::Var(name) => match substitution.get(name) {
                    Some(&v) => {
                        if v != c {
                            return false;
                        }
                    }
                    None => {
                        substitution.insert(name.clone(), c);
                        bound.push(name.clone());
                    }
                },
            }
        }
        true
    }

    /// Instantiate one grounding (string-substitution flavor).
    fn emit_naive(
        rule: &LogicalRule,
        db: &Database,
        substitution: &FxHashMap<String, Sym>,
        registry: &mut VarRegistry,
        sink: &mut GroundSink,
        stats: &mut GroundStats,
    ) {
        let mut expr = LinExpr::constant(1.0);
        let mut add = |lit: &Literal, in_body: bool, expr: &mut LinExpr| {
            let atom = instantiate_naive(&lit.atom, substitution);
            let (base, sign) = match (in_body, lit.negated) {
                (true, false) => (1.0, -1.0),
                (true, true) => (0.0, 1.0),
                (false, false) => (0.0, 1.0),
                (false, true) => (1.0, -1.0),
            };
            expr.add_constant(-base);
            match db.resolve(&atom) {
                Resolved::Observed(v) => {
                    expr.add_constant(-sign * v);
                }
                Resolved::Target => {
                    let var = registry.intern(&atom);
                    expr.add_term(var, -sign);
                }
            }
        };
        for lit in &rule.body {
            add(lit, true, &mut expr);
        }
        for lit in &rule.head {
            add(lit, false, &mut expr);
        }
        expr.normalize();
        classify(rule, expr, sink, stats);
    }

    fn instantiate_naive(pattern: &RAtom, substitution: &FxHashMap<String, Sym>) -> GroundAtom {
        GroundAtom::new(
            pattern.pred,
            pattern
                .args
                .iter()
                .map(|t| match t {
                    RTerm::Const(c) => *c,
                    RTerm::Var(name) => *substitution
                        .get(name)
                        .expect("grounding produced unbound variable despite safety check"),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Vocabulary;
    use crate::rule::{rvar, RTerm, RuleBuilder};

    /// covers(C,T) closed; inMap(C), explained(T) open.
    fn setup() -> (Vocabulary, Database) {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);
        let explained = vocab.open("explained", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["c1", "t1"]), 1.0);
        db.observe(GroundAtom::from_strs(covers, &["c1", "t2"]), 0.5);
        db.observe(GroundAtom::from_strs(covers, &["c2", "t2"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["c1"]));
        db.target(GroundAtom::from_strs(in_map, &["c2"]));
        db.target(GroundAtom::from_strs(explained, &["t1"]));
        db.target(GroundAtom::from_strs(explained, &["t2"]));
        (vocab, db)
    }

    #[test]
    fn grounds_one_potential_per_matching_substitution() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        let rule = RuleBuilder::new("r1")
            .body(covers, vec![rvar("C"), rvar("T")])
            .body(in_map, vec![rvar("C")])
            .head(explained, vec![rvar("T")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 3);
        assert_eq!(stats.potentials, 3);
        assert_eq!(sink.potentials.len(), 3);
        // Each potential references two variables (inMap(C), explained(T)).
        for p in &sink.potentials {
            assert_eq!(p.expr.terms.len(), 2);
        }
        // The two-literal join runs on index probes after the root literal.
        assert!(stats.candidates_probed > 0, "{stats:?}");
    }

    #[test]
    fn observed_truths_fold_into_constant() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        // covers(C,T) & inMap(C) -> explained(T)
        // distance = max(0, 1 − (1−cov) − (1−inMap) − explained)
        // For cov = 0.5: expr = inMap − explained − 0.5.
        let rule = RuleBuilder::new("r1")
            .body(covers, vec![rvar("C"), rvar("T")])
            .body(in_map, vec![rvar("C")])
            .head(explained, vec![rvar("T")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        let half = sink
            .potentials
            .iter()
            .find(|p| (p.expr.constant + 0.5).abs() < 1e-12)
            .expect("grounding for covers=0.5 present");
        // Setting inMap=1, explained=0 gives distance 0.5.
        let mut y = vec![0.0; registry.len()];
        for &(v, _) in &half.expr.terms {
            let atom = registry.atom(v);
            if atom.pred == in_map {
                y[v] = 1.0;
            }
        }
        assert!((half.expr.eval(&y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trivially_satisfied_groundings_are_pruned() {
        let mut vocab = Vocabulary::new();
        let obs = vocab.closed("obs", 1);
        let out = vocab.open("out", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(obs, &["a"]), 0.0); // body truth 0
        db.target(GroundAtom::from_strs(out, &["a"]));
        let rule = RuleBuilder::new("r")
            .body(obs, vec![rvar("X")])
            .head(out, vec![rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        // 1 − (1−0) − out = −out ≤ 0 always: pruned.
        assert_eq!(stats.pruned, 1);
        assert!(sink.potentials.is_empty());
    }

    #[test]
    fn constant_violation_accumulates_loss() {
        let mut vocab = Vocabulary::new();
        let obs = vocab.closed("obs", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(obs, &["a"]), 0.8);
        // Penalize obs(X): distance = max(0, 1 − (1−0.8)) = 0.8, constant.
        let rule = RuleBuilder::new("pen")
            .body(obs, vec![rvar("X")])
            .weight(2.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert!((stats.constant_loss - 1.6).abs() < 1e-12);
        assert!(sink.potentials.is_empty());
    }

    #[test]
    fn hard_rules_become_constraints() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let rule = RuleBuilder::new("hard")
            .body(covers, vec![rvar("C"), rvar("T")])
            .head(in_map, vec![rvar("C")])
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.constraints, 3);
        assert!(stats.potentials == 0);
    }

    #[test]
    fn constants_restrict_substitutions() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        let rule = RuleBuilder::new("only-c2")
            .body(covers, vec![rconst_local("c2"), rvar("T")])
            .head(explained, vec![rvar("T")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 1);
        // The constant argument turns the root literal into an index probe:
        // only the single covers(c2,·) atom is ever touched.
        assert_eq!(stats.candidates_probed, 1);
        assert_eq!(stats.candidates_scanned, 0);
    }

    fn rconst_local(s: &str) -> RTerm {
        crate::rule::rconst(s)
    }

    #[test]
    fn repeated_variables_join() {
        let mut vocab = Vocabulary::new();
        let edge = vocab.closed("edge", 2);
        let flag = vocab.open("flag", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(edge, &["a", "a"]), 1.0);
        db.observe(GroundAtom::from_strs(edge, &["a", "b"]), 1.0);
        db.target(GroundAtom::from_strs(flag, &["a"]));
        db.target(GroundAtom::from_strs(flag, &["b"]));
        let rule = RuleBuilder::new("self")
            .body(edge, vec![rvar("X"), rvar("X")])
            .head(flag, vec![rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 1);
    }

    #[test]
    fn negated_body_literal_resolves() {
        let mut vocab = Vocabulary::new();
        let scope = vocab.closed("scope", 1);
        let bad = vocab.closed("bad", 1);
        let out = vocab.open("out", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(scope, &["a"]), 1.0);
        db.observe(GroundAtom::from_strs(scope, &["b"]), 1.0);
        db.observe(GroundAtom::from_strs(bad, &["b"]), 1.0);
        db.target(GroundAtom::from_strs(out, &["a"]));
        db.target(GroundAtom::from_strs(out, &["b"]));
        // scope(X) & !bad(X) -> out(X): for b the body truth is 0 → pruned;
        // for a (bad unobserved = 0 by CWA) the potential 1 − out(a) remains.
        let rule = RuleBuilder::new("neg")
            .body(scope, vec![rvar("X")])
            .body_neg(bad, vec![rvar("X")])
            .head(out, vec![rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 2);
        assert_eq!(stats.potentials, 1);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn arity_mismatch_detected_before_any_emission() {
        let mut vocab = Vocabulary::new();
        let p = vocab.closed("p", 2);
        let out = vocab.open("out", 1);
        let mut db = Database::new();
        // Pool atoms with arity 1 under a literal written with arity 2 —
        // previously this aborted mid-enumeration; now it fails up front.
        db.observe(GroundAtom::from_strs(p, &["a"]), 1.0);
        db.target(GroundAtom::from_strs(out, &["a"]));
        let rule = RuleBuilder::new("bad")
            .body(p, vec![rvar("X"), rvar("Y")])
            .head(out, vec![rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let err = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap_err();
        assert_eq!(err, GroundingError::ArityMismatch { rule: "bad".into() });
        assert!(sink.potentials.is_empty() && sink.constraints.is_empty());
        assert!(registry.is_empty());
    }

    /// Canonical form of a sink for cross-engine comparison: var indices
    /// are replaced by atom strings so registry order does not matter.
    fn canonical(sink: &GroundSink, registry: &VarRegistry) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &sink.potentials {
            let mut terms: Vec<String> = p
                .expr
                .terms
                .iter()
                .map(|&(v, c)| format!("{c:.9}*{}", registry.atom(v)))
                .collect();
            terms.sort();
            out.push(format!(
                "P {} w={:.9} sq={} c={:.9} {}",
                p.origin,
                p.weight,
                p.squared,
                p.expr.constant,
                terms.join(" + ")
            ));
        }
        for c in &sink.constraints {
            let mut terms: Vec<String> = c
                .expr
                .terms
                .iter()
                .map(|&(v, k)| format!("{k:.9}*{}", registry.atom(v)))
                .collect();
            terms.sort();
            out.push(format!(
                "C {} {:?} c={:.9} {}",
                c.origin,
                c.kind,
                c.expr.constant,
                terms.join(" + ")
            ));
        }
        out.sort();
        out
    }

    #[test]
    fn plan_engine_matches_naive_reference_on_joins() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        for rule in [
            RuleBuilder::new("soft")
                .body(covers, vec![rvar("C"), rvar("T")])
                .body(in_map, vec![rvar("C")])
                .head(explained, vec![rvar("T")])
                .weight(1.5)
                .build(),
            RuleBuilder::new("hard")
                .body(covers, vec![rvar("C"), rvar("T")])
                .head(in_map, vec![rvar("C")])
                .build(),
            RuleBuilder::new("const")
                .body(covers, vec![rconst_local("c2"), rvar("T")])
                .head(explained, vec![rvar("T")])
                .weight(2.0)
                .squared()
                .build(),
        ] {
            let mut reg_a = VarRegistry::new();
            let mut sink_a = GroundSink::default();
            let sa = ground_rule(&rule, &db, &mut reg_a, &mut sink_a).unwrap();
            let mut reg_b = VarRegistry::new();
            let mut sink_b = GroundSink::default();
            let sb = reference::ground_rule_naive(&rule, &db, &mut reg_b, &mut sink_b).unwrap();
            assert_eq!(sa.substitutions, sb.substitutions, "{}", rule.name);
            assert_eq!(sa.potentials, sb.potentials, "{}", rule.name);
            assert_eq!(sa.constraints, sb.constraints, "{}", rule.name);
            assert_eq!(sa.pruned, sb.pruned, "{}", rule.name);
            assert_eq!(
                canonical(&sink_a, &reg_a),
                canonical(&sink_b, &reg_b),
                "{}",
                rule.name
            );
        }
    }
}

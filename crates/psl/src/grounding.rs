//! Grounding: instantiate rule templates over the database.
//!
//! Substitutions are enumerated by joining the rule's *positive body
//! literals* against the database's known-atom pools (observed ∪ target
//! atoms per predicate) — the same lazy strategy PSL uses: an unobserved
//! closed atom has truth 0, so a grounding whose positive body mentions one
//! can never have positive distance-to-satisfaction *unless* the atom is
//! negated or in the head, which resolution handles via the closed-world
//! default.
//!
//! Each grounding compiles to a [`LinExpr`] for the distance to
//! satisfaction; groundings that are trivially satisfied for every value of
//! the target variables (`max over the [0,1] box ≤ 0`) are pruned.

use crate::atom::GroundAtom;
use crate::database::{Database, Resolved};
use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use crate::linear::LinExpr;
use crate::rule::{Literal, LogicalRule, RAtom, RTerm};
use cms_data::{FxHashMap, Sym};

/// Maps target atoms to dense variable indices; owns the variable order.
#[derive(Clone, Debug, Default)]
pub struct VarRegistry {
    atoms: Vec<GroundAtom>,
    index: FxHashMap<GroundAtom, usize>,
}

impl VarRegistry {
    /// Empty registry.
    pub fn new() -> VarRegistry {
        VarRegistry::default()
    }

    /// Index of `atom`, registering it if new.
    pub fn intern(&mut self, atom: &GroundAtom) -> usize {
        if let Some(&i) = self.index.get(atom) {
            return i;
        }
        let i = self.atoms.len();
        self.atoms.push(atom.clone());
        self.index.insert(atom.clone(), i);
        i
    }

    /// Index of `atom` if registered.
    pub fn lookup(&self, atom: &GroundAtom) -> Option<usize> {
        self.index.get(atom).copied()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True iff no variables registered.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom of variable `i`.
    pub fn atom(&self, i: usize) -> &GroundAtom {
        &self.atoms[i]
    }

    /// All atoms in variable order.
    pub fn atoms(&self) -> &[GroundAtom] {
        &self.atoms
    }
}

/// Failures during grounding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GroundingError {
    /// A rule has a variable not bound by any positive body literal.
    UnsafeRule {
        /// The rule's diagnostic name.
        rule: String,
    },
    /// A rule atom's argument count disagrees with its predicate.
    ArityMismatch {
        /// The rule's diagnostic name.
        rule: String,
    },
    /// An arithmetic rule failed to ground.
    Arith(crate::arith::ArithError),
}

impl std::fmt::Display for GroundingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroundingError::UnsafeRule { rule } => write!(f, "rule {rule:?} is unsafe"),
            GroundingError::ArityMismatch { rule } => {
                write!(f, "rule {rule:?} has an atom with wrong arity")
            }
            GroundingError::Arith(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GroundingError {}

/// Per-rule grounding statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroundStats {
    /// Substitutions enumerated.
    pub substitutions: usize,
    /// Potentials emitted (weighted rules).
    pub potentials: usize,
    /// Constraints emitted (hard rules).
    pub constraints: usize,
    /// Groundings pruned as trivially satisfied.
    pub pruned: usize,
    /// Objective contribution of groundings whose distance is a positive
    /// constant (no free variables) — charged regardless of inference.
    pub constant_loss: f64,
}

/// Output sink for [`ground_rule`].
#[derive(Debug, Default)]
pub struct GroundSink {
    /// Collected potentials.
    pub potentials: Vec<GroundPotential>,
    /// Collected constraints.
    pub constraints: Vec<GroundConstraint>,
}

/// Ground one rule into `sink`, registering target atoms in `registry`.
pub fn ground_rule(
    rule: &LogicalRule,
    db: &Database,
    registry: &mut VarRegistry,
    sink: &mut GroundSink,
) -> Result<GroundStats, GroundingError> {
    if !rule.is_safe() {
        return Err(GroundingError::UnsafeRule { rule: rule.name.clone() });
    }
    let mut stats = GroundStats::default();
    let positives: Vec<&Literal> = rule.body.iter().filter(|l| !l.negated).collect();
    let mut substitution: FxHashMap<String, Sym> = FxHashMap::default();
    join(
        rule,
        &positives,
        0,
        db,
        &mut substitution,
        registry,
        sink,
        &mut stats,
    )?;
    Ok(stats)
}

/// Recursive join over the positive body literals.
#[allow(clippy::too_many_arguments)]
fn join(
    rule: &LogicalRule,
    positives: &[&Literal],
    idx: usize,
    db: &Database,
    substitution: &mut FxHashMap<String, Sym>,
    registry: &mut VarRegistry,
    sink: &mut GroundSink,
    stats: &mut GroundStats,
) -> Result<(), GroundingError> {
    let Some(lit) = positives.get(idx) else {
        stats.substitutions += 1;
        emit(rule, db, substitution, registry, sink, stats)?;
        return Ok(());
    };
    for cand in db.atoms_of(lit.atom.pred) {
        if cand.args.len() != lit.atom.args.len() {
            return Err(GroundingError::ArityMismatch { rule: rule.name.clone() });
        }
        let mut bound: Vec<String> = Vec::new();
        if unify(&lit.atom, cand, substitution, &mut bound) {
            join(rule, positives, idx + 1, db, substitution, registry, sink, stats)?;
        }
        for name in bound {
            substitution.remove(&name);
        }
    }
    Ok(())
}

fn unify(
    pattern: &RAtom,
    cand: &GroundAtom,
    substitution: &mut FxHashMap<String, Sym>,
    bound: &mut Vec<String>,
) -> bool {
    for (t, &c) in pattern.args.iter().zip(cand.args.iter()) {
        match t {
            RTerm::Const(k) => {
                if *k != c {
                    return false;
                }
            }
            RTerm::Var(name) => match substitution.get(name) {
                Some(&v) => {
                    if v != c {
                        return false;
                    }
                }
                None => {
                    substitution.insert(name.clone(), c);
                    bound.push(name.clone());
                }
            },
        }
    }
    true
}

/// Instantiate one grounding: build its distance-to-satisfaction LinExpr.
fn emit(
    rule: &LogicalRule,
    db: &Database,
    substitution: &FxHashMap<String, Sym>,
    registry: &mut VarRegistry,
    sink: &mut GroundSink,
    stats: &mut GroundStats,
) -> Result<(), GroundingError> {
    // distance = max(0, 1 − Σ_body (1 − t(B)) − Σ_head t(H))
    let mut expr = LinExpr::constant(1.0);
    let mut add_literal = |lit: &Literal, in_body: bool, expr: &mut LinExpr| {
        let atom = instantiate(&lit.atom, substitution);
        // The clause contribution of this literal is:
        //   body:  1 − t(lit)   head:  t(lit)
        // and t(lit) = v(atom) for positive, 1 − v(atom) for negated. The
        // contribution is subtracted from the expression. Work out the
        // affine form contribution = base + sign·v(atom):
        let (base, sign) = match (in_body, lit.negated) {
            (true, false) => (1.0, -1.0), // 1 − v
            (true, true) => (0.0, 1.0),   // v
            (false, false) => (0.0, 1.0), // v
            (false, true) => (1.0, -1.0), // 1 − v
        };
        expr.add_constant(-base);
        match db.resolve(&atom) {
            Resolved::Observed(v) => {
                expr.add_constant(-sign * v);
            }
            Resolved::Target => {
                let var = registry.intern(&atom);
                expr.add_term(var, -sign);
            }
        }
    };
    for lit in &rule.body {
        add_literal(lit, true, &mut expr);
    }
    for lit in &rule.head {
        add_literal(lit, false, &mut expr);
    }
    expr.normalize();

    // Prune if the hinge can never activate: max over the [0,1] box.
    let max_value: f64 = expr.constant + expr.terms.iter().map(|&(_, c)| c.max(0.0)).sum::<f64>();
    if max_value <= 1e-12 {
        stats.pruned += 1;
        return Ok(());
    }
    if expr.is_constant() {
        // Positive constant distance: nothing to infer.
        match rule.weight {
            Some(w) => {
                let d = expr.constant.max(0.0);
                stats.constant_loss += if rule.squared { w * d * d } else { w * d };
                stats.pruned += 1;
            }
            None => {
                // A hard rule violated by observations alone: keep it as a
                // constraint so the solver reports infeasibility instead of
                // silently dropping it.
                sink.constraints.push(GroundConstraint {
                    expr,
                    kind: ConstraintKind::LeqZero,
                    origin: rule.name.clone(),
                });
                stats.constraints += 1;
            }
        }
        return Ok(());
    }

    match rule.weight {
        Some(w) => {
            sink.potentials.push(GroundPotential {
                expr,
                weight: w,
                squared: rule.squared,
                origin: rule.name.clone(),
            });
            stats.potentials += 1;
        }
        None => {
            sink.constraints.push(GroundConstraint {
                expr,
                kind: ConstraintKind::LeqZero,
                origin: rule.name.clone(),
            });
            stats.constraints += 1;
        }
    }
    Ok(())
}

fn instantiate(pattern: &RAtom, substitution: &FxHashMap<String, Sym>) -> GroundAtom {
    GroundAtom::new(
        pattern.pred,
        pattern
            .args
            .iter()
            .map(|t| match t {
                RTerm::Const(c) => *c,
                RTerm::Var(name) => *substitution
                    .get(name)
                    .expect("grounding produced unbound variable despite safety check"),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Vocabulary;
    use crate::rule::{rvar, RuleBuilder};

    /// covers(C,T) closed; inMap(C), explained(T) open.
    fn setup() -> (Vocabulary, Database) {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);
        let explained = vocab.open("explained", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["c1", "t1"]), 1.0);
        db.observe(GroundAtom::from_strs(covers, &["c1", "t2"]), 0.5);
        db.observe(GroundAtom::from_strs(covers, &["c2", "t2"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["c1"]));
        db.target(GroundAtom::from_strs(in_map, &["c2"]));
        db.target(GroundAtom::from_strs(explained, &["t1"]));
        db.target(GroundAtom::from_strs(explained, &["t2"]));
        (vocab, db)
    }

    #[test]
    fn grounds_one_potential_per_matching_substitution() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        let rule = RuleBuilder::new("r1")
            .body(covers, vec![rvar("C"), rvar("T")])
            .body(in_map, vec![rvar("C")])
            .head(explained, vec![rvar("T")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 3);
        assert_eq!(stats.potentials, 3);
        assert_eq!(sink.potentials.len(), 3);
        // Each potential references two variables (inMap(C), explained(T)).
        for p in &sink.potentials {
            assert_eq!(p.expr.terms.len(), 2);
        }
    }

    #[test]
    fn observed_truths_fold_into_constant() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        // covers(C,T) & inMap(C) -> explained(T)
        // distance = max(0, 1 − (1−cov) − (1−inMap) − explained)
        //          = max(0, cov − 1 + inMap − explained + ... )
        // For cov = 0.5: expr = inMap − explained − 0.5.
        let rule = RuleBuilder::new("r1")
            .body(covers, vec![rvar("C"), rvar("T")])
            .body(in_map, vec![rvar("C")])
            .head(explained, vec![rvar("T")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        let half = sink
            .potentials
            .iter()
            .find(|p| (p.expr.constant + 0.5).abs() < 1e-12)
            .expect("grounding for covers=0.5 present");
        // Setting inMap=1, explained=0 gives distance 0.5.
        let mut y = vec![0.0; registry.len()];
        for &(v, _) in &half.expr.terms {
            let atom = registry.atom(v);
            if atom.pred == in_map {
                y[v] = 1.0;
            }
        }
        assert!((half.expr.eval(&y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trivially_satisfied_groundings_are_pruned() {
        let mut vocab = Vocabulary::new();
        let obs = vocab.closed("obs", 1);
        let out = vocab.open("out", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(obs, &["a"]), 0.0); // body truth 0
        db.target(GroundAtom::from_strs(out, &["a"]));
        let rule = RuleBuilder::new("r")
            .body(obs, vec![rvar("X")])
            .head(out, vec![rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        // 1 − (1−0) − out = −out ≤ 0 always: pruned.
        assert_eq!(stats.pruned, 1);
        assert!(sink.potentials.is_empty());
    }

    #[test]
    fn constant_violation_accumulates_loss() {
        let mut vocab = Vocabulary::new();
        let obs = vocab.closed("obs", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(obs, &["a"]), 0.8);
        // Penalize obs(X): distance = max(0, 1 − (1−0.8)) = 0.8, constant.
        let rule = RuleBuilder::new("pen")
            .body(obs, vec![rvar("X")])
            .weight(2.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert!((stats.constant_loss - 1.6).abs() < 1e-12);
        assert!(sink.potentials.is_empty());
    }

    #[test]
    fn hard_rules_become_constraints() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let rule = RuleBuilder::new("hard")
            .body(covers, vec![rvar("C"), rvar("T")])
            .head(in_map, vec![rvar("C")])
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.constraints, 3);
        assert!(stats.potentials == 0);
    }

    #[test]
    fn constants_restrict_substitutions() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        let rule = RuleBuilder::new("only-c2")
            .body(covers, vec![rconst_local("c2"), rvar("T")])
            .head(explained, vec![rvar("T")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 1);
    }

    fn rconst_local(s: &str) -> RTerm {
        crate::rule::rconst(s)
    }

    #[test]
    fn repeated_variables_join() {
        let mut vocab = Vocabulary::new();
        let edge = vocab.closed("edge", 2);
        let flag = vocab.open("flag", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(edge, &["a", "a"]), 1.0);
        db.observe(GroundAtom::from_strs(edge, &["a", "b"]), 1.0);
        db.target(GroundAtom::from_strs(flag, &["a"]));
        db.target(GroundAtom::from_strs(flag, &["b"]));
        let rule = RuleBuilder::new("self")
            .body(edge, vec![rvar("X"), rvar("X")])
            .head(flag, vec![rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 1);
    }

    #[test]
    fn negated_body_literal_resolves() {
        let mut vocab = Vocabulary::new();
        let scope = vocab.closed("scope", 1);
        let bad = vocab.closed("bad", 1);
        let out = vocab.open("out", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(scope, &["a"]), 1.0);
        db.observe(GroundAtom::from_strs(scope, &["b"]), 1.0);
        db.observe(GroundAtom::from_strs(bad, &["b"]), 1.0);
        db.target(GroundAtom::from_strs(out, &["a"]));
        db.target(GroundAtom::from_strs(out, &["b"]));
        // scope(X) & !bad(X) -> out(X): for b the body truth is 0 → pruned;
        // for a (bad unobserved = 0 by CWA) the potential 1 − out(a) remains.
        let rule = RuleBuilder::new("neg")
            .body(scope, vec![rvar("X")])
            .body_neg(bad, vec![rvar("X")])
            .head(out, vec![rvar("X")])
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let stats = ground_rule(&rule, &db, &mut registry, &mut sink).unwrap();
        assert_eq!(stats.substitutions, 2);
        assert_eq!(stats.potentials, 1);
        assert_eq!(stats.pruned, 1);
    }
}

//! Linear expressions over MAP variables.

/// `constant + Σ coef_i · y_{var_i}` over the ground program's variables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable index, coefficient)` pairs; normalized form has unique,
    /// sorted variable indices and no zero coefficients.
    pub terms: Vec<(usize, f64)>,
    /// The constant offset.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> LinExpr {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Add `coef · y_var`.
    pub fn add_term(&mut self, var: usize, coef: f64) -> &mut LinExpr {
        self.terms.push((var, coef));
        self
    }

    /// Add a constant.
    pub fn add_constant(&mut self, c: f64) -> &mut LinExpr {
        self.constant += c;
        self
    }

    /// Merge duplicate variables, drop zero coefficients, sort by variable.
    pub fn normalize(&mut self) {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        self.terms = out;
    }

    /// Evaluate under an assignment (indexing into `values`).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * values[v]).sum::<f64>()
    }

    /// Squared L2 norm of the coefficient vector.
    pub fn coef_norm_sq(&self) -> f64 {
        self.terms.iter().map(|&(_, c)| c * c).sum()
    }

    /// True iff the expression involves no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_norm() {
        let mut e = LinExpr::constant(1.0);
        e.add_term(0, 2.0).add_term(2, -1.0);
        assert_eq!(e.eval(&[0.5, 9.0, 1.0]), 1.0 + 1.0 - 1.0);
        assert_eq!(e.coef_norm_sq(), 5.0);
        assert!(!e.is_constant());
        assert!(LinExpr::constant(3.0).is_constant());
    }

    #[test]
    fn normalize_merges_and_drops_zeros() {
        let mut e = LinExpr::new();
        e.add_term(3, 1.0)
            .add_term(1, 2.0)
            .add_term(3, -1.0)
            .add_term(1, 0.5);
        e.normalize();
        assert_eq!(e.terms, vec![(1, 2.5)]);
    }
}

//! Programs: vocabulary + database + rules, grounded into a solvable form.
//!
//! Besides logical rules, programs support **raw linear terms** over ground
//! atoms. The CMS encoding needs one construct PSL expresses as an
//! arithmetic rule: the explanation cap
//! `explained(T) ≤ Σ_C covers(C,T) · inMap(C)`, whose coefficients come from
//! observed atoms. [`Program::add_raw_constraint`] and
//! [`Program::add_raw_potential`] cover that: observed atoms in the linear
//! combination fold into the constant, target atoms become variables.

use crate::admm::{AdmmConfig, AdmmSolution, AdmmSolver, DualState, WarmStart};
use crate::arith::{ground_arith_rule_naive, ground_arith_rule_recorded, ArithRule};
use crate::atom::GroundAtom;
use crate::database::{Database, Resolved};
use crate::delta::{ArithSegment, DualReuse, RawSlot, RuleSegment, SpliceSupport, NO_PRIOR};
use crate::grounding::{
    ground_rule, reference::ground_rule_naive, GroundSink, GroundStats, GroundingError, VarRegistry,
};
use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use crate::linear::LinExpr;
use crate::predicate::Vocabulary;
use crate::rule::LogicalRule;
use cms_data::FxHashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A linear combination of ground atoms plus a constant.
#[derive(Clone, Debug, Default)]
pub struct AtomLin {
    /// `(atom, coefficient)` pairs.
    pub terms: Vec<(GroundAtom, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl AtomLin {
    /// Empty combination.
    pub fn new() -> AtomLin {
        AtomLin::default()
    }

    /// Add `coef · atom`.
    pub fn add(&mut self, atom: GroundAtom, coef: f64) -> &mut AtomLin {
        self.terms.push((atom, coef));
        self
    }

    /// Add a constant.
    pub fn add_constant(&mut self, c: f64) -> &mut AtomLin {
        self.constant += c;
        self
    }
}

pub(crate) enum RawKind {
    Potential { weight: f64, squared: bool },
    Constraint { kind: ConstraintKind },
}

pub(crate) struct RawTerm {
    lin: AtomLin,
    kind: RawKind,
    origin: String,
}

impl RawTerm {
    /// The ground atoms this raw term references.
    pub(crate) fn atoms(&self) -> impl Iterator<Item = &GroundAtom> {
        self.lin.terms.iter().map(|(a, _)| a)
    }

    /// Diagnostic origin label.
    pub(crate) fn origin(&self) -> &str {
        &self.origin
    }
}

/// What grounding one raw term yields (see [`Program::raw_artifact`]).
pub(crate) enum RawArtifact {
    /// A weighted potential over at least one free variable.
    Potential(GroundPotential),
    /// A hard constraint.
    Constraint(GroundConstraint),
    /// A constant objective contribution (fully observed potential).
    ConstLoss(f64),
}

/// A PSL program: declarations, data, rules, raw terms.
pub struct Program {
    /// The predicate vocabulary.
    pub vocab: Vocabulary,
    /// Observations and targets.
    pub db: Database,
    pub(crate) rules: Vec<LogicalRule>,
    pub(crate) arith_rules: Vec<ArithRule>,
    raw: Vec<RawTerm>,
}

impl Program {
    /// A program over the given vocabulary with an empty database.
    pub fn new(vocab: Vocabulary) -> Program {
        Program {
            vocab,
            db: Database::new(),
            rules: Vec::new(),
            arith_rules: Vec::new(),
            raw: Vec::new(),
        }
    }

    /// Add a logical rule.
    pub fn add_rule(&mut self, rule: LogicalRule) {
        self.rules.push(rule);
    }

    /// Add an arithmetic rule (see [`crate::arith`]).
    pub fn add_arith_rule(&mut self, rule: ArithRule) {
        self.arith_rules.push(rule);
    }

    /// Add a hard linear constraint `lin ≤ 0` or `lin = 0` over atoms.
    pub fn add_raw_constraint(&mut self, lin: AtomLin, kind: ConstraintKind, origin: &str) {
        self.raw.push(RawTerm {
            lin,
            kind: RawKind::Constraint { kind },
            origin: origin.to_owned(),
        });
    }

    /// Add a weighted potential `w · max(0, lin)^p` over atoms.
    pub fn add_raw_potential(&mut self, lin: AtomLin, weight: f64, squared: bool, origin: &str) {
        self.raw.push(RawTerm {
            lin,
            kind: RawKind::Potential { weight, squared },
            origin: origin.to_owned(),
        });
    }

    /// Ground all rules and raw terms.
    ///
    /// Logical rules are grounded with the plan-compiled index-probing
    /// engine ([`crate::grounding`]), in parallel across rules when the
    /// machine has more than one core. The result is deterministic and
    /// independent of the thread count — see [`Program::ground_with`].
    pub fn ground(&self) -> Result<GroundProgram, GroundingError> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.ground_with(threads)
    }

    /// Ground with an explicit worker-thread budget for the logical rules.
    ///
    /// Every rule is grounded into its own [`GroundSink`] with its own
    /// local [`VarRegistry`]; the per-rule results are then merged **in
    /// rule declaration order**, interning each local registry's atoms into
    /// the global one and remapping variable ids. Because the merge order
    /// is fixed, the returned program — variable order included — is
    /// identical for every `threads` value.
    pub fn ground_with(&self, threads: usize) -> Result<GroundProgram, GroundingError> {
        let _span = cms_obs::span("ground");
        self.validate_rule_arities()?;
        let per_rule = self.ground_rules_locally(threads);

        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let mut stats: FxHashMap<String, GroundStats> = FxHashMap::default();
        let mut segments: Vec<RuleSegment> = Vec::with_capacity(self.rules.len());
        let mut constant_loss = 0.0;
        for (rule, result) in self.rules.iter().zip(per_rule) {
            let rg = result?;
            // Two-phase interning: local var id → global var id, in the
            // local first-occurrence order, which a sequential shared
            // registry would also have produced.
            let map: Vec<usize> = rg
                .registry
                .atoms()
                .iter()
                .map(|a| registry.intern(a))
                .collect();
            segments.push(RuleSegment {
                pots: rg.sink.potentials.len(),
                cons: rg.sink.constraints.len(),
                slots: rg.sink.slots,
                stats: rg.stats.clone(),
            });
            for mut p in rg.sink.potentials {
                remap_expr(&mut p.expr, &map);
                sink.potentials.push(p);
            }
            for mut c in rg.sink.constraints {
                remap_expr(&mut c.expr, &map);
                sink.constraints.push(c);
            }
            constant_loss += rg.stats.constant_loss;
            stats
                .entry(rule.name.clone())
                .or_default()
                .absorb(&rg.stats);
        }
        self.finish_ground(registry, sink, stats, constant_loss, false, Some(segments))
    }

    /// Ground every logical rule into a local registry/sink, possibly in
    /// parallel. Results are positionally aligned with `self.rules`.
    fn ground_rules_locally(&self, threads: usize) -> Vec<Result<RuleGrounding, GroundingError>> {
        let all: Vec<usize> = (0..self.rules.len()).collect();
        self.ground_rule_set_locally(&all, threads)
    }

    /// Ground a subset of the logical rules (given as indices into
    /// `self.rules`) into rule-local registries/sinks, sharded across
    /// `threads` workers. Results are positionally aligned with `indices`.
    /// Shared by the full grounding and the delta regrounder's pool-delta
    /// path, which only re-grounds the dirty rules.
    pub(crate) fn ground_rule_set_locally(
        &self,
        indices: &[usize],
        threads: usize,
    ) -> Vec<Result<RuleGrounding, GroundingError>> {
        let n = indices.len();
        let workers = threads.min(n).max(1);
        // Per-rule spans parent under the caller's open `ground` span
        // explicitly, so rules grounded on worker threads attribute to
        // the right program grounding.
        let parent = cms_obs::current_span();
        let ground_one = |rule: &LogicalRule| {
            let _span = cms_obs::span_with_parent(format!("ground/rule/{}", rule.name), parent);
            let mut registry = VarRegistry::new();
            let mut sink = GroundSink::default();
            ground_rule(rule, &self.db, &mut registry, &mut sink).map(|stats| RuleGrounding {
                registry,
                sink,
                stats,
            })
        };
        if workers == 1 || n <= 1 {
            return indices
                .iter()
                .map(|&i| ground_one(&self.rules[i]))
                .collect();
        }
        // Build the shared index before fanning out so workers only take
        // read locks.
        self.db.ensure_index();
        let mut results: Vec<Option<Result<RuleGrounding, GroundingError>>> =
            (0..n).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (next, ground_one) = (&next, &ground_one);
                    scope.spawn(move || {
                        // Named trace track for the Perfetto export.
                        cms_obs::set_thread_track(format!("ground-worker-{w}"));
                        let mut out: Vec<(usize, Result<RuleGrounding, GroundingError>)> =
                            Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, ground_one(&self.rules[indices[i]])));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("grounding worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every rule claimed by exactly one worker"))
            .collect()
    }

    /// Ground with the retained naive reference grounder (sequential,
    /// string-keyed nested loops). Exists for equivalence tests and the
    /// grounding benches; production callers use [`Program::ground`].
    pub fn ground_naive(&self) -> Result<GroundProgram, GroundingError> {
        self.validate_rule_arities()?;
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let mut stats: FxHashMap<String, GroundStats> = FxHashMap::default();
        let mut constant_loss = 0.0;
        for rule in &self.rules {
            let s = ground_rule_naive(rule, &self.db, &mut registry, &mut sink)?;
            constant_loss += s.constant_loss;
            stats.entry(rule.name.clone()).or_default().absorb(&s);
        }
        self.finish_ground(registry, sink, stats, constant_loss, true, None)
    }

    /// Validate every logical-rule atom against the vocabulary (arity
    /// agreement) before grounding starts, so no engine can abort
    /// mid-enumeration over a malformed rule.
    pub(crate) fn validate_rule_arities(&self) -> Result<(), GroundingError> {
        for rule in &self.rules {
            for lit in rule.body.iter().chain(rule.head.iter()) {
                if lit.atom.pred.index() < self.vocab.len()
                    && self.vocab.predicate(lit.atom.pred).arity != lit.atom.args.len()
                {
                    return Err(GroundingError::ArityMismatch {
                        rule: rule.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Shared tail of all grounding paths: arithmetic rules, raw terms,
    /// assembly of the [`GroundProgram`]. `naive_arith` selects the
    /// reference (scan-only) arithmetic grounder for
    /// [`Program::ground_naive`]; `rule_segments` carries the per-rule
    /// splice segmentation of the plan-compiled paths (`None` disables
    /// splice support on the result). The plan path additionally records
    /// each arithmetic rule's per-free-binding splice table.
    fn finish_ground(
        &self,
        mut registry: VarRegistry,
        mut sink: GroundSink,
        mut stats: FxHashMap<String, GroundStats>,
        mut constant_loss: f64,
        naive_arith: bool,
        rule_segments: Option<Vec<RuleSegment>>,
    ) -> Result<GroundProgram, GroundingError> {
        let mut arith_segments: Vec<ArithSegment> = Vec::with_capacity(self.arith_rules.len());
        for rule in &self.arith_rules {
            let _span = cms_obs::span(format!("ground/arith/{}", rule.name));
            let start = std::time::Instant::now();
            let p0 = sink.potentials.len();
            let c0 = sink.constraints.len();
            let (astats, table) = if naive_arith {
                let s = ground_arith_rule_naive(
                    rule,
                    &self.db,
                    &mut registry,
                    &mut sink.potentials,
                    &mut sink.constraints,
                )?;
                (s, None)
            } else {
                let (s, t) = ground_arith_rule_recorded(
                    rule,
                    &self.db,
                    &mut registry,
                    &mut sink.potentials,
                    &mut sink.constraints,
                )?;
                (s, Some(t))
            };
            let mut rstats = GroundStats {
                substitutions: astats.groundings,
                potentials: astats.potentials,
                constraints: astats.constraints,
                ..GroundStats::default()
            };
            rstats.wall = start.elapsed();
            stats.entry(rule.name.clone()).or_default().absorb(&rstats);
            if let Some(table) = table {
                arith_segments.push(ArithSegment {
                    pots: sink.potentials.len() - p0,
                    cons: sink.constraints.len() - c0,
                    stats: rstats,
                    table,
                });
            }
        }
        let mut raw_slots: Vec<RawSlot> = Vec::with_capacity(self.raw.len());
        for raw in &self.raw {
            match self.raw_artifact(raw, &mut registry) {
                RawArtifact::Potential(p) => {
                    sink.potentials.push(p);
                    raw_slots.push(RawSlot::Potential);
                }
                RawArtifact::Constraint(c) => {
                    sink.constraints.push(c);
                    raw_slots.push(RawSlot::Constraint);
                }
                RawArtifact::ConstLoss(d) => {
                    constant_loss += d;
                    raw_slots.push(RawSlot::ConstLoss(d));
                }
            }
        }
        // Splice support is all-or-nothing: a segment list shorter than
        // the rule list would make `reground` silently mis-splice the
        // tail, so the pairing of `rule_segments` with the recording arith
        // grounder is enforced here rather than assumed.
        assert!(
            rule_segments.is_none() || arith_segments.len() == self.arith_rules.len(),
            "splice support requires one recorded segment per arithmetic rule"
        );
        if cms_obs::enabled(cms_obs::ObsLevel::Stats) {
            let mut total = GroundStats::default();
            for s in stats.values() {
                total.absorb(s);
            }
            total.bump_registry("ground");
        }
        if cms_obs::enabled(cms_obs::ObsLevel::Journal) {
            // One typed event per rule-stats entry, in declaration order
            // (entries sharing a rule name were already absorbed into one).
            let mut seen = std::collections::HashSet::new();
            let names = self
                .rules
                .iter()
                .map(|r| &r.name)
                .chain(self.arith_rules.iter().map(|r| &r.name));
            for name in names {
                if let (true, Some(s)) = (seen.insert(name.clone()), stats.get(name)) {
                    cms_obs::emit(cms_obs::Event::Ground {
                        rule: name.clone(),
                        counters: s.obs_counters(),
                    });
                }
            }
        }
        Ok(GroundProgram {
            registry,
            potentials: sink.potentials,
            constraints: sink.constraints,
            constant_loss,
            rule_stats: stats,
            splice: rule_segments.map(|rules| SpliceSupport {
                rules,
                arith: arith_segments,
                raw: raw_slots,
            }),
            dual_reuse: None,
            stamp: Some((self.db.id(), self.db.generation())),
        })
    }

    /// Ground one raw term against the current database: observed atoms
    /// fold into the constant, target atoms become variables. Shared by
    /// [`Program::ground`] and the delta regrounder.
    pub(crate) fn raw_artifact(&self, raw: &RawTerm, registry: &mut VarRegistry) -> RawArtifact {
        let mut expr = LinExpr::constant(raw.lin.constant);
        for (atom, coef) in &raw.lin.terms {
            match self.db.resolve(atom) {
                Resolved::Observed(v) => {
                    expr.add_constant(coef * v);
                }
                Resolved::Target => {
                    let var = registry.intern(atom);
                    expr.add_term(var, *coef);
                }
            }
        }
        expr.normalize();
        match raw.kind {
            RawKind::Potential { weight, squared } => {
                if expr.is_constant() {
                    let d = expr.constant.max(0.0);
                    RawArtifact::ConstLoss(if squared { weight * d * d } else { weight * d })
                } else {
                    RawArtifact::Potential(GroundPotential {
                        expr,
                        weight,
                        squared,
                        origin: raw.origin.clone(),
                    })
                }
            }
            RawKind::Constraint { kind } => RawArtifact::Constraint(GroundConstraint {
                expr,
                kind,
                origin: raw.origin.clone(),
            }),
        }
    }

    /// The raw terms, in declaration order (for the delta regrounder).
    pub(crate) fn raw_terms(&self) -> &[RawTerm] {
        &self.raw
    }

    /// The arithmetic rules, in declaration order. Exposed so benches and
    /// diagnostics can re-ground a single rule in isolation (e.g. to
    /// compare a wholesale arithmetic re-ground against the delta
    /// regrounder's per-binding splice).
    pub fn arith_rules(&self) -> &[ArithRule] {
        &self.arith_rules
    }
}

/// One rule's grounding into rule-local structures, pre-merge. Shared
/// with the delta regrounder, whose pool-delta path merges parallel
/// per-rule re-grounds the same way [`Program::ground_with`] does.
pub(crate) struct RuleGrounding {
    pub(crate) registry: VarRegistry,
    pub(crate) sink: GroundSink,
    pub(crate) stats: GroundStats,
}

/// Rewrite a ground expression's local variable ids through `map` and
/// restore the sorted-normalized term order.
pub(crate) fn remap_expr(expr: &mut LinExpr, map: &[usize]) {
    for t in &mut expr.terms {
        t.0 = map[t.0];
    }
    expr.terms.sort_unstable_by_key(|&(v, _)| v);
}

/// A fully grounded program, ready for MAP inference.
#[derive(Clone, Debug, Default)]
pub struct GroundProgram {
    pub(crate) registry: VarRegistry,
    /// Ground weighted potentials.
    pub potentials: Vec<GroundPotential>,
    /// Ground hard constraints.
    pub constraints: Vec<GroundConstraint>,
    /// Objective contribution fixed by observations alone.
    pub constant_loss: f64,
    /// Per-rule grounding statistics keyed by rule name.
    pub rule_stats: FxHashMap<String, GroundStats>,
    /// Per-source segmentation for delta regrounding (`None` when produced
    /// by the naive reference engine — [`crate::Program::reground`] then
    /// falls back to a full grounding).
    pub(crate) splice: Option<SpliceSupport>,
    /// Term-identity map against the immediately prior ground program,
    /// recorded by [`crate::Program::reground`] (`None` for a fresh
    /// grounding). Consumed by [`GroundProgram::carry_duals`].
    pub(crate) dual_reuse: Option<DualReuse>,
    /// `(database id, database generation)` at the moment this program was
    /// grounded. The reground guard checks an incoming delta against this
    /// stamp before splicing (see [`crate::RegroundError::StateMismatch`]).
    /// `None` only for hand-assembled programs (e.g. `Default`), which the
    /// guard treats as unstamped and skips.
    pub(crate) stamp: Option<(u64, u64)>,
}

impl GroundProgram {
    /// Number of MAP variables.
    pub fn num_vars(&self) -> usize {
        self.registry.len()
    }

    /// Aggregate grounding statistics over all rules — the quick way for
    /// benches and callers to check how much work the index short-circuited
    /// (`candidates_probed` vs `candidates_scanned`) and where wall time
    /// went.
    pub fn total_stats(&self) -> GroundStats {
        let mut total = GroundStats::default();
        for s in self.rule_stats.values() {
            total.absorb(s);
        }
        total
    }

    /// A sorted, engine-independent description of every ground term:
    /// variable ids are resolved to atom strings, term lists are sorted,
    /// coefficients printed to 9 decimals. Two ground programs describe the
    /// same HL-MRF iff their canonical terms are equal — regardless of
    /// variable order or term enumeration order. Used by the equivalence
    /// tests between the plan-compiled and naive grounding engines.
    pub fn canonical_terms(&self) -> Vec<String> {
        let desc = |expr: &LinExpr| {
            let mut terms: Vec<String> = expr
                .terms
                .iter()
                .map(|&(v, c)| format!("{c:.9}*{}", self.registry.atom(v)))
                .collect();
            terms.sort();
            format!("c={:.9} {}", expr.constant, terms.join(" + "))
        };
        let mut out: Vec<String> =
            Vec::with_capacity(self.potentials.len() + self.constraints.len());
        for p in &self.potentials {
            out.push(format!(
                "P {} w={:.9} sq={} {}",
                p.origin,
                p.weight,
                p.squared,
                desc(&p.expr)
            ));
        }
        for c in &self.constraints {
            out.push(format!("C {} {:?} {}", c.origin, c.kind, desc(&c.expr)));
        }
        out.sort();
        out
    }

    /// Variable index of a target atom, if it appears in any ground term.
    pub fn var_of(&self, atom: &GroundAtom) -> Option<usize> {
        self.registry.lookup(atom)
    }

    /// The atom of a variable index.
    pub fn atom_of(&self, var: usize) -> &GroundAtom {
        self.registry.atom(var)
    }

    /// Run MAP inference.
    pub fn solve(&self, config: &AdmmConfig) -> MapSolution {
        let solver = AdmmSolver::new(&self.potentials, &self.constraints, self.num_vars());
        let sol = solver.solve(config);
        MapSolution {
            admm: sol,
            constant_loss: self.constant_loss,
        }
    }

    /// Run MAP inference **warm-started** from a previous consensus vector
    /// (typically [`AdmmSolution::values`] of the solve before a delta
    /// reground — variable indices are stable across regrounds, so the
    /// vector indexes this program directly). Missing trailing variables
    /// start at the config's initial value; values are clamped to `[0,1]`.
    pub fn solve_warm(&self, config: &AdmmConfig, warm: &[f64]) -> MapSolution {
        let solver = AdmmSolver::new(&self.potentials, &self.constraints, self.num_vars());
        let sol = solver.solve_from(config, Some(warm));
        MapSolution {
            admm: sol,
            constant_loss: self.constant_loss,
        }
    }

    /// Run MAP inference warm-started from a previous consensus vector
    /// *and* (optionally) a previous [`DualState`], returning the solution
    /// together with this solve's dual state for the next resume.
    ///
    /// `duals` must be aligned with **this** program's terms: either the
    /// state returned by a previous solve of the same ground program, or a
    /// prior program's state mapped through [`GroundProgram::carry_duals`]
    /// after a delta reground. Terms with a missing entry start at zero,
    /// so `None` degrades to the consensus-only warm start.
    pub fn solve_warm_dual(
        &self,
        config: &AdmmConfig,
        warm: &[f64],
        duals: Option<&DualState>,
    ) -> (MapSolution, DualState) {
        let solver = AdmmSolver::new(&self.potentials, &self.constraints, self.num_vars());
        let (sol, duals_out) = solver.solve_warm(
            config,
            WarmStart {
                values: Some(warm),
                duals,
            },
        );
        (
            MapSolution {
                admm: sol,
                constant_loss: self.constant_loss,
            },
            duals_out,
        )
    }

    /// Map a [`DualState`] recorded against the program this one was
    /// regrounded **from** onto this program's terms: spliced-unchanged
    /// terms keep their scaled duals (term identity comes from the delta
    /// subsystem's reuse map), recomputed terms start cold. Returns `None`
    /// when this program carries no reuse map (fresh grounding, or the
    /// reground fell back to one) — pass `None` to the solver then.
    pub fn carry_duals(&self, prior: &DualState) -> Option<DualState> {
        let reuse = self.dual_reuse.as_ref()?;
        let map = |src: &[u32], pool: &[Vec<f64>]| -> Vec<Vec<f64>> {
            src.iter()
                .map(|&i| {
                    if i == NO_PRIOR {
                        Vec::new()
                    } else {
                        pool.get(i as usize).cloned().unwrap_or_default()
                    }
                })
                .collect()
        };
        let mut out = DualState {
            potentials: map(&reuse.pots, prior.potential_duals()),
            constraints: map(&reuse.cons, prior.constraint_duals()),
        };
        if crate::fault::take(crate::fault::Fault::PoisonDuals) {
            if let Some(v) = out
                .potentials
                .iter_mut()
                .chain(out.constraints.iter_mut())
                .find(|v| !v.is_empty())
            {
                v[0] = f64::NAN;
            }
        }
        Some(out)
    }

    /// Evaluate the soft objective (weighted potentials + constant loss)
    /// under an arbitrary assignment.
    pub fn objective(&self, values: &[f64]) -> f64 {
        self.constant_loss + self.potentials.iter().map(|p| p.value(values)).sum::<f64>()
    }

    /// Largest hard-constraint violation under an assignment.
    pub fn max_violation(&self, values: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.violation(values))
            .fold(0.0, f64::max)
    }
}

/// A MAP state: ADMM output plus the grounding-time constant loss.
#[derive(Clone, Debug)]
pub struct MapSolution {
    /// Raw solver result.
    pub admm: AdmmSolution,
    /// Constant loss from grounding (added to the reported objective).
    pub constant_loss: f64,
}

impl MapSolution {
    /// Truth value of a target atom (None if the atom never appeared in a
    /// ground term — its value is unconstrained).
    pub fn value(&self, program: &GroundProgram, atom: &GroundAtom) -> Option<f64> {
        program.var_of(atom).map(|v| self.admm.values[v])
    }

    /// Total soft objective: solver objective + constant loss.
    pub fn total_objective(&self) -> f64 {
        self.admm.objective + self.constant_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{rvar, RuleBuilder};

    /// The canonical toy program:
    ///   w=1 : scope(T) → explained(T)
    ///   hard: explained(T) ≤ Σ_C covers(C,T)·inMap(C)   (raw)
    ///   w=0.4 : cand(C) → ¬inMap(C)
    /// With a single candidate covering t1 fully, MAP should select it.
    fn build() -> (Program, GroundAtom, GroundAtom) {
        let mut vocab = Vocabulary::new();
        let scope = vocab.closed("scope", 1);
        let cand = vocab.closed("cand", 1);
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);
        let explained = vocab.open("explained", 1);

        let mut program = Program::new(vocab);
        program
            .db
            .observe(GroundAtom::from_strs(scope, &["t1"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(cand, &["c1"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(covers, &["c1", "t1"]), 1.0);
        let in_map_c1 = GroundAtom::from_strs(in_map, &["c1"]);
        let explained_t1 = GroundAtom::from_strs(explained, &["t1"]);
        program.db.target(in_map_c1.clone());
        program.db.target(explained_t1.clone());

        program.add_rule(
            RuleBuilder::new("explain-reward")
                .body(scope, vec![rvar("T")])
                .head(explained, vec![rvar("T")])
                .weight(1.0)
                .build(),
        );
        program.add_rule(
            RuleBuilder::new("size-prior")
                .body(cand, vec![rvar("C")])
                .head_neg(in_map, vec![rvar("C")])
                .weight(0.4)
                .build(),
        );
        let mut cap = AtomLin::new();
        cap.add(explained_t1.clone(), 1.0);
        cap.add(in_map_c1.clone(), -1.0); // covers(c1,t1) = 1
        program.add_raw_constraint(cap, ConstraintKind::LeqZero, "cap");
        (program, in_map_c1, explained_t1)
    }

    #[test]
    fn end_to_end_map_selects_covering_candidate() {
        let (program, in_map_c1, explained_t1) = build();
        let ground = program.ground().unwrap();
        assert_eq!(ground.num_vars(), 2);
        let sol = ground.solve(&AdmmConfig::default());
        assert!(sol.admm.converged);
        let m = sol.value(&ground, &in_map_c1).unwrap();
        let e = sol.value(&ground, &explained_t1).unwrap();
        // Explaining pays 1.0, the size prior costs 0.4 ⇒ select.
        assert!(m > 0.9, "inMap = {m}");
        assert!(e > 0.9, "explained = {e}");
        assert!(sol.total_objective() < 0.45 + 1e-2);
        assert!(sol.admm.max_violation < 1e-3);
    }

    #[test]
    fn heavier_prior_flips_the_decision() {
        let (mut program, in_map_c1, _) = build();
        // Add four more copies of the size prior via raw potentials.
        for i in 0..4 {
            let mut lin = AtomLin::new();
            lin.add(in_map_c1.clone(), 1.0);
            program.add_raw_potential(lin, 0.4, false, &format!("extra-prior-{i}"));
        }
        let ground = program.ground().unwrap();
        let sol = ground.solve(&AdmmConfig::default());
        let m = sol.value(&ground, &in_map_c1).unwrap();
        // Total down-pressure 2.0 > up-pressure 1.0 ⇒ deselect.
        assert!(m < 0.1, "inMap = {m}");
    }

    #[test]
    fn raw_constant_potential_folds_into_loss() {
        let mut vocab = Vocabulary::new();
        let obs = vocab.closed("obs", 1);
        let mut program = Program::new(vocab);
        program.db.observe(GroundAtom::from_strs(obs, &["a"]), 0.75);
        let mut lin = AtomLin::new();
        lin.add(GroundAtom::from_strs(obs, &["a"]), 1.0);
        program.add_raw_potential(lin, 2.0, false, "const");
        let ground = program.ground().unwrap();
        assert_eq!(ground.num_vars(), 0);
        assert!((ground.constant_loss - 1.5).abs() < 1e-12);
        let sol = ground.solve(&AdmmConfig::default());
        assert!((sol.total_objective() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rule_stats_are_collected() {
        let (program, _, _) = build();
        let ground = program.ground().unwrap();
        let s = &ground.rule_stats["explain-reward"];
        assert_eq!(s.substitutions, 1);
        assert_eq!(s.potentials, 1);
        let total = ground.total_stats();
        assert!(total.substitutions >= 2);
        assert!(total.candidates_probed + total.candidates_scanned > 0);
    }

    /// Multi-rule program exercising the parallel merge path.
    fn multi_rule_program() -> Program {
        let mut vocab = Vocabulary::new();
        let edge = vocab.closed("edge", 2);
        let hub = vocab.open("hub", 1);
        let linked = vocab.open("linked", 2);
        let mut program = Program::new(vocab);
        for i in 0..12 {
            for j in 0..12 {
                if (i + j) % 3 == 0 {
                    program.db.observe(
                        GroundAtom::from_strs(edge, &[&format!("n{i}"), &format!("n{j}")]),
                        1.0,
                    );
                }
            }
            program
                .db
                .target(GroundAtom::from_strs(hub, &[&format!("n{i}")]));
            for j in 0..12 {
                program.db.target(GroundAtom::from_strs(
                    linked,
                    &[&format!("n{i}"), &format!("n{j}")],
                ));
            }
        }
        program.add_rule(
            RuleBuilder::new("hubby")
                .body(edge, vec![rvar("X"), rvar("Y")])
                .head(hub, vec![rvar("X")])
                .weight(1.0)
                .build(),
        );
        program.add_rule(
            RuleBuilder::new("link")
                .body(edge, vec![rvar("X"), rvar("Y")])
                .body(edge, vec![rvar("Y"), rvar("Z")])
                .head(linked, vec![rvar("X"), rvar("Z")])
                .weight(0.5)
                .build(),
        );
        program.add_rule(
            RuleBuilder::new("hub-link")
                .body(edge, vec![rvar("X"), rvar("Y")])
                .body(hub, vec![rvar("X")])
                .head(linked, vec![rvar("X"), rvar("Y")])
                .weight(0.25)
                .build(),
        );
        program
    }

    /// One potential's exact shape: term count, constant, raw terms.
    type PotentialShape = (usize, f64, Vec<(usize, f64)>);

    /// Snapshot of a ground program for exact comparison.
    fn fingerprint(g: &GroundProgram) -> (Vec<String>, Vec<PotentialShape>) {
        let atoms: Vec<String> = (0..g.num_vars())
            .map(|v| g.atom_of(v).to_string())
            .collect();
        let pots: Vec<PotentialShape> = g
            .potentials
            .iter()
            .map(|p| (p.expr.terms.len(), p.expr.constant, p.expr.terms.clone()))
            .collect();
        (atoms, pots)
    }

    #[test]
    fn parallel_merge_is_deterministic_across_thread_counts() {
        let program = multi_rule_program();
        let sequential = program.ground_with(1).unwrap();
        for threads in [2, 4, 8] {
            let parallel = program.ground_with(threads).unwrap();
            assert_eq!(sequential.num_vars(), parallel.num_vars());
            assert_eq!(
                fingerprint(&sequential),
                fingerprint(&parallel),
                "threads={threads}"
            );
            assert_eq!(sequential.constraints.len(), parallel.constraints.len());
            assert!((sequential.constant_loss - parallel.constant_loss).abs() < 1e-12);
        }
        // Repeat runs are stable too (no map-iteration leakage).
        let again = program.ground().unwrap();
        assert_eq!(fingerprint(&sequential), fingerprint(&again));
    }

    #[test]
    fn vocab_arity_mismatch_rejected_up_front() {
        let mut vocab = Vocabulary::new();
        let p = vocab.closed("p", 2);
        let q = vocab.open("q", 1);
        let mut program = Program::new(vocab);
        program
            .db
            .observe(GroundAtom::from_strs(p, &["a", "b"]), 1.0);
        program.db.target(GroundAtom::from_strs(q, &["a"]));
        // Literal written with the wrong arity for p.
        program.add_rule(
            RuleBuilder::new("malformed")
                .body(p, vec![rvar("X")])
                .head(q, vec![rvar("X")])
                .weight(1.0)
                .build(),
        );
        let err = program.ground().unwrap_err();
        assert_eq!(
            err,
            GroundingError::ArityMismatch {
                rule: "malformed".into()
            }
        );
    }

    #[test]
    fn naive_grounding_matches_plan_grounding() {
        let program = multi_rule_program();
        let plan = program.ground().unwrap();
        let naive = program.ground_naive().unwrap();
        assert_eq!(plan.num_vars(), naive.num_vars());
        assert_eq!(plan.potentials.len(), naive.potentials.len());
        assert_eq!(plan.constraints.len(), naive.constraints.len());
        assert!((plan.constant_loss - naive.constant_loss).abs() < 1e-12);
        // Canonicalize each potential by resolving vars to atom strings
        // (enumeration order differs between the engines).
        let canon = |g: &GroundProgram| {
            let mut v: Vec<String> = g
                .potentials
                .iter()
                .map(|p| {
                    let mut terms: Vec<String> = p
                        .expr
                        .terms
                        .iter()
                        .map(|&(var, c)| format!("{c:.9}*{}", g.atom_of(var)))
                        .collect();
                    terms.sort();
                    format!(
                        "{} w={:.9} c={:.9} {}",
                        p.origin,
                        p.weight,
                        p.expr.constant,
                        terms.join("+")
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&plan), canon(&naive));
    }

    #[test]
    fn objective_and_violation_eval() {
        let (program, in_map_c1, explained_t1) = build();
        let ground = program.ground().unwrap();
        let mi = ground.var_of(&in_map_c1).unwrap();
        let ei = ground.var_of(&explained_t1).unwrap();
        let mut y = vec![0.0; 2];
        // Nothing selected: unexplained loss 1.0.
        assert!((ground.objective(&y) - 1.0).abs() < 1e-12);
        assert_eq!(ground.max_violation(&y), 0.0);
        // explained=1 without selecting violates the cap by 1.
        y[ei] = 1.0;
        assert!((ground.max_violation(&y) - 1.0).abs() < 1e-12);
        y[mi] = 1.0;
        assert_eq!(ground.max_violation(&y), 0.0);
        assert!((ground.objective(&y) - 0.4).abs() < 1e-12);
    }
}

//! Programs: vocabulary + database + rules, grounded into a solvable form.
//!
//! Besides logical rules, programs support **raw linear terms** over ground
//! atoms. The CMS encoding needs one construct PSL expresses as an
//! arithmetic rule: the explanation cap
//! `explained(T) ≤ Σ_C covers(C,T) · inMap(C)`, whose coefficients come from
//! observed atoms. [`Program::add_raw_constraint`] and
//! [`Program::add_raw_potential`] cover that: observed atoms in the linear
//! combination fold into the constant, target atoms become variables.

use crate::admm::{AdmmConfig, AdmmSolution, AdmmSolver};
use crate::arith::{ground_arith_rule, ArithRule};
use crate::atom::GroundAtom;
use crate::database::{Database, Resolved};
use crate::grounding::{ground_rule, GroundSink, GroundStats, GroundingError, VarRegistry};
use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use crate::linear::LinExpr;
use crate::predicate::Vocabulary;
use crate::rule::LogicalRule;
use cms_data::FxHashMap;

/// A linear combination of ground atoms plus a constant.
#[derive(Clone, Debug, Default)]
pub struct AtomLin {
    /// `(atom, coefficient)` pairs.
    pub terms: Vec<(GroundAtom, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl AtomLin {
    /// Empty combination.
    pub fn new() -> AtomLin {
        AtomLin::default()
    }

    /// Add `coef · atom`.
    pub fn add(&mut self, atom: GroundAtom, coef: f64) -> &mut AtomLin {
        self.terms.push((atom, coef));
        self
    }

    /// Add a constant.
    pub fn add_constant(&mut self, c: f64) -> &mut AtomLin {
        self.constant += c;
        self
    }
}

enum RawKind {
    Potential { weight: f64, squared: bool },
    Constraint { kind: ConstraintKind },
}

struct RawTerm {
    lin: AtomLin,
    kind: RawKind,
    origin: String,
}

/// A PSL program: declarations, data, rules, raw terms.
pub struct Program {
    /// The predicate vocabulary.
    pub vocab: Vocabulary,
    /// Observations and targets.
    pub db: Database,
    rules: Vec<LogicalRule>,
    arith_rules: Vec<ArithRule>,
    raw: Vec<RawTerm>,
}

impl Program {
    /// A program over the given vocabulary with an empty database.
    pub fn new(vocab: Vocabulary) -> Program {
        Program { vocab, db: Database::new(), rules: Vec::new(), arith_rules: Vec::new(), raw: Vec::new() }
    }

    /// Add a logical rule.
    pub fn add_rule(&mut self, rule: LogicalRule) {
        self.rules.push(rule);
    }

    /// Add an arithmetic rule (see [`crate::arith`]).
    pub fn add_arith_rule(&mut self, rule: ArithRule) {
        self.arith_rules.push(rule);
    }

    /// Add a hard linear constraint `lin ≤ 0` or `lin = 0` over atoms.
    pub fn add_raw_constraint(&mut self, lin: AtomLin, kind: ConstraintKind, origin: &str) {
        self.raw.push(RawTerm { lin, kind: RawKind::Constraint { kind }, origin: origin.to_owned() });
    }

    /// Add a weighted potential `w · max(0, lin)^p` over atoms.
    pub fn add_raw_potential(&mut self, lin: AtomLin, weight: f64, squared: bool, origin: &str) {
        self.raw.push(RawTerm {
            lin,
            kind: RawKind::Potential { weight, squared },
            origin: origin.to_owned(),
        });
    }

    /// Ground all rules and raw terms.
    pub fn ground(&self) -> Result<GroundProgram, GroundingError> {
        let mut registry = VarRegistry::new();
        let mut sink = GroundSink::default();
        let mut stats: FxHashMap<String, GroundStats> = FxHashMap::default();
        let mut constant_loss = 0.0;
        for rule in &self.rules {
            let s = ground_rule(rule, &self.db, &mut registry, &mut sink)?;
            constant_loss += s.constant_loss;
            let entry = stats.entry(rule.name.clone()).or_default();
            entry.substitutions += s.substitutions;
            entry.potentials += s.potentials;
            entry.constraints += s.constraints;
            entry.pruned += s.pruned;
            entry.constant_loss += s.constant_loss;
        }
        for rule in &self.arith_rules {
            ground_arith_rule(rule, &self.db, &mut registry, &mut sink.potentials, &mut sink.constraints)
                .map_err(GroundingError::Arith)?;
        }
        for raw in &self.raw {
            let mut expr = LinExpr::constant(raw.lin.constant);
            for (atom, coef) in &raw.lin.terms {
                match self.db.resolve(atom) {
                    Resolved::Observed(v) => {
                        expr.add_constant(coef * v);
                    }
                    Resolved::Target => {
                        let var = registry.intern(atom);
                        expr.add_term(var, *coef);
                    }
                }
            }
            expr.normalize();
            match raw.kind {
                RawKind::Potential { weight, squared } => {
                    if expr.is_constant() {
                        let d = expr.constant.max(0.0);
                        constant_loss += if squared { weight * d * d } else { weight * d };
                    } else {
                        sink.potentials.push(GroundPotential {
                            expr,
                            weight,
                            squared,
                            origin: raw.origin.clone(),
                        });
                    }
                }
                RawKind::Constraint { kind } => {
                    sink.constraints.push(GroundConstraint { expr, kind, origin: raw.origin.clone() });
                }
            }
        }
        Ok(GroundProgram {
            registry,
            potentials: sink.potentials,
            constraints: sink.constraints,
            constant_loss,
            rule_stats: stats,
        })
    }
}

/// A fully grounded program, ready for MAP inference.
pub struct GroundProgram {
    registry: VarRegistry,
    /// Ground weighted potentials.
    pub potentials: Vec<GroundPotential>,
    /// Ground hard constraints.
    pub constraints: Vec<GroundConstraint>,
    /// Objective contribution fixed by observations alone.
    pub constant_loss: f64,
    /// Per-rule grounding statistics keyed by rule name.
    pub rule_stats: FxHashMap<String, GroundStats>,
}

impl GroundProgram {
    /// Number of MAP variables.
    pub fn num_vars(&self) -> usize {
        self.registry.len()
    }

    /// Variable index of a target atom, if it appears in any ground term.
    pub fn var_of(&self, atom: &GroundAtom) -> Option<usize> {
        self.registry.lookup(atom)
    }

    /// The atom of a variable index.
    pub fn atom_of(&self, var: usize) -> &GroundAtom {
        self.registry.atom(var)
    }

    /// Run MAP inference.
    pub fn solve(&self, config: &AdmmConfig) -> MapSolution {
        let solver = AdmmSolver::new(&self.potentials, &self.constraints, self.num_vars());
        let sol = solver.solve(config);
        MapSolution { admm: sol, constant_loss: self.constant_loss }
    }

    /// Evaluate the soft objective (weighted potentials + constant loss)
    /// under an arbitrary assignment.
    pub fn objective(&self, values: &[f64]) -> f64 {
        self.constant_loss + self.potentials.iter().map(|p| p.value(values)).sum::<f64>()
    }

    /// Largest hard-constraint violation under an assignment.
    pub fn max_violation(&self, values: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.violation(values))
            .fold(0.0, f64::max)
    }
}

/// A MAP state: ADMM output plus the grounding-time constant loss.
#[derive(Clone, Debug)]
pub struct MapSolution {
    /// Raw solver result.
    pub admm: AdmmSolution,
    /// Constant loss from grounding (added to the reported objective).
    pub constant_loss: f64,
}

impl MapSolution {
    /// Truth value of a target atom (None if the atom never appeared in a
    /// ground term — its value is unconstrained).
    pub fn value(&self, program: &GroundProgram, atom: &GroundAtom) -> Option<f64> {
        program.var_of(atom).map(|v| self.admm.values[v])
    }

    /// Total soft objective: solver objective + constant loss.
    pub fn total_objective(&self) -> f64 {
        self.admm.objective + self.constant_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{rvar, RuleBuilder};

    /// The canonical toy program:
    ///   w=1 : scope(T) → explained(T)
    ///   hard: explained(T) ≤ Σ_C covers(C,T)·inMap(C)   (raw)
    ///   w=0.4 : cand(C) → ¬inMap(C)
    /// With a single candidate covering t1 fully, MAP should select it.
    fn build() -> (Program, GroundAtom, GroundAtom) {
        let mut vocab = Vocabulary::new();
        let scope = vocab.closed("scope", 1);
        let cand = vocab.closed("cand", 1);
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);
        let explained = vocab.open("explained", 1);

        let mut program = Program::new(vocab);
        program.db.observe(GroundAtom::from_strs(scope, &["t1"]), 1.0);
        program.db.observe(GroundAtom::from_strs(cand, &["c1"]), 1.0);
        program.db.observe(GroundAtom::from_strs(covers, &["c1", "t1"]), 1.0);
        let in_map_c1 = GroundAtom::from_strs(in_map, &["c1"]);
        let explained_t1 = GroundAtom::from_strs(explained, &["t1"]);
        program.db.target(in_map_c1.clone());
        program.db.target(explained_t1.clone());

        program.add_rule(
            RuleBuilder::new("explain-reward")
                .body(scope, vec![rvar("T")])
                .head(explained, vec![rvar("T")])
                .weight(1.0)
                .build(),
        );
        program.add_rule(
            RuleBuilder::new("size-prior")
                .body(cand, vec![rvar("C")])
                .head_neg(in_map, vec![rvar("C")])
                .weight(0.4)
                .build(),
        );
        let mut cap = AtomLin::new();
        cap.add(explained_t1.clone(), 1.0);
        cap.add(in_map_c1.clone(), -1.0); // covers(c1,t1) = 1
        program.add_raw_constraint(cap, ConstraintKind::LeqZero, "cap");
        (program, in_map_c1, explained_t1)
    }

    #[test]
    fn end_to_end_map_selects_covering_candidate() {
        let (program, in_map_c1, explained_t1) = build();
        let ground = program.ground().unwrap();
        assert_eq!(ground.num_vars(), 2);
        let sol = ground.solve(&AdmmConfig::default());
        assert!(sol.admm.converged);
        let m = sol.value(&ground, &in_map_c1).unwrap();
        let e = sol.value(&ground, &explained_t1).unwrap();
        // Explaining pays 1.0, the size prior costs 0.4 ⇒ select.
        assert!(m > 0.9, "inMap = {m}");
        assert!(e > 0.9, "explained = {e}");
        assert!(sol.total_objective() < 0.45 + 1e-2);
        assert!(sol.admm.max_violation < 1e-3);
    }

    #[test]
    fn heavier_prior_flips_the_decision() {
        let (mut program, in_map_c1, _) = build();
        // Add four more copies of the size prior via raw potentials.
        for i in 0..4 {
            let mut lin = AtomLin::new();
            lin.add(in_map_c1.clone(), 1.0);
            program.add_raw_potential(lin, 0.4, false, &format!("extra-prior-{i}"));
        }
        let ground = program.ground().unwrap();
        let sol = ground.solve(&AdmmConfig::default());
        let m = sol.value(&ground, &in_map_c1).unwrap();
        // Total down-pressure 2.0 > up-pressure 1.0 ⇒ deselect.
        assert!(m < 0.1, "inMap = {m}");
    }

    #[test]
    fn raw_constant_potential_folds_into_loss() {
        let mut vocab = Vocabulary::new();
        let obs = vocab.closed("obs", 1);
        let mut program = Program::new(vocab);
        program.db.observe(GroundAtom::from_strs(obs, &["a"]), 0.75);
        let mut lin = AtomLin::new();
        lin.add(GroundAtom::from_strs(obs, &["a"]), 1.0);
        program.add_raw_potential(lin, 2.0, false, "const");
        let ground = program.ground().unwrap();
        assert_eq!(ground.num_vars(), 0);
        assert!((ground.constant_loss - 1.5).abs() < 1e-12);
        let sol = ground.solve(&AdmmConfig::default());
        assert!((sol.total_objective() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rule_stats_are_collected() {
        let (program, _, _) = build();
        let ground = program.ground().unwrap();
        let s = &ground.rule_stats["explain-reward"];
        assert_eq!(s.substitutions, 1);
        assert_eq!(s.potentials, 1);
    }

    #[test]
    fn objective_and_violation_eval() {
        let (program, in_map_c1, explained_t1) = build();
        let ground = program.ground().unwrap();
        let mi = ground.var_of(&in_map_c1).unwrap();
        let ei = ground.var_of(&explained_t1).unwrap();
        let mut y = vec![0.0; 2];
        // Nothing selected: unexplained loss 1.0.
        assert!((ground.objective(&y) - 1.0).abs() < 1e-12);
        assert_eq!(ground.max_violation(&y), 0.0);
        // explained=1 without selecting violates the cap by 1.
        y[ei] = 1.0;
        assert!((ground.max_violation(&y) - 1.0).abs() < 1e-12);
        y[mi] = 1.0;
        assert_eq!(ground.max_violation(&y), 0.0);
        assert!((ground.objective(&y) - 0.4).abs() < 1e-12);
    }
}

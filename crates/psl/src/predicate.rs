//! Predicates and the vocabulary of a PSL program.

use cms_data::FxHashMap;
use std::fmt;

/// Dense predicate identifier within one [`Vocabulary`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId(pub u32);

impl PredId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A predicate: name, arity, and openness.
///
/// **Closed** predicates are fully observed: any ground atom not in the
/// database has truth value 0 (closed-world assumption). **Open**
/// predicates may have target (inferred) atoms.
#[derive(Clone, Debug)]
pub struct Predicate {
    /// Predicate name, unique within the vocabulary.
    pub name: String,
    /// Number of arguments.
    pub arity: usize,
    /// True iff the predicate is fully observed (closed-world).
    pub closed: bool,
}

/// The set of predicates of a program.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    predicates: Vec<Predicate>,
    by_name: FxHashMap<String, PredId>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Declare a predicate; returns its id.
    ///
    /// # Panics
    /// Panics on duplicate names — programs are built programmatically and
    /// a duplicate is a bug.
    pub fn declare(&mut self, name: &str, arity: usize, closed: bool) -> PredId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate predicate {name:?}"
        );
        let id = PredId(u32::try_from(self.predicates.len()).expect("too many predicates"));
        self.predicates.push(Predicate {
            name: name.to_owned(),
            arity,
            closed,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Declare a closed (fully observed) predicate.
    pub fn closed(&mut self, name: &str, arity: usize) -> PredId {
        self.declare(name, arity, true)
    }

    /// Declare an open predicate (may have inferred atoms).
    pub fn open(&mut self, name: &str, arity: usize) -> PredId {
        self.declare(name, arity, false)
    }

    /// Look up a predicate by name.
    pub fn id_of(&self, name: &str) -> Option<PredId> {
        self.by_name.get(name).copied()
    }

    /// The predicate with the given id.
    pub fn predicate(&self, id: PredId) -> &Predicate {
        &self.predicates[id.index()]
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True iff no predicates are declared.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.predicates {
            writeln!(
                f,
                "{}/{} [{}]",
                p.name,
                p.arity,
                if p.closed { "closed" } else { "open" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut v = Vocabulary::new();
        let a = v.closed("covers", 2);
        let b = v.open("inMap", 1);
        assert_eq!(v.id_of("covers"), Some(a));
        assert_eq!(v.id_of("inMap"), Some(b));
        assert_eq!(v.id_of("missing"), None);
        assert!(v.predicate(a).closed);
        assert!(!v.predicate(b).closed);
        assert_eq!(v.predicate(b).arity, 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate predicate")]
    fn duplicate_panics() {
        let mut v = Vocabulary::new();
        v.closed("p", 1);
        v.open("p", 2);
    }

    #[test]
    fn display() {
        let mut v = Vocabulary::new();
        v.closed("covers", 2);
        v.open("inMap", 1);
        let s = v.to_string();
        assert!(s.contains("covers/2 [closed]"));
        assert!(s.contains("inMap/1 [open]"));
    }
}

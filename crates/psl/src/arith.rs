//! Arithmetic rules: linear (in)equalities over atoms with summation
//! variables — PSL's second rule family.
//!
//! An arithmetic rule is a linear combination of *terms*, each a
//! coefficient times a product of atoms, compared against zero:
//!
//! ```text
//! explained(T) − Σ_C covers(C, T) · inMap(C)  ≤  0
//! ```
//!
//! Variables listed as **summation variables** (`C` above) are summed over
//! all database-known bindings inside one grounding; the remaining *free*
//! variables (`T`) enumerate groundings. After resolution, observed atoms
//! in a product fold into the coefficient; at most one target atom may
//! remain per term (the expression must stay linear in the MAP variables —
//! [`ArithError::NonLinear`] otherwise).
//!
//! Hard rules ground to [`GroundConstraint`]s; weighted rules to hinge
//! potentials on the violation (`max(0, lhs)` for `≤`, both directions for
//! `=`).
//!
//! ## Grounding structure
//!
//! Grounding factors into three stages shared by the full grounder and the
//! delta regrounder ([`crate::Program::reground`]):
//!
//! 1. `arith_shape` validates the rule (summation variables must occur
//!    in some atom and not be declared twice; weights, coefficients and
//!    constants must be finite) and derives the free-variable schema plus
//!    the fixed number of potentials/constraints every grounding emits.
//! 2. `enumerate_free_bindings` joins all atoms over the database pools
//!    and projects onto the free variables — one binding per grounding, in
//!    a deterministic enumeration order.
//! 3. `fold_free_binding` expands one binding's summations and emits its
//!    potential(s) or constraint, optionally reporting every ground atom
//!    the fold instantiated (the *contributors*) so the caller can build
//!    the per-binding splice table (`crate::delta::ArithTable`) that
//!    lets `reground` re-fold exactly the bindings a mutation touches.

use crate::atom::GroundAtom;
use crate::database::{Database, Resolved};
use crate::delta::ArithTable;
use crate::grounding::{GroundingError, VarRegistry};
use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use crate::linear::LinExpr;
use crate::rule::{RAtom, RTerm};
use cms_data::{FxHashMap, FxHashSet, Sym};

/// Comparison of the rule's left-hand side against zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Comparison {
    /// `lhs ≤ 0`.
    LeqZero,
    /// `lhs = 0`.
    EqZero,
    /// `lhs ≥ 0`.
    GeqZero,
}

/// One additive term: `coef · Π atoms`.
#[derive(Clone, Debug)]
pub struct ArithTerm {
    /// Constant coefficient.
    pub coef: f64,
    /// Atom product (observed atoms fold into the coefficient).
    pub atoms: Vec<RAtom>,
}

/// An arithmetic rule.
#[derive(Clone, Debug)]
pub struct ArithRule {
    /// Diagnostic name.
    pub name: String,
    /// Additive terms.
    pub terms: Vec<ArithTerm>,
    /// Constant added to the left-hand side.
    pub constant: f64,
    /// Comparison against zero.
    pub comparison: Comparison,
    /// `Some(w)` = weighted (hinge on the violation); `None` = hard.
    pub weight: Option<f64>,
    /// Square the hinge (weighted rules only).
    pub squared: bool,
    /// Variables summed over inside each grounding.
    pub sum_vars: Vec<String>,
}

/// Errors specific to arithmetic rules — raised by
/// [`ArithRuleBuilder::build`] and again at grounding time (the rule
/// fields are public, so hand-assembled rules are re-validated).
#[derive(Clone, PartialEq, Debug)]
pub enum ArithError {
    /// A term resolved to more than one target atom (nonlinear).
    NonLinear {
        /// The rule's name.
        rule: String,
    },
    /// A declared summation variable occurs in no atom — almost always a
    /// misspelled [`ArithRuleBuilder::sum_over`], which would otherwise
    /// silently turn the intended summation variable into a free one.
    UnusedSumVar {
        /// The rule's name.
        rule: String,
        /// The variable.
        var: String,
    },
    /// The same variable was declared a summation variable twice; the
    /// second declaration shadows the first and is always a mistake.
    DuplicateSumVar {
        /// The rule's name.
        rule: String,
        /// The variable.
        var: String,
    },
    /// A rule weight was negative or non-finite.
    InvalidWeight {
        /// The rule's name.
        rule: String,
        /// The offending weight.
        weight: f64,
    },
    /// A term coefficient was non-finite.
    InvalidCoefficient {
        /// The rule's name.
        rule: String,
        /// The offending coefficient.
        coef: f64,
    },
    /// The rule constant was non-finite.
    InvalidConstant {
        /// The rule's name.
        rule: String,
        /// The offending constant.
        constant: f64,
    },
}

impl std::fmt::Display for ArithError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithError::NonLinear { rule } => {
                write!(
                    f,
                    "arithmetic rule {rule:?} has a term with two target atoms"
                )
            }
            ArithError::UnusedSumVar { rule, var } => {
                write!(
                    f,
                    "arithmetic rule {rule:?}: summation variable {var:?} occurs in no atom"
                )
            }
            ArithError::DuplicateSumVar { rule, var } => {
                write!(
                    f,
                    "arithmetic rule {rule:?}: summation variable {var:?} declared twice"
                )
            }
            ArithError::InvalidWeight { rule, weight } => {
                write!(
                    f,
                    "arithmetic rule {rule:?}: weight {weight} must be finite and non-negative"
                )
            }
            ArithError::InvalidCoefficient { rule, coef } => {
                write!(
                    f,
                    "arithmetic rule {rule:?}: coefficient {coef} must be finite"
                )
            }
            ArithError::InvalidConstant { rule, constant } => {
                write!(
                    f,
                    "arithmetic rule {rule:?}: constant {constant} must be finite"
                )
            }
        }
    }
}

impl std::error::Error for ArithError {}

/// Fluent builder for [`ArithRule`].
#[derive(Debug)]
pub struct ArithRuleBuilder {
    rule: ArithRule,
}

impl ArithRuleBuilder {
    /// Start a rule (default: hard `≤ 0`).
    pub fn new(name: &str) -> ArithRuleBuilder {
        ArithRuleBuilder {
            rule: ArithRule {
                name: name.to_owned(),
                terms: Vec::new(),
                constant: 0.0,
                comparison: Comparison::LeqZero,
                weight: None,
                squared: false,
                sum_vars: Vec::new(),
            },
        }
    }

    /// Add a term `coef · Π atoms`.
    pub fn term(mut self, coef: f64, atoms: Vec<RAtom>) -> ArithRuleBuilder {
        self.rule.terms.push(ArithTerm { coef, atoms });
        self
    }

    /// Add a constant to the left-hand side.
    pub fn constant(mut self, c: f64) -> ArithRuleBuilder {
        self.rule.constant += c;
        self
    }

    /// Compare `= 0`.
    pub fn eq(mut self) -> ArithRuleBuilder {
        self.rule.comparison = Comparison::EqZero;
        self
    }

    /// Compare `≥ 0`.
    pub fn geq(mut self) -> ArithRuleBuilder {
        self.rule.comparison = Comparison::GeqZero;
        self
    }

    /// Compare `≤ 0` (the default).
    pub fn leq(mut self) -> ArithRuleBuilder {
        self.rule.comparison = Comparison::LeqZero;
        self
    }

    /// Mark a variable as a summation variable.
    pub fn sum_over(mut self, var: &str) -> ArithRuleBuilder {
        self.rule.sum_vars.push(var.to_owned());
        self
    }

    /// Make the rule weighted.
    ///
    /// The weight is validated by [`ArithRuleBuilder::build`] (finite and
    /// non-negative), not here — a NaN no longer panics mid-builder with a
    /// misleading message.
    pub fn weight(mut self, w: f64) -> ArithRuleBuilder {
        self.rule.weight = Some(w);
        self
    }

    /// Square the hinge.
    pub fn squared(mut self) -> ArithRuleBuilder {
        self.rule.squared = true;
        self
    }

    /// Validate and finish the rule. Rejects negative or non-finite
    /// weights, non-finite coefficients/constants, summation variables
    /// that occur in no atom, and duplicate summation-variable
    /// declarations.
    pub fn build(self) -> Result<ArithRule, ArithError> {
        arith_shape(&self.rule)?;
        Ok(self.rule)
    }
}

/// Output of grounding one arithmetic rule.
#[derive(Debug, Default)]
pub struct ArithGroundStats {
    /// Groundings (free-variable substitutions) produced.
    pub groundings: usize,
    /// Potentials emitted.
    pub potentials: usize,
    /// Constraints emitted.
    pub constraints: usize,
}

/// The validated shape of an arithmetic rule: its free-variable schema (in
/// first-occurrence order — the splice-table key layout) and the fixed
/// number of potentials/constraints every grounding emits.
#[derive(Clone, Debug)]
pub(crate) struct ArithShape {
    /// Free variables, in first-occurrence order.
    pub(crate) free_vars: Vec<String>,
    /// Potentials emitted per grounding (0, 1, or 2 — weighted equalities
    /// emit two hinges).
    pub(crate) pot_width: usize,
    /// Constraints emitted per grounding (0 or 1).
    pub(crate) con_width: usize,
}

/// Validate `rule` and derive its [`ArithShape`]. This is the single
/// validation point shared by [`ArithRuleBuilder::build`] and every
/// grounding path.
pub(crate) fn arith_shape(rule: &ArithRule) -> Result<ArithShape, ArithError> {
    if let Some(w) = rule.weight {
        if !w.is_finite() || w < 0.0 {
            return Err(ArithError::InvalidWeight {
                rule: rule.name.clone(),
                weight: w,
            });
        }
    }
    if !rule.constant.is_finite() {
        return Err(ArithError::InvalidConstant {
            rule: rule.name.clone(),
            constant: rule.constant,
        });
    }
    for term in &rule.terms {
        if !term.coef.is_finite() {
            return Err(ArithError::InvalidCoefficient {
                rule: rule.name.clone(),
                coef: term.coef,
            });
        }
    }
    // Every declared summation variable must actually occur in some atom
    // (a misspelled `sum_over` would silently change semantics), and no
    // variable may be declared twice.
    let mut seen_sum: FxHashSet<&str> = FxHashSet::default();
    for v in &rule.sum_vars {
        if !seen_sum.insert(v.as_str()) {
            return Err(ArithError::DuplicateSumVar {
                rule: rule.name.clone(),
                var: v.clone(),
            });
        }
        let occurs = rule
            .terms
            .iter()
            .flat_map(|t| &t.atoms)
            .any(|a| a.args.iter().any(|t| matches!(t, RTerm::Var(x) if x == v)));
        if !occurs {
            return Err(ArithError::UnusedSumVar {
                rule: rule.name.clone(),
                var: v.clone(),
            });
        }
    }
    // Free variables, in first-occurrence order.
    let mut free_vars: Vec<String> = Vec::new();
    for term in &rule.terms {
        for atom in &term.atoms {
            for t in &atom.args {
                if let RTerm::Var(v) = t {
                    if !seen_sum.contains(v.as_str()) && !free_vars.contains(v) {
                        free_vars.push(v.clone());
                    }
                }
            }
        }
    }
    let (pot_width, con_width) = match (rule.weight, rule.comparison) {
        (None, _) => (0, 1),
        (Some(_), Comparison::EqZero) => (2, 0),
        (Some(_), _) => (1, 0),
    };
    Ok(ArithShape {
        free_vars,
        pot_width,
        con_width,
    })
}

/// Ground an arithmetic rule, probing the database's argument-position
/// index to skip candidates that cannot unify (see [`crate::grounding`] for
/// the strategy). Produces byte-identical output to
/// [`ground_arith_rule_naive`] — probing only skips candidates the naive
/// scan would have rejected, so the successful-binding order is unchanged.
pub fn ground_arith_rule(
    rule: &ArithRule,
    db: &Database,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
) -> Result<ArithGroundStats, GroundingError> {
    let guard = db.index();
    let index = guard
        .as_ref()
        .ok_or_else(|| GroundingError::IndexUnavailable {
            rule: rule.name.clone(),
        })?;
    ground_arith_impl(
        rule,
        db,
        Some(index),
        registry,
        potentials,
        constraints,
        None,
    )
    .map_err(GroundingError::Arith)
}

/// Like [`ground_arith_rule`], additionally recording the per-free-binding
/// splice table ([`ArithTable`]) the delta regrounder uses to re-fold only
/// the bindings a mutation touches.
pub(crate) fn ground_arith_rule_recorded(
    rule: &ArithRule,
    db: &Database,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
) -> Result<(ArithGroundStats, ArithTable), GroundingError> {
    let guard = db.index();
    let index = guard
        .as_ref()
        .ok_or_else(|| GroundingError::IndexUnavailable {
            rule: rule.name.clone(),
        })?;
    let mut table = ArithTable::default();
    let stats = ground_arith_impl(
        rule,
        db,
        Some(index),
        registry,
        potentials,
        constraints,
        Some(&mut table),
    )
    .map_err(GroundingError::Arith)?;
    Ok((stats, table))
}

/// Ground an arithmetic rule with pure pool scans — the reference
/// implementation backing [`crate::Program::ground_naive`].
pub fn ground_arith_rule_naive(
    rule: &ArithRule,
    db: &Database,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
) -> Result<ArithGroundStats, GroundingError> {
    ground_arith_impl(rule, db, None, registry, potentials, constraints, None)
        .map_err(GroundingError::Arith)
}

fn ground_arith_impl(
    rule: &ArithRule,
    db: &Database,
    index: Option<&crate::database::AtomIndex>,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
    mut table: Option<&mut ArithTable>,
) -> Result<ArithGroundStats, ArithError> {
    let shape = arith_shape(rule)?;
    if let Some(t) = table.as_deref_mut() {
        *t = ArithTable::new(shape.free_vars.clone());
    }
    let keys = enumerate_free_bindings(rule, &shape, db, index);
    let mut stats = ArithGroundStats::default();
    let mut contributors: Vec<GroundAtom> = Vec::new();
    for key in keys {
        contributors.clear();
        fold_free_binding(
            rule,
            &shape,
            &key,
            db,
            index,
            registry,
            potentials,
            constraints,
            table.is_some().then_some(&mut contributors),
        )?;
        stats.groundings += 1;
        stats.potentials += shape.pot_width;
        stats.constraints += shape.con_width;
        if let Some(t) = table.as_deref_mut() {
            let ordinal = t.begin_binding(key);
            for atom in &contributors {
                t.record_contributor(ordinal, atom);
            }
        }
    }
    Ok(stats)
}

/// Enumerate the rule's free-variable bindings: join all atoms over the
/// database pools, project onto the free variables, dedup by first
/// occurrence. The order is deterministic in pool order, which is what
/// keeps delta-spliced output byte-identical to a fresh grounding.
pub(crate) fn enumerate_free_bindings(
    rule: &ArithRule,
    shape: &ArithShape,
    db: &Database,
    index: Option<&crate::database::AtomIndex>,
) -> Vec<Vec<Sym>> {
    let all_atoms: Vec<&RAtom> = rule.terms.iter().flat_map(|t| &t.atoms).collect();
    let mut keys: Vec<Vec<Sym>> = Vec::new();
    let mut seen: FxHashSet<Vec<Sym>> = FxHashSet::default();
    enumerate(
        &all_atoms,
        0,
        db,
        index,
        &mut FxHashMap::default(),
        &mut |sub| {
            let key: Vec<Sym> = shape.free_vars.iter().map(|v| sub[v]).collect();
            if seen.insert(key.clone()) {
                keys.push(key);
            }
        },
    );
    keys
}

/// Expand one free binding's summations and emit its potential(s) or
/// constraint — exactly [`ArithShape::pot_width`] potentials and
/// [`ArithShape::con_width`] constraints are appended. When `contributors`
/// is given, every ground atom the fold instantiates is pushed into it
/// (the atoms whose observed values or pool membership this grounding
/// depends on — the splice table's dependency edges).
#[allow(clippy::too_many_arguments)]
pub(crate) fn fold_free_binding(
    rule: &ArithRule,
    shape: &ArithShape,
    key: &[Sym],
    db: &Database,
    index: Option<&crate::database::AtomIndex>,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
    mut contributors: Option<&mut Vec<GroundAtom>>,
) -> Result<(), ArithError> {
    let sub: FxHashMap<String, Sym> = shape
        .free_vars
        .iter()
        .cloned()
        .zip(key.iter().copied())
        .collect();
    let mut expr = LinExpr::constant(rule.constant);
    let mut nonlinear = false;
    for term in &rule.terms {
        // Expand the term's own summation bindings.
        let term_atoms: Vec<&RAtom> = term.atoms.iter().collect();
        let mut base = sub.clone();
        enumerate(&term_atoms, 0, db, index, &mut base, &mut |full| {
            let mut coef = term.coef;
            let mut target: Option<GroundAtom> = None;
            for atom in &term.atoms {
                let ground = instantiate(atom, full);
                if let Some(c) = contributors.as_deref_mut() {
                    c.push(ground.clone());
                }
                match db.resolve(&ground) {
                    Resolved::Observed(v) => coef *= v,
                    Resolved::Target => {
                        if target.replace(ground).is_some() {
                            nonlinear = true;
                        }
                    }
                }
            }
            if coef == 0.0 {
                return;
            }
            match target {
                Some(atom) => {
                    let var = registry.intern(&atom);
                    expr.add_term(var, coef);
                }
                None => {
                    expr.add_constant(coef);
                }
            }
        });
    }
    if nonlinear {
        return Err(ArithError::NonLinear {
            rule: rule.name.clone(),
        });
    }
    expr.normalize();

    // Normalize the comparison to ≤ 0 (or = 0).
    let (lhs, kind) = match rule.comparison {
        Comparison::LeqZero => (expr, ConstraintKind::LeqZero),
        Comparison::EqZero => (expr, ConstraintKind::EqZero),
        Comparison::GeqZero => (negate(expr), ConstraintKind::LeqZero),
    };
    match rule.weight {
        None => {
            constraints.push(GroundConstraint {
                expr: lhs,
                kind,
                origin: rule.name.clone(),
            });
        }
        Some(w) => {
            // Weighted: hinge on the violation. Equality uses two
            // hinges (|lhs| = max(0, lhs) + max(0, −lhs)).
            let mut emit = |e: LinExpr| {
                potentials.push(GroundPotential {
                    expr: e,
                    weight: w,
                    squared: rule.squared,
                    origin: rule.name.clone(),
                });
            };
            match kind {
                ConstraintKind::LeqZero => emit(lhs),
                ConstraintKind::EqZero => {
                    emit(lhs.clone());
                    emit(negate(lhs));
                }
            }
        }
    }
    Ok(())
}

fn negate(mut e: LinExpr) -> LinExpr {
    e.constant = -e.constant;
    for (_, c) in &mut e.terms {
        *c = -*c;
    }
    e
}

fn instantiate(pattern: &RAtom, sub: &FxHashMap<String, Sym>) -> GroundAtom {
    GroundAtom::new(
        pattern.pred,
        pattern
            .args
            .iter()
            .map(|t| match t {
                RTerm::Const(c) => *c,
                RTerm::Var(v) => sub[v],
            })
            .collect(),
    )
}

/// Unify one rule atom pattern against a ground atom, returning the
/// assignments it forces on the rule's *free* variables (`(free-var index,
/// symbol)` pairs, deduplicated) — or `None` if the pattern cannot have
/// instantiated the atom (constant mismatch, arity mismatch, or an
/// inconsistent repeated variable). An empty mask means the atom can enter
/// the summation of *every* free binding.
///
/// The delta regrounder uses this to decide which existing bindings a
/// freshly **added** atom can contribute to: an atom enters a binding's
/// summation only through a pattern instantiation that agrees with the
/// binding on every free variable the pattern mentions.
pub(crate) fn free_var_mask(
    pattern: &RAtom,
    atom: &GroundAtom,
    free_vars: &[String],
) -> Option<Vec<(usize, Sym)>> {
    if pattern.pred != atom.pred || pattern.args.len() != atom.args.len() {
        return None;
    }
    let mut local: FxHashMap<&str, Sym> = FxHashMap::default();
    let mut mask: Vec<(usize, Sym)> = Vec::new();
    for (t, &sym) in pattern.args.iter().zip(atom.args.iter()) {
        match t {
            RTerm::Const(k) => {
                if *k != sym {
                    return None;
                }
            }
            RTerm::Var(v) => match local.insert(v.as_str(), sym) {
                Some(prev) if prev != sym => return None,
                Some(_) => {}
                None => {
                    if let Some(i) = free_vars.iter().position(|f| f == v) {
                        mask.push((i, sym));
                    }
                }
            },
        }
    }
    Some(mask)
}

/// Join `atoms` against database pools, extending `sub`; call `f` on every
/// complete substitution. Atoms fully bound by `sub` act as filters only if
/// the ground atom is known... no — unknown atoms resolve to 0 later, so we
/// only require *pool membership* to bind unbound variables; fully bound
/// atoms pass through (their truth is applied during resolution).
///
/// With `index` present, the candidate walk probes the shortest posting
/// list among the atom's bound argument positions instead of scanning the
/// whole pool. Probing only skips candidates that fail unification at a
/// bound position, so the successful-binding order matches the scan
/// exactly.
fn enumerate(
    atoms: &[&RAtom],
    idx: usize,
    db: &Database,
    index: Option<&crate::database::AtomIndex>,
    sub: &mut FxHashMap<String, Sym>,
    f: &mut dyn FnMut(&FxHashMap<String, Sym>),
) {
    let Some(atom) = atoms.get(idx) else {
        f(sub);
        return;
    };
    // If the atom has no unbound variables, skip ahead (no branching).
    let unbound: Vec<&str> = atom
        .args
        .iter()
        .filter_map(|t| match t {
            RTerm::Var(v) if !sub.contains_key(v) => Some(v.as_str()),
            _ => None,
        })
        .collect();
    if unbound.is_empty() {
        enumerate(atoms, idx + 1, db, index, sub, f);
        return;
    }
    let pool = db.atoms_of(atom.pred);
    let postings: Option<&[u32]> = index.and_then(|ix| {
        let mut best: Option<&[u32]> = None;
        for (pos, t) in atom.args.iter().enumerate() {
            let sym = match t {
                RTerm::Const(k) => Some(*k),
                RTerm::Var(v) => sub.get(v).copied(),
            };
            if let Some(sym) = sym {
                let p = ix.postings(atom.pred, pos, sym);
                if best.is_none_or(|b: &[u32]| p.len() < b.len()) {
                    best = Some(p);
                    if p.is_empty() {
                        break;
                    }
                }
            }
        }
        best
    });
    let mut visit = |cand: &crate::atom::GroundAtom| {
        if cand.args.len() != atom.args.len() {
            return;
        }
        let mut bound: Vec<String> = Vec::new();
        let mut ok = true;
        for (t, &c) in atom.args.iter().zip(cand.args.iter()) {
            match t {
                RTerm::Const(k) => {
                    if *k != c {
                        ok = false;
                        break;
                    }
                }
                RTerm::Var(v) => match sub.get(v) {
                    Some(&b) => {
                        if b != c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        sub.insert(v.clone(), c);
                        bound.push(v.clone());
                    }
                },
            }
        }
        if ok {
            enumerate(atoms, idx + 1, db, index, sub, f);
        }
        for v in bound {
            sub.remove(&v);
        }
    };
    match postings {
        Some(postings) => {
            for &i in postings {
                visit(&pool[i as usize]);
            }
        }
        None => {
            for cand in pool {
                visit(cand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Vocabulary;
    use crate::rule::rvar;

    fn ratom(pred: crate::predicate::PredId, args: &[&str]) -> RAtom {
        RAtom {
            pred,
            args: args.iter().map(|a| rvar(a)).collect(),
        }
    }

    /// covers closed, inMap/explained open; 2 candidates × 2 targets.
    fn setup() -> (Vocabulary, Database) {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);
        let explained = vocab.open("explained", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["c1", "t1"]), 1.0);
        db.observe(GroundAtom::from_strs(covers, &["c2", "t1"]), 0.5);
        db.observe(GroundAtom::from_strs(covers, &["c2", "t2"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["c1"]));
        db.target(GroundAtom::from_strs(in_map, &["c2"]));
        db.target(GroundAtom::from_strs(explained, &["t1"]));
        db.target(GroundAtom::from_strs(explained, &["t2"]));
        (vocab, db)
    }

    #[test]
    fn explanation_cap_grounds_per_target() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        // explained(T) − Σ_C covers(C,T)·inMap(C) ≤ 0
        let rule = ArithRuleBuilder::new("cap")
            .term(1.0, vec![ratom(explained, &["T"])])
            .term(
                -1.0,
                vec![ratom(covers, &["C", "T"]), ratom(in_map, &["C"])],
            )
            .sum_over("C")
            .build()
            .unwrap();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        let stats = ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        assert_eq!(stats.groundings, 2, "one grounding per target");
        assert_eq!(stats.constraints, 2);
        assert!(pots.is_empty());

        // t1's constraint: explained(t1) − 1·inMap(c1) − 0.5·inMap(c2) ≤ 0.
        let e_t1 = registry
            .lookup(&GroundAtom::from_strs(explained, &["t1"]))
            .unwrap();
        let m_c1 = registry
            .lookup(&GroundAtom::from_strs(in_map, &["c1"]))
            .unwrap();
        let m_c2 = registry
            .lookup(&GroundAtom::from_strs(in_map, &["c2"]))
            .unwrap();
        let t1_con = cons
            .iter()
            .find(|c| c.expr.terms.iter().any(|&(v, _)| v == e_t1))
            .unwrap();
        let coef = |v: usize| {
            t1_con
                .expr
                .terms
                .iter()
                .find(|&&(x, _)| x == v)
                .map(|&(_, c)| c)
        };
        assert_eq!(coef(e_t1), Some(1.0));
        assert_eq!(coef(m_c1), Some(-1.0));
        assert_eq!(coef(m_c2), Some(-0.5));

        // t2's constraint involves only c2.
        let e_t2 = registry
            .lookup(&GroundAtom::from_strs(explained, &["t2"]))
            .unwrap();
        let t2_con = cons
            .iter()
            .find(|c| c.expr.terms.iter().any(|&(v, _)| v == e_t2))
            .unwrap();
        assert_eq!(t2_con.expr.terms.len(), 2);
    }

    #[test]
    fn weighted_equality_emits_two_hinges() {
        let (vocab, db) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        // inMap(C) = 0.5 softly (per candidate).
        let rule = ArithRuleBuilder::new("half")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .constant(-0.5)
            .eq()
            .weight(1.0)
            .build()
            .unwrap();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        let stats = ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        assert_eq!(stats.groundings, 2);
        assert_eq!(stats.potentials, 4, "two hinges per grounding");
        assert!(cons.is_empty());
        // At inMap = 0.8 the pair of hinges yields |0.8 − 0.5| = 0.3.
        let y = vec![0.8; registry.len()];
        let per_atom: f64 = pots.iter().map(|p| p.value(&y)).sum::<f64>() / 2.0;
        assert!((per_atom - 0.3).abs() < 1e-12);
    }

    #[test]
    fn geq_normalizes_to_leq() {
        let (vocab, db) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        // inMap(C) ≥ 0.2  ⇔  0.2 − inMap(C) ≤ 0.
        let rule = ArithRuleBuilder::new("floor")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .constant(-0.2)
            .geq()
            .build()
            .unwrap();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        assert_eq!(cons.len(), 2);
        for c in &cons {
            assert_eq!(c.kind, ConstraintKind::LeqZero);
            // Violated at 0, satisfied at 0.2+.
            let zeros = vec![0.0; registry.len()];
            assert!((c.violation(&zeros) - 0.2).abs() < 1e-12);
            let ok = vec![0.3; registry.len()];
            assert_eq!(c.violation(&ok), 0.0);
        }
    }

    #[test]
    fn nonlinear_term_rejected() {
        let (vocab, db) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        // inMap(C)·explained(T): two target atoms in one product.
        let rule = ArithRuleBuilder::new("bad")
            .term(1.0, vec![ratom(in_map, &["C"]), ratom(explained, &["T"])])
            .build()
            .unwrap();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        let err = ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap_err();
        assert!(matches!(
            err,
            GroundingError::Arith(ArithError::NonLinear { .. })
        ));
    }

    #[test]
    fn zero_coefficient_terms_vanish() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        // Unobserved covers atoms have truth 0 and must drop out: sum over
        // *all* C for target t2 touches covers(c1,t2) = 0.
        let rule = ArithRuleBuilder::new("cap")
            .term(
                -1.0,
                vec![ratom(covers, &["C", "T"]), ratom(in_map, &["C"])],
            )
            .constant(0.25)
            .sum_over("C")
            .build()
            .unwrap();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        for c in &cons {
            for &(_, coef) in &c.expr.terms {
                assert!(coef != 0.0);
            }
        }
    }

    #[test]
    fn misspelled_sum_var_rejected() {
        let (vocab, _) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        // sum_over("X") — no atom mentions X; previously this was silently
        // ignored, leaving C free and changing the rule's semantics.
        let err = ArithRuleBuilder::new("typo")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .sum_over("X")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ArithError::UnusedSumVar {
                rule: "typo".into(),
                var: "X".into()
            }
        );
    }

    #[test]
    fn duplicate_sum_var_rejected() {
        let (vocab, _) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        let err = ArithRuleBuilder::new("dup")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .sum_over("C")
            .sum_over("C")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ArithError::DuplicateSumVar {
                rule: "dup".into(),
                var: "C".into()
            }
        );
    }

    #[test]
    fn invalid_weights_and_coefficients_rejected_at_build() {
        let (vocab, _) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        // Negative weight.
        let err = ArithRuleBuilder::new("neg")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .weight(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ArithError::InvalidWeight { weight, .. } if weight == -1.0));
        // NaN weight no longer panics with a misleading message.
        let err = ArithRuleBuilder::new("nan")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .weight(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, ArithError::InvalidWeight { weight, .. } if weight.is_nan()));
        // Non-finite coefficient.
        let err = ArithRuleBuilder::new("coef")
            .term(f64::INFINITY, vec![ratom(in_map, &["C"])])
            .build()
            .unwrap_err();
        assert!(matches!(err, ArithError::InvalidCoefficient { .. }));
        // Non-finite constant.
        let err = ArithRuleBuilder::new("const")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .constant(f64::NEG_INFINITY)
            .build()
            .unwrap_err();
        assert!(matches!(err, ArithError::InvalidConstant { .. }));
    }

    #[test]
    fn hand_built_rules_revalidated_at_grounding() {
        let (vocab, db) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        // Bypass the builder: the grounder must reject the same rules.
        let rule = ArithRule {
            name: "hand".into(),
            terms: vec![ArithTerm {
                coef: 1.0,
                atoms: vec![ratom(in_map, &["C"])],
            }],
            constant: 0.0,
            comparison: Comparison::LeqZero,
            weight: Some(f64::NAN),
            squared: false,
            sum_vars: Vec::new(),
        };
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        let err = ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap_err();
        assert!(matches!(
            err,
            GroundingError::Arith(ArithError::InvalidWeight { .. })
        ));
        assert!(pots.is_empty() && cons.is_empty());
    }

    #[test]
    fn free_var_mask_matches_pattern_instantiations() {
        let (vocab, _) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let free = vec!["T".to_owned()];
        // covers(C,T) against covers(c1,t1): C is a sum var (not free), T
        // is free position 0.
        let pattern = ratom(covers, &["C", "T"]);
        let atom = GroundAtom::from_strs(covers, &["c1", "t1"]);
        let mask = free_var_mask(&pattern, &atom, &free).unwrap();
        assert_eq!(mask, vec![(0usize, cms_data::Sym::new("t1"))]);
        // Repeated variable must bind consistently.
        let pattern = ratom(covers, &["C", "C"]);
        assert!(free_var_mask(&pattern, &atom, &free).is_none());
        let same = GroundAtom::from_strs(covers, &["c1", "c1"]);
        assert_eq!(free_var_mask(&pattern, &same, &free), Some(vec![]));
        // Constant mismatch.
        let pattern = RAtom {
            pred: covers,
            args: vec![crate::rule::rconst("c9"), rvar("T")],
        };
        assert!(free_var_mask(&pattern, &atom, &free).is_none());
    }
}

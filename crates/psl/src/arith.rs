//! Arithmetic rules: linear (in)equalities over atoms with summation
//! variables — PSL's second rule family.
//!
//! An arithmetic rule is a linear combination of *terms*, each a
//! coefficient times a product of atoms, compared against zero:
//!
//! ```text
//! explained(T) − Σ_C covers(C, T) · inMap(C)  ≤  0
//! ```
//!
//! Variables listed as **summation variables** (`C` above) are summed over
//! all database-known bindings inside one grounding; the remaining *free*
//! variables (`T`) enumerate groundings. After resolution, observed atoms
//! in a product fold into the coefficient; at most one target atom may
//! remain per term (the expression must stay linear in the MAP variables —
//! [`ArithError::NonLinear`] otherwise).
//!
//! Hard rules ground to [`GroundConstraint`]s; weighted rules to hinge
//! potentials on the violation (`max(0, lhs)` for `≤`, both directions for
//! `=`).

use crate::atom::GroundAtom;
use crate::database::{Database, Resolved};
use crate::grounding::VarRegistry;
use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use crate::linear::LinExpr;
use crate::rule::{RAtom, RTerm};
use cms_data::{FxHashMap, FxHashSet, Sym};

/// Comparison of the rule's left-hand side against zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Comparison {
    /// `lhs ≤ 0`.
    LeqZero,
    /// `lhs = 0`.
    EqZero,
    /// `lhs ≥ 0`.
    GeqZero,
}

/// One additive term: `coef · Π atoms`.
#[derive(Clone, Debug)]
pub struct ArithTerm {
    /// Constant coefficient.
    pub coef: f64,
    /// Atom product (observed atoms fold into the coefficient).
    pub atoms: Vec<RAtom>,
}

/// An arithmetic rule.
#[derive(Clone, Debug)]
pub struct ArithRule {
    /// Diagnostic name.
    pub name: String,
    /// Additive terms.
    pub terms: Vec<ArithTerm>,
    /// Constant added to the left-hand side.
    pub constant: f64,
    /// Comparison against zero.
    pub comparison: Comparison,
    /// `Some(w)` = weighted (hinge on the violation); `None` = hard.
    pub weight: Option<f64>,
    /// Square the hinge (weighted rules only).
    pub squared: bool,
    /// Variables summed over inside each grounding.
    pub sum_vars: Vec<String>,
}

/// Errors specific to arithmetic-rule grounding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArithError {
    /// A term resolved to more than one target atom (nonlinear).
    NonLinear {
        /// The rule's name.
        rule: String,
    },
    /// A free variable appears in no atom (cannot be anchored).
    Unanchored {
        /// The rule's name.
        rule: String,
        /// The variable.
        var: String,
    },
}

impl std::fmt::Display for ArithError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithError::NonLinear { rule } => {
                write!(
                    f,
                    "arithmetic rule {rule:?} has a term with two target atoms"
                )
            }
            ArithError::Unanchored { rule, var } => {
                write!(
                    f,
                    "arithmetic rule {rule:?}: variable {var:?} appears in no atom"
                )
            }
        }
    }
}

impl std::error::Error for ArithError {}

/// Fluent builder for [`ArithRule`].
#[derive(Debug)]
pub struct ArithRuleBuilder {
    rule: ArithRule,
}

impl ArithRuleBuilder {
    /// Start a rule (default: hard `≤ 0`).
    pub fn new(name: &str) -> ArithRuleBuilder {
        ArithRuleBuilder {
            rule: ArithRule {
                name: name.to_owned(),
                terms: Vec::new(),
                constant: 0.0,
                comparison: Comparison::LeqZero,
                weight: None,
                squared: false,
                sum_vars: Vec::new(),
            },
        }
    }

    /// Add a term `coef · Π atoms`.
    pub fn term(mut self, coef: f64, atoms: Vec<RAtom>) -> ArithRuleBuilder {
        self.rule.terms.push(ArithTerm { coef, atoms });
        self
    }

    /// Add a constant to the left-hand side.
    pub fn constant(mut self, c: f64) -> ArithRuleBuilder {
        self.rule.constant += c;
        self
    }

    /// Compare `= 0`.
    pub fn eq(mut self) -> ArithRuleBuilder {
        self.rule.comparison = Comparison::EqZero;
        self
    }

    /// Compare `≥ 0`.
    pub fn geq(mut self) -> ArithRuleBuilder {
        self.rule.comparison = Comparison::GeqZero;
        self
    }

    /// Compare `≤ 0` (the default).
    pub fn leq(mut self) -> ArithRuleBuilder {
        self.rule.comparison = Comparison::LeqZero;
        self
    }

    /// Mark a variable as a summation variable.
    pub fn sum_over(mut self, var: &str) -> ArithRuleBuilder {
        self.rule.sum_vars.push(var.to_owned());
        self
    }

    /// Make the rule weighted.
    pub fn weight(mut self, w: f64) -> ArithRuleBuilder {
        assert!(w >= 0.0, "rule weight must be non-negative");
        self.rule.weight = Some(w);
        self
    }

    /// Square the hinge.
    pub fn squared(mut self) -> ArithRuleBuilder {
        self.rule.squared = true;
        self
    }

    /// Finish.
    pub fn build(self) -> ArithRule {
        self.rule
    }
}

/// Output of grounding one arithmetic rule.
#[derive(Debug, Default)]
pub struct ArithGroundStats {
    /// Groundings (free-variable substitutions) produced.
    pub groundings: usize,
    /// Potentials emitted.
    pub potentials: usize,
    /// Constraints emitted.
    pub constraints: usize,
}

/// Ground an arithmetic rule, probing the database's argument-position
/// index to skip candidates that cannot unify (see [`crate::grounding`] for
/// the strategy). Produces byte-identical output to
/// [`ground_arith_rule_naive`] — probing only skips candidates the naive
/// scan would have rejected, so the successful-binding order is unchanged.
pub fn ground_arith_rule(
    rule: &ArithRule,
    db: &Database,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
) -> Result<ArithGroundStats, ArithError> {
    let guard = db.index();
    let index = guard.as_ref().expect("database index ensured");
    ground_arith_impl(rule, db, Some(index), registry, potentials, constraints)
}

/// Ground an arithmetic rule with pure pool scans — the reference
/// implementation backing [`crate::Program::ground_naive`].
pub fn ground_arith_rule_naive(
    rule: &ArithRule,
    db: &Database,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
) -> Result<ArithGroundStats, ArithError> {
    ground_arith_impl(rule, db, None, registry, potentials, constraints)
}

fn ground_arith_impl(
    rule: &ArithRule,
    db: &Database,
    index: Option<&crate::database::AtomIndex>,
    registry: &mut VarRegistry,
    potentials: &mut Vec<GroundPotential>,
    constraints: &mut Vec<GroundConstraint>,
) -> Result<ArithGroundStats, ArithError> {
    let sum_vars: FxHashSet<&str> = rule.sum_vars.iter().map(String::as_str).collect();
    // Free variables, in first-occurrence order.
    let mut free_vars: Vec<String> = Vec::new();
    for term in &rule.terms {
        for atom in &term.atoms {
            for t in &atom.args {
                if let RTerm::Var(v) = t {
                    if !sum_vars.contains(v.as_str()) && !free_vars.contains(v) {
                        free_vars.push(v.clone());
                    }
                }
            }
        }
    }
    // Every free variable must be anchorable by some atom.
    for v in &free_vars {
        let anchored = rule
            .terms
            .iter()
            .flat_map(|t| &t.atoms)
            .any(|a| a.args.iter().any(|t| matches!(t, RTerm::Var(x) if x == v)));
        if !anchored {
            return Err(ArithError::Unanchored {
                rule: rule.name.clone(),
                var: v.clone(),
            });
        }
    }

    // Enumerate free substitutions: join all atoms over db pools, project
    // onto the free variables, dedup.
    let all_atoms: Vec<&RAtom> = rule.terms.iter().flat_map(|t| &t.atoms).collect();
    let mut free_subs: Vec<FxHashMap<String, Sym>> = Vec::new();
    let mut seen: FxHashSet<Vec<Sym>> = FxHashSet::default();
    enumerate(
        &all_atoms,
        0,
        db,
        index,
        &mut FxHashMap::default(),
        &mut |sub| {
            let key: Vec<Sym> = free_vars.iter().map(|v| sub[v]).collect();
            if seen.insert(key) {
                let projected: FxHashMap<String, Sym> =
                    free_vars.iter().map(|v| (v.clone(), sub[v])).collect();
                free_subs.push(projected);
            }
        },
    );

    let mut stats = ArithGroundStats::default();
    for sub in &free_subs {
        let mut expr = LinExpr::constant(rule.constant);
        let mut nonlinear = false;
        for term in &rule.terms {
            // Expand the term's own summation bindings.
            let term_atoms: Vec<&RAtom> = term.atoms.iter().collect();
            let mut base = sub.clone();
            enumerate(&term_atoms, 0, db, index, &mut base, &mut |full| {
                let mut coef = term.coef;
                let mut target: Option<GroundAtom> = None;
                for atom in &term.atoms {
                    let ground = instantiate(atom, full);
                    match db.resolve(&ground) {
                        Resolved::Observed(v) => coef *= v,
                        Resolved::Target => {
                            if target.replace(ground).is_some() {
                                nonlinear = true;
                            }
                        }
                    }
                }
                if coef == 0.0 {
                    return;
                }
                match target {
                    Some(atom) => {
                        let var = registry.intern(&atom);
                        expr.add_term(var, coef);
                    }
                    None => {
                        expr.add_constant(coef);
                    }
                }
            });
        }
        if nonlinear {
            return Err(ArithError::NonLinear {
                rule: rule.name.clone(),
            });
        }
        expr.normalize();
        stats.groundings += 1;

        // Normalize the comparison to ≤ 0 (or = 0).
        let (lhs, kind) = match rule.comparison {
            Comparison::LeqZero => (expr, ConstraintKind::LeqZero),
            Comparison::EqZero => (expr, ConstraintKind::EqZero),
            Comparison::GeqZero => (negate(expr), ConstraintKind::LeqZero),
        };
        match rule.weight {
            None => {
                constraints.push(GroundConstraint {
                    expr: lhs,
                    kind,
                    origin: rule.name.clone(),
                });
                stats.constraints += 1;
            }
            Some(w) => {
                // Weighted: hinge on the violation. Equality uses two
                // hinges (|lhs| = max(0, lhs) + max(0, −lhs)).
                let mut emit = |e: LinExpr| {
                    potentials.push(GroundPotential {
                        expr: e,
                        weight: w,
                        squared: rule.squared,
                        origin: rule.name.clone(),
                    });
                    stats.potentials += 1;
                };
                match kind {
                    ConstraintKind::LeqZero => emit(lhs),
                    ConstraintKind::EqZero => {
                        emit(lhs.clone());
                        emit(negate(lhs));
                    }
                }
            }
        }
    }
    Ok(stats)
}

fn negate(mut e: LinExpr) -> LinExpr {
    e.constant = -e.constant;
    for (_, c) in &mut e.terms {
        *c = -*c;
    }
    e
}

fn instantiate(pattern: &RAtom, sub: &FxHashMap<String, Sym>) -> GroundAtom {
    GroundAtom::new(
        pattern.pred,
        pattern
            .args
            .iter()
            .map(|t| match t {
                RTerm::Const(c) => *c,
                RTerm::Var(v) => sub[v],
            })
            .collect(),
    )
}

/// Join `atoms` against database pools, extending `sub`; call `f` on every
/// complete substitution. Atoms fully bound by `sub` act as filters only if
/// the ground atom is known... no — unknown atoms resolve to 0 later, so we
/// only require *pool membership* to bind unbound variables; fully bound
/// atoms pass through (their truth is applied during resolution).
///
/// With `index` present, the candidate walk probes the shortest posting
/// list among the atom's bound argument positions instead of scanning the
/// whole pool. Probing only skips candidates that fail unification at a
/// bound position, so the successful-binding order matches the scan
/// exactly.
fn enumerate(
    atoms: &[&RAtom],
    idx: usize,
    db: &Database,
    index: Option<&crate::database::AtomIndex>,
    sub: &mut FxHashMap<String, Sym>,
    f: &mut dyn FnMut(&FxHashMap<String, Sym>),
) {
    let Some(atom) = atoms.get(idx) else {
        f(sub);
        return;
    };
    // If the atom has no unbound variables, skip ahead (no branching).
    let unbound: Vec<&str> = atom
        .args
        .iter()
        .filter_map(|t| match t {
            RTerm::Var(v) if !sub.contains_key(v) => Some(v.as_str()),
            _ => None,
        })
        .collect();
    if unbound.is_empty() {
        enumerate(atoms, idx + 1, db, index, sub, f);
        return;
    }
    let pool = db.atoms_of(atom.pred);
    let postings: Option<&[u32]> = index.and_then(|ix| {
        let mut best: Option<&[u32]> = None;
        for (pos, t) in atom.args.iter().enumerate() {
            let sym = match t {
                RTerm::Const(k) => Some(*k),
                RTerm::Var(v) => sub.get(v).copied(),
            };
            if let Some(sym) = sym {
                let p = ix.postings(atom.pred, pos, sym);
                if best.is_none_or(|b: &[u32]| p.len() < b.len()) {
                    best = Some(p);
                    if p.is_empty() {
                        break;
                    }
                }
            }
        }
        best
    });
    let mut visit = |cand: &crate::atom::GroundAtom| {
        if cand.args.len() != atom.args.len() {
            return;
        }
        let mut bound: Vec<String> = Vec::new();
        let mut ok = true;
        for (t, &c) in atom.args.iter().zip(cand.args.iter()) {
            match t {
                RTerm::Const(k) => {
                    if *k != c {
                        ok = false;
                        break;
                    }
                }
                RTerm::Var(v) => match sub.get(v) {
                    Some(&b) => {
                        if b != c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        sub.insert(v.clone(), c);
                        bound.push(v.clone());
                    }
                },
            }
        }
        if ok {
            enumerate(atoms, idx + 1, db, index, sub, f);
        }
        for v in bound {
            sub.remove(&v);
        }
    };
    match postings {
        Some(postings) => {
            for &i in postings {
                visit(&pool[i as usize]);
            }
        }
        None => {
            for cand in pool {
                visit(cand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Vocabulary;
    use crate::rule::rvar;

    fn ratom(pred: crate::predicate::PredId, args: &[&str]) -> RAtom {
        RAtom {
            pred,
            args: args.iter().map(|a| rvar(a)).collect(),
        }
    }

    /// covers closed, inMap/explained open; 2 candidates × 2 targets.
    fn setup() -> (Vocabulary, Database) {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.open("inMap", 1);
        let explained = vocab.open("explained", 1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["c1", "t1"]), 1.0);
        db.observe(GroundAtom::from_strs(covers, &["c2", "t1"]), 0.5);
        db.observe(GroundAtom::from_strs(covers, &["c2", "t2"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["c1"]));
        db.target(GroundAtom::from_strs(in_map, &["c2"]));
        db.target(GroundAtom::from_strs(explained, &["t1"]));
        db.target(GroundAtom::from_strs(explained, &["t2"]));
        (vocab, db)
    }

    #[test]
    fn explanation_cap_grounds_per_target() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        // explained(T) − Σ_C covers(C,T)·inMap(C) ≤ 0
        let rule = ArithRuleBuilder::new("cap")
            .term(1.0, vec![ratom(explained, &["T"])])
            .term(
                -1.0,
                vec![ratom(covers, &["C", "T"]), ratom(in_map, &["C"])],
            )
            .sum_over("C")
            .build();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        let stats = ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        assert_eq!(stats.groundings, 2, "one grounding per target");
        assert_eq!(stats.constraints, 2);
        assert!(pots.is_empty());

        // t1's constraint: explained(t1) − 1·inMap(c1) − 0.5·inMap(c2) ≤ 0.
        let e_t1 = registry
            .lookup(&GroundAtom::from_strs(explained, &["t1"]))
            .unwrap();
        let m_c1 = registry
            .lookup(&GroundAtom::from_strs(in_map, &["c1"]))
            .unwrap();
        let m_c2 = registry
            .lookup(&GroundAtom::from_strs(in_map, &["c2"]))
            .unwrap();
        let t1_con = cons
            .iter()
            .find(|c| c.expr.terms.iter().any(|&(v, _)| v == e_t1))
            .unwrap();
        let coef = |v: usize| {
            t1_con
                .expr
                .terms
                .iter()
                .find(|&&(x, _)| x == v)
                .map(|&(_, c)| c)
        };
        assert_eq!(coef(e_t1), Some(1.0));
        assert_eq!(coef(m_c1), Some(-1.0));
        assert_eq!(coef(m_c2), Some(-0.5));

        // t2's constraint involves only c2.
        let e_t2 = registry
            .lookup(&GroundAtom::from_strs(explained, &["t2"]))
            .unwrap();
        let t2_con = cons
            .iter()
            .find(|c| c.expr.terms.iter().any(|&(v, _)| v == e_t2))
            .unwrap();
        assert_eq!(t2_con.expr.terms.len(), 2);
    }

    #[test]
    fn weighted_equality_emits_two_hinges() {
        let (vocab, db) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        // inMap(C) = 0.5 softly (per candidate).
        let rule = ArithRuleBuilder::new("half")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .constant(-0.5)
            .eq()
            .weight(1.0)
            .build();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        let stats = ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        assert_eq!(stats.groundings, 2);
        assert_eq!(stats.potentials, 4, "two hinges per grounding");
        assert!(cons.is_empty());
        // At inMap = 0.8 the pair of hinges yields |0.8 − 0.5| = 0.3.
        let y = vec![0.8; registry.len()];
        let per_atom: f64 = pots.iter().map(|p| p.value(&y)).sum::<f64>() / 2.0;
        assert!((per_atom - 0.3).abs() < 1e-12);
    }

    #[test]
    fn geq_normalizes_to_leq() {
        let (vocab, db) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        // inMap(C) ≥ 0.2  ⇔  0.2 − inMap(C) ≤ 0.
        let rule = ArithRuleBuilder::new("floor")
            .term(1.0, vec![ratom(in_map, &["C"])])
            .constant(-0.2)
            .geq()
            .build();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        assert_eq!(cons.len(), 2);
        for c in &cons {
            assert_eq!(c.kind, ConstraintKind::LeqZero);
            // Violated at 0, satisfied at 0.2+.
            let zeros = vec![0.0; registry.len()];
            assert!((c.violation(&zeros) - 0.2).abs() < 1e-12);
            let ok = vec![0.3; registry.len()];
            assert_eq!(c.violation(&ok), 0.0);
        }
    }

    #[test]
    fn nonlinear_term_rejected() {
        let (vocab, db) = setup();
        let in_map = vocab.id_of("inMap").unwrap();
        let explained = vocab.id_of("explained").unwrap();
        // inMap(C)·explained(T): two target atoms in one product.
        let rule = ArithRuleBuilder::new("bad")
            .term(1.0, vec![ratom(in_map, &["C"]), ratom(explained, &["T"])])
            .build();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        let err = ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap_err();
        assert!(matches!(err, ArithError::NonLinear { .. }));
    }

    #[test]
    fn zero_coefficient_terms_vanish() {
        let (vocab, db) = setup();
        let covers = vocab.id_of("covers").unwrap();
        let in_map = vocab.id_of("inMap").unwrap();
        // Unobserved covers atoms have truth 0 and must drop out: sum over
        // *all* C for target t2 touches covers(c1,t2) = 0.
        let rule = ArithRuleBuilder::new("cap")
            .term(
                -1.0,
                vec![ratom(covers, &["C", "T"]), ratom(in_map, &["C"])],
            )
            .constant(0.25)
            .sum_over("C")
            .build();
        let mut registry = VarRegistry::new();
        let (mut pots, mut cons) = (Vec::new(), Vec::new());
        ground_arith_rule(&rule, &db, &mut registry, &mut pots, &mut cons).unwrap();
        for c in &cons {
            for &(_, coef) in &c.expr.terms {
                assert!(coef != 0.0);
            }
        }
    }
}

//! Delta grounding: incremental re-grounding of PSL programs.
//!
//! Flip-based search (local search over `inMap` selections, MM-style
//! iterative schemes) evaluates long chains of *nearly identical*
//! databases: each step changes one observed truth value, or adds/retracts
//! a handful of atoms. Paying a full [`crate::Program::ground`] per step
//! re-derives thousands of ground terms that did not change. This module
//! makes the grounder reuse them.
//!
//! ## Design
//!
//! **Generation-stamped mutations.** [`crate::Database`] bumps a
//! generation counter on every effective write and logs each mutation as a
//! [`DeltaEntry`] (`Added` / `Removed` / `Changed {old, new}`). Appends
//! patch the argument-position index's posting lists in place (the index
//! carries `built_at`/`stamp` generations); only retractions — which shift
//! pool positions — invalidate it. [`crate::Database::take_delta`] drains
//! the log into a [`DbDelta`], the exact difference between two grounding
//! snapshots.
//!
//! **Splice support.** Every plan-compiled grounding
//! ([`crate::Program::ground`] / `ground_with`) records, per source
//! (logical rule, arithmetic rule, raw term), how many potentials and
//! constraints it emitted — the term pool is segmented in canonical
//! source order — plus, for logical rules, a *binding table* mapping each
//! complete join binding to the artifact it produced (potential index,
//! constraint index, constant-loss contribution, or pruned). The table is
//! what lets a later reground patch single groundings without re-running
//! the join.
//!
//! **Arithmetic splice tables.** Arithmetic rules fold summations across
//! bindings, so their splice unit is the *free-variable binding*, not the
//! join binding: grounding records an `ArithTable` holding the binding
//! keys in emission order plus a dependency map from every ground atom a
//! binding's summation folds (its *contributors*, captured during the
//! fold) to the binding ordinals it feeds. Each binding emits a fixed
//! number of artifacts (`ArithShape`'s widths), so ordinal `b` owns the
//! segment-relative artifact range `[b·width, (b+1)·width)` and single
//! bindings can be re-folded in place.
//!
//! **Dependency map.** The compiled [`JoinPlan`]s know every predicate a
//! rule's literals touch (body, negated body, and head — closed-world
//! resolution means a rule's ground terms depend on *only* those pools and
//! values). [`DependencyMap`] inverts that into predicate → dependent rule
//! indices; a source whose predicates are disjoint from the delta's is
//! spliced into the new ground program untouched.
//!
//! **Re-grounding granularity.** [`crate::Program::reground`] recomputes,
//! per dirty source:
//!
//! * *Value-only deltas* (`Changed` entries only — pool membership is
//!   untouched, so the substitution set of every join is provably
//!   unchanged): for each mutated atom, the plan is executed **seeded**
//!   with the atom's bindings at every literal that can instantiate it,
//!   enumerating exactly the groundings that touch the atom. Their old
//!   artifacts are looked up in the binding table and removed (including
//!   constant-loss contributions), and the groundings are re-emitted
//!   against the new values — pruned ↔ potential ↔ constraint transitions
//!   included. Dirty *arithmetic* rules re-fold exactly the free bindings
//!   the mutated atoms contribute to (`ArithTable` lookup — the binding
//!   set itself is provably unchanged); untouched bindings splice
//!   byte-identically and keep their ADMM duals.
//! * *Pool deltas* (`Added`/`Removed` present): dirty logical rules are
//!   re-grounded from scratch; clean ones are still spliced. Dirty
//!   arithmetic rules re-enumerate their free bindings and diff against
//!   the table: brand-new bindings ground fresh, vanished ones compact
//!   out, and surviving bindings splice unless a mutated atom touches
//!   their summation (`Changed`/`Removed` atoms via the contributor map;
//!   `Added` atoms via pattern unification — an added atom can only enter
//!   a binding whose key agrees with the free variables the atom's
//!   pattern binds, see `crate::arith::free_var_mask`).
//! * *Raw terms* are ground atoms, so their dirtiness test is exact atom
//!   equality against the delta; dirty raw terms are recomputed (they are
//!   single linear expressions — no joins).
//!
//! The spliced program shares the prior [`crate::VarRegistry`]: variable
//! indices of surviving atoms are stable, which is what makes warm-started
//! ADMM ([`crate::GroundProgram::solve_warm`]) a drop-in — the previous
//! consensus vector indexes the new program directly. (The registry may
//! retain atoms that no longer occur in any term; they simply stay
//! unconstrained.)
//!
//! **Term identity.** Every reground additionally records a `DualReuse`
//! map — new term position → prior term position for spliced terms. It is
//! what [`crate::GroundProgram::carry_duals`] uses to transplant the
//! ADMM scaled duals of unchanged terms across a reground, so
//! [`crate::GroundProgram::solve_warm_dual`] resumes from both the prior
//! consensus *and* the prior dual state (recomputed terms start cold).
//!
//! `reground(delta)` is equivalent to a fresh `ground()` up to term and
//! variable order — property tests over random rules and mutation
//! sequences enforce it, and [`crate::GroundStats::terms_reused`] /
//! [`crate::GroundStats::terms_recomputed`] report how much work the
//! splice saved.

use crate::arith::{
    arith_shape, enumerate_free_bindings, fold_free_binding, free_var_mask,
    ground_arith_rule_recorded,
};
use crate::atom::GroundAtom;
use crate::grounding::{emit, ground_rule, GroundSink, GroundStats, GroundingError};
use crate::hinge::{GroundConstraint, GroundPotential};
use crate::plan::JoinPlan;
use crate::predicate::PredId;
use crate::program::{remap_expr, GroundProgram, Program, RawArtifact, RuleGrounding};
use cms_data::{FxHashMap, FxHashSet, Sym};
use std::time::Instant;

/// What happened to one atom.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DeltaKind {
    /// The atom entered its predicate pool (new observation or target).
    Added,
    /// The atom left the database ([`crate::Database::retract`]).
    Removed,
    /// An observed truth value changed; pools are untouched.
    Changed {
        /// Value before the write.
        old: f64,
        /// Value after the write (clamped to `[0,1]`).
        new: f64,
    },
}

/// One logged mutation.
#[derive(Clone, PartialEq, Debug)]
pub struct DeltaEntry {
    /// The mutated atom.
    pub atom: GroundAtom,
    /// What happened to it.
    pub kind: DeltaKind,
}

/// An ordered batch of database mutations between two grounding snapshots,
/// **coalesced to its net effect**.
///
/// [`crate::Database::take_delta`] drains the raw mutation log and folds it
/// per atom before stamping: an in-window `Added` cancelled by a later
/// `Removed` disappears entirely, chains of `Changed` fold to one net
/// `Changed { old, new }` (dropped outright when `old == new`, i.e. an
/// a→b→a round-trip), and `Changed` followed by `Removed` folds to
/// `Removed`. The delta therefore carries **two** sizes: the *raw* count of
/// logged mutations ([`DbDelta::raw_entries`], which the guard checks
/// against the generation span) and the *net* entry list
/// ([`DbDelta::entries`], which the regrounder splices). See the
/// "Batched deltas" section of `docs/robustness.md`.
///
/// Deltas are **stamped** with the generation span they cover (`base..end`)
/// and the identity of the database that produced them;
/// [`crate::Program::reground`] refuses — via
/// [`RegroundError::StateMismatch`] — to splice a delta whose stamps do
/// not line up with the prior ground program and the current database.
#[derive(Clone, Default, Debug)]
pub struct DbDelta {
    entries: Vec<DeltaEntry>,
    /// Number of raw mutations logged before coalescing — one per
    /// generation step, which is what the reground guard verifies.
    raw: usize,
    /// Database generation the delta starts from (the generation the prior
    /// grounding snapshot was taken at).
    base: u64,
    /// Database generation after the last logged mutation.
    end: u64,
    /// Identity of the producing [`crate::Database`].
    db: u64,
}

impl DbDelta {
    pub(crate) fn new(
        entries: Vec<DeltaEntry>,
        raw: usize,
        base: u64,
        end: u64,
        db: u64,
    ) -> DbDelta {
        DbDelta {
            entries,
            raw,
            base,
            end,
            db,
        }
    }

    /// Generation this delta starts from.
    pub fn base_generation(&self) -> u64 {
        self.base
    }

    /// Generation this delta ends at.
    pub fn end_generation(&self) -> u64 {
        self.end
    }

    /// Identity ([`crate::Database::id`]) of the producing database.
    pub fn db_id(&self) -> u64 {
        self.db
    }

    /// True iff no mutations were logged **and** the generation span is
    /// zero. An entry-less delta whose stamps span one or more generations
    /// is *not* empty: it is either a batch that coalesced to nothing
    /// (every raw mutation cancelled out — [`DbDelta::is_net_empty`], which
    /// the regrounder short-circuits after verifying the stamps) or a
    /// tampered log whose raw count disagrees with the span (which the
    /// reground guard rejects).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.end == self.base
    }

    /// True iff the raw mutations coalesced to no net effect (e.g. a value
    /// flipped a→b→a, or an atom added and retracted within the window).
    /// The database state then *equals* the snapshot the delta starts from,
    /// so a reground of a net-empty delta is a provable no-op.
    pub fn is_net_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of **net** mutations after coalescing.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of **raw** mutations logged before coalescing. The database
    /// bumps its generation exactly once per raw mutation, so the reground
    /// guard checks `raw_entries() == end − base` (the coalesced entry
    /// list is allowed to be shorter).
    pub fn raw_entries(&self) -> usize {
        self.raw
    }

    /// The net mutations, ordered by each atom's first appearance in the
    /// raw log.
    pub fn entries(&self) -> &[DeltaEntry] {
        &self.entries
    }

    /// True iff any mutation changed pool *membership* (added/removed an
    /// atom) rather than just an observed value. Value-only deltas keep
    /// every join's substitution set intact, enabling the seeded fast
    /// path of [`crate::Program::reground`].
    pub fn pools_changed(&self) -> bool {
        self.entries
            .iter()
            .any(|e| !matches!(e.kind, DeltaKind::Changed { .. }))
    }

    /// The set of predicates with at least one mutated atom.
    pub(crate) fn preds(&self) -> FxHashSet<PredId> {
        self.entries.iter().map(|e| e.atom.pred).collect()
    }

    /// The set of mutated atoms (for exact-atom dirtiness tests).
    pub(crate) fn atom_set(&self) -> FxHashSet<GroundAtom> {
        self.entries.iter().map(|e| e.atom.clone()).collect()
    }
}

/// Per-atom net effect tracked by [`coalesce`], folded in write order.
#[derive(Clone, Copy)]
enum NetEffect {
    /// The atom entered the pool within the window (later value writes
    /// fold into the add; the regrounder reads the live value anyway).
    Added,
    /// The atom left the database.
    Removed,
    /// Value-only: first old value, last new value.
    Changed { old: f64, new: f64 },
    /// Retracted and then re-added within the window. Pool positions
    /// shifted, so this cannot fold to a `Changed`; it emits `Removed`
    /// followed by `Added`.
    RemovedAdded,
    /// An in-window add was retracted again: the atom existed neither at
    /// the base snapshot nor now, and base-pool positions are restored
    /// (removals only ever shift atoms appended after the base), so the
    /// pair vanishes from the net delta entirely.
    Cancelled,
}

/// Collapse a drained mutation log to its net per-atom effect.
///
/// Folding rules (the only transitions [`crate::Database`]'s write rules
/// can produce — impossible ones are tolerated by keeping the later kind):
/// `Added`+`Removed` cancel, `Changed` chains fold to one
/// `Changed { first old, last new }` (dropped at emission when
/// `old == new`), `Changed`+`Removed` folds to `Removed`, and
/// `Removed`+`Added` stays a `Removed`,`Added` pair (pool positions
/// shifted, so it is still a pool delta). Output entries are ordered by
/// each atom's first appearance in the raw log.
pub(crate) fn coalesce(entries: Vec<DeltaEntry>) -> Vec<DeltaEntry> {
    if entries.len() <= 1 {
        return entries;
    }
    let mut order: Vec<GroundAtom> = Vec::new();
    let mut state: FxHashMap<GroundAtom, NetEffect> = FxHashMap::default();
    for e in entries {
        match state.get_mut(&e.atom) {
            None => {
                let net = match e.kind {
                    DeltaKind::Added => NetEffect::Added,
                    DeltaKind::Removed => NetEffect::Removed,
                    DeltaKind::Changed { old, new } => NetEffect::Changed { old, new },
                };
                order.push(e.atom.clone());
                state.insert(e.atom, net);
            }
            Some(s) => {
                *s = match (*s, e.kind) {
                    (NetEffect::Added, DeltaKind::Changed { .. }) => NetEffect::Added,
                    (NetEffect::Added, DeltaKind::Removed) => NetEffect::Cancelled,
                    (NetEffect::Changed { old, .. }, DeltaKind::Changed { new, .. }) => {
                        NetEffect::Changed { old, new }
                    }
                    (NetEffect::Changed { .. }, DeltaKind::Removed) => NetEffect::Removed,
                    (NetEffect::Removed, DeltaKind::Added) => NetEffect::RemovedAdded,
                    (NetEffect::RemovedAdded, DeltaKind::Changed { .. }) => NetEffect::RemovedAdded,
                    (NetEffect::RemovedAdded, DeltaKind::Removed) => NetEffect::Removed,
                    (NetEffect::Cancelled, DeltaKind::Added) => NetEffect::Added,
                    // The database's write rules cannot produce these
                    // (e.g. `Changed` on an atom it just removed); keep
                    // the later kind so a corrupted log still nets to
                    // *something* the guard can weigh against its span.
                    (_, DeltaKind::Added) => NetEffect::Added,
                    (_, DeltaKind::Removed) => NetEffect::Removed,
                    (_, DeltaKind::Changed { old, new }) => NetEffect::Changed { old, new },
                };
            }
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for atom in order {
        let net = state.remove(&atom).expect("every ordered atom has a state");
        match net {
            NetEffect::Added => out.push(DeltaEntry {
                atom,
                kind: DeltaKind::Added,
            }),
            NetEffect::Removed => out.push(DeltaEntry {
                atom,
                kind: DeltaKind::Removed,
            }),
            NetEffect::Changed { old, new } => {
                // a→…→a round-trips vanish: the value is back where the
                // prior grounding saw it.
                if old != new {
                    out.push(DeltaEntry {
                        atom,
                        kind: DeltaKind::Changed { old, new },
                    });
                }
            }
            NetEffect::RemovedAdded => {
                out.push(DeltaEntry {
                    atom: atom.clone(),
                    kind: DeltaKind::Removed,
                });
                out.push(DeltaEntry {
                    atom,
                    kind: DeltaKind::Added,
                });
            }
            NetEffect::Cancelled => {}
        }
    }
    out
}

/// Predicate → dependent rule indices, derived from compiled join plans.
///
/// A rule depends on every predicate any of its literals mentions — body,
/// negated body, or head — because closed-world resolution folds those
/// pools and values into its ground terms.
#[derive(Clone, Default, Debug)]
pub struct DependencyMap {
    by_pred: FxHashMap<PredId, Vec<usize>>,
}

impl DependencyMap {
    /// Build the map from one compiled plan per rule (plan order = rule
    /// declaration order).
    pub(crate) fn from_plans(plans: &[JoinPlan]) -> DependencyMap {
        let mut by_pred: FxHashMap<PredId, Vec<usize>> = FxHashMap::default();
        for (i, plan) in plans.iter().enumerate() {
            for pred in plan.emit_preds() {
                let deps = by_pred.entry(pred).or_default();
                if deps.last() != Some(&i) {
                    deps.push(i);
                }
            }
        }
        DependencyMap { by_pred }
    }

    /// Rule indices that must be reconsidered when `pred` mutates.
    pub fn dependents(&self, pred: PredId) -> &[usize] {
        self.by_pred.get(&pred).map_or(&[], Vec::as_slice)
    }
}

/// The artifact one grounding (complete join binding) produced, with
/// indices relative to its rule's segment of the term pool.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TermSlot {
    /// Weighted potential at the given segment-relative index.
    Potential(u32),
    /// Hard constraint at the given segment-relative index.
    Constraint(u32),
    /// Constant objective contribution (no free variables).
    ConstLoss(f64),
    /// Trivially satisfied; nothing was emitted.
    Pruned,
}

/// One logical rule's contiguous slice of the term pool plus its binding
/// table and grounding statistics.
#[derive(Clone, Debug)]
pub(crate) struct RuleSegment {
    /// Potentials this rule contributed (contiguous, in source order).
    pub(crate) pots: usize,
    /// Constraints this rule contributed.
    pub(crate) cons: usize,
    /// Complete binding → artifact (segment-relative indices).
    pub(crate) slots: FxHashMap<Vec<Sym>, TermSlot>,
    /// The rule's grounding statistics.
    pub(crate) stats: GroundStats,
}

/// Per-free-binding splice table of one arithmetic rule's grounding: the
/// binding keys in emission order plus the dependency edges from every
/// ground atom a binding's summation folds to the bindings it feeds.
/// Contributor atoms are interned so an atom shared by many bindings (the
/// common case — e.g. `inMap(c)` contributes to every target `c` covers)
/// is stored once.
#[derive(Clone, Default, Debug)]
pub(crate) struct ArithTable {
    /// Free variables in first-occurrence order (the key schema).
    pub(crate) free_vars: Vec<String>,
    /// Binding keys, in emission (enumeration) order.
    pub(crate) keys: Vec<Vec<Sym>>,
    /// Key → binding ordinal.
    key_index: FxHashMap<Vec<Sym>, u32>,
    /// Interned contributor atoms (id = position).
    atoms: Vec<GroundAtom>,
    /// Contributor atom → intern id.
    atom_ids: FxHashMap<GroundAtom, u32>,
    /// Atom id → binding ordinals whose summation folds it (ascending).
    deps: Vec<Vec<u32>>,
    /// Binding ordinal → contributor atom ids (kept so surviving bindings
    /// can carry their dependency edges through a pool-delta rebuild).
    binding_atoms: Vec<Vec<u32>>,
}

impl ArithTable {
    /// Empty table over the given free-variable schema.
    pub(crate) fn new(free_vars: Vec<String>) -> ArithTable {
        ArithTable {
            free_vars,
            ..ArithTable::default()
        }
    }

    /// Number of recorded bindings.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Append the next binding (emission order) and return its ordinal.
    pub(crate) fn begin_binding(&mut self, key: Vec<Sym>) -> u32 {
        let ordinal = self.keys.len() as u32;
        self.key_index.insert(key.clone(), ordinal);
        self.keys.push(key);
        self.binding_atoms.push(Vec::new());
        ordinal
    }

    /// Record one contributor atom of `ordinal`'s summation. Bindings must
    /// be recorded in ascending ordinal order (they are — both the full
    /// grounder and the pool-delta rebuild walk bindings in emission
    /// order), which keeps the dependency lists sorted and deduplicated.
    pub(crate) fn record_contributor(&mut self, ordinal: u32, atom: &GroundAtom) {
        let id = match self.atom_ids.get(atom) {
            Some(&id) => id,
            None => {
                let id = self.atoms.len() as u32;
                self.atoms.push(atom.clone());
                self.atom_ids.insert(atom.clone(), id);
                self.deps.push(Vec::new());
                id
            }
        };
        let deps = &mut self.deps[id as usize];
        // Ascending ordinal recording means this atom already belongs to
        // the current binding iff its last dependency is this ordinal —
        // one check dedups both lists.
        if deps.last() != Some(&ordinal) {
            deps.push(ordinal);
            self.binding_atoms[ordinal as usize].push(id);
        }
    }

    /// Ordinal of a binding key, if recorded.
    pub(crate) fn ordinal_of(&self, key: &[Sym]) -> Option<u32> {
        self.key_index.get(key).copied()
    }

    /// Ordinals of the bindings whose summations fold `atom`.
    pub(crate) fn bindings_of(&self, atom: &GroundAtom) -> &[u32] {
        self.atom_ids
            .get(atom)
            .map_or(&[], |&id| self.deps[id as usize].as_slice())
    }

    /// The contributor atoms of one binding.
    pub(crate) fn contributors_of(&self, ordinal: u32) -> impl Iterator<Item = &GroundAtom> {
        self.binding_atoms[ordinal as usize]
            .iter()
            .map(|&id| &self.atoms[id as usize])
    }
}

/// An arithmetic rule's contiguous slice of the term pool plus its
/// per-free-binding splice table and grounding statistics.
#[derive(Clone, Debug)]
pub(crate) struct ArithSegment {
    /// Potentials contributed.
    pub(crate) pots: usize,
    /// Constraints contributed.
    pub(crate) cons: usize,
    /// The rule's grounding statistics.
    pub(crate) stats: GroundStats,
    /// The per-binding splice table.
    pub(crate) table: ArithTable,
}

/// What one raw term contributed to the ground program.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RawSlot {
    /// One weighted potential.
    Potential,
    /// One hard constraint.
    Constraint,
    /// A constant objective contribution.
    ConstLoss(f64),
}

/// Per-source segmentation of a ground program — everything
/// [`Program::reground`] needs to splice unchanged terms and patch dirty
/// ones. Recorded by the plan-compiled grounding paths; absent from
/// [`Program::ground_naive`] output.
#[derive(Clone, Default, Debug)]
pub(crate) struct SpliceSupport {
    /// One segment per logical rule, in declaration order.
    pub(crate) rules: Vec<RuleSegment>,
    /// One segment per arithmetic rule, in declaration order.
    pub(crate) arith: Vec<ArithSegment>,
    /// One slot per raw term, in declaration order.
    pub(crate) raw: Vec<RawSlot>,
}

/// Sentinel for "this term has no prior identity" in [`DualReuse`].
pub(crate) const NO_PRIOR: u32 = u32::MAX;

/// Term-identity map recorded by a reground: entry `i` holds the *prior*
/// program's index of the term now at position `i` (`NO_PRIOR` for terms
/// that were recomputed and therefore carry no prior identity). This is
/// what lets [`crate::GroundProgram::carry_duals`] transplant the scaled
/// duals of spliced-unchanged terms into the next warm solve.
#[derive(Clone, Default, Debug)]
pub(crate) struct DualReuse {
    /// New potential index → prior potential index (or `NO_PRIOR`).
    pub(crate) pots: Vec<u32>,
    /// New constraint index → prior constraint index (or `NO_PRIOR`).
    pub(crate) cons: Vec<u32>,
}

impl DualReuse {
    /// Record `count` terms spliced unchanged starting at `old_start`.
    fn splice(dst: &mut Vec<u32>, old_start: usize, count: usize) {
        dst.extend((old_start..old_start + count).map(|i| i as u32));
    }

    /// Record `count` freshly recomputed terms.
    fn fresh(dst: &mut Vec<u32>, count: usize) {
        dst.extend(std::iter::repeat_n(NO_PRIOR, count));
    }
}

/// Why an incremental reground refused to run (or failed while running).
///
/// `StateMismatch` is the **delta guard** speaking: the prior ground
/// program, the delta, and the current database do not describe one
/// consistent timeline, so splicing would silently produce a wrong
/// program. Callers on the degradation ladder respond with a fresh
/// [`crate::Program::ground`] (see `docs/robustness.md`).
#[derive(Clone, PartialEq, Debug)]
pub enum RegroundError {
    /// The guard rejected the prior/delta pair before any splicing.
    StateMismatch {
        /// Which invariant was violated, in human-readable form.
        reason: String,
    },
    /// The underlying (re-)grounding failed.
    Grounding(GroundingError),
}

impl std::fmt::Display for RegroundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegroundError::StateMismatch { reason } => {
                write!(f, "reground state mismatch: {reason}")
            }
            RegroundError::Grounding(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegroundError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegroundError::StateMismatch { .. } => None,
            RegroundError::Grounding(e) => Some(e),
        }
    }
}

impl From<GroundingError> for RegroundError {
    fn from(e: GroundingError) -> RegroundError {
        RegroundError::Grounding(e)
    }
}

/// Shape-check a prior's splice support against its term pools before any
/// splicing: the segments must tile both pools exactly, and every recorded
/// slot ordinal must lie inside its segment. Returns the violated
/// invariant on failure.
fn validate_support(
    support: &SpliceSupport,
    num_pots: usize,
    num_cons: usize,
) -> Result<(), String> {
    let mut pots = 0usize;
    let mut cons = 0usize;
    for (i, seg) in support.rules.iter().enumerate() {
        for slot in seg.slots.values() {
            match *slot {
                TermSlot::Potential(p) if (p as usize) >= seg.pots => {
                    return Err(format!(
                        "rule segment {i}: potential ordinal {p} out of range \
                         (segment owns {})",
                        seg.pots
                    ));
                }
                TermSlot::Constraint(c) if (c as usize) >= seg.cons => {
                    return Err(format!(
                        "rule segment {i}: constraint ordinal {c} out of range \
                         (segment owns {})",
                        seg.cons
                    ));
                }
                _ => {}
            }
        }
        pots += seg.pots;
        cons += seg.cons;
    }
    for seg in &support.arith {
        pots += seg.pots;
        cons += seg.cons;
    }
    for slot in &support.raw {
        match slot {
            RawSlot::Potential => pots += 1,
            RawSlot::Constraint => cons += 1,
            RawSlot::ConstLoss(_) => {}
        }
    }
    if pots != num_pots {
        return Err(format!(
            "splice segments cover {pots} potentials but the prior holds {num_pots}"
        ));
    }
    if cons != num_cons {
        return Err(format!(
            "splice segments cover {cons} constraints but the prior holds {num_cons}"
        ));
    }
    Ok(())
}

/// Drop `dead` elements from `items`, returning the old → new index map
/// (entries for dropped elements are `u32::MAX`).
fn compact<T>(items: &mut Vec<T>, dead: &[bool]) -> Vec<u32> {
    let mut map = vec![u32::MAX; items.len()];
    let mut kept = 0u32;
    let mut i = 0usize;
    items.retain(|_| {
        let keep = !dead[i];
        if keep {
            map[i] = kept;
            kept += 1;
        }
        i += 1;
        keep
    });
    map
}

impl Program {
    /// Incrementally re-ground after the database mutations described by
    /// `delta`, splicing unchanged ground terms out of `prior` (see the
    /// [module docs](crate::delta) for the strategy).
    ///
    /// `prior` must be the grounding of this program against the database
    /// state *immediately before* the delta's mutations (i.e. the delta
    /// returned by [`crate::Database::take_delta`] spans exactly the
    /// writes since `prior` was produced). A **delta guard** verifies this
    /// before any splicing — the delta's generation span must start at the
    /// prior's snapshot, end at the current database state, come from the
    /// same database, and carry exactly one **raw** entry per generation
    /// step ([`DbDelta::raw_entries`]; the net entry list may be shorter
    /// because [`crate::Database::take_delta`] coalesces cancelling
    /// mutations — see the "Batched deltas" section of
    /// `docs/robustness.md`) — and rejects the call with
    /// [`RegroundError::StateMismatch`] otherwise (a stale, double-drained,
    /// foreign, or tampered delta would silently splice a wrong program).
    /// A batch whose raw mutations coalesced to nothing
    /// ([`DbDelta::is_net_empty`]) short-circuits: the prior program is
    /// returned re-stamped, without touching a single term. The result is
    /// equivalent to a fresh [`Program::ground`] up to term and variable
    /// order; if `prior` carries no splice support (naive grounding, or
    /// the program's rule list changed), a full grounding runs instead.
    pub fn reground(
        &self,
        prior: &GroundProgram,
        delta: &DbDelta,
    ) -> Result<GroundProgram, RegroundError> {
        self.reground_owned(prior.clone(), delta)
    }

    /// Consuming variant of [`Program::reground`]: unchanged segments are
    /// *moved* out of `prior` instead of cloned. This is the hot-path API
    /// for flip loops (no per-term allocation for reused terms).
    ///
    /// Pool deltas re-ground every dirty logical rule from scratch; those
    /// re-grounds are sharded across worker threads the way
    /// [`Program::ground`] shards a full grounding, with the same
    /// deterministic declaration-order merge — the result is identical for
    /// every thread count (see [`Program::reground_owned_with`]).
    pub fn reground_owned(
        &self,
        prior: GroundProgram,
        delta: &DbDelta,
    ) -> Result<GroundProgram, RegroundError> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.reground_owned_with(prior, delta, threads)
    }

    /// [`Program::reground_owned`] with an explicit worker-thread budget
    /// for the dirty-rule re-grounds of a pool delta. Value-only deltas
    /// never fan out (the seeded fast path is cheaper than a thread
    /// spawn), and neither does a pool delta with fewer than two dirty
    /// rules.
    pub fn reground_owned_with(
        &self,
        mut prior: GroundProgram,
        delta: &DbDelta,
        threads: usize,
    ) -> Result<GroundProgram, RegroundError> {
        let _span = cms_obs::span("reground");
        // Delta guard, stage 1: the timeline stamps. Runs before the
        // empty-delta early-out so even a dropped-to-empty delta is caught.
        if let Some((db_id, generation)) = prior.stamp {
            let mismatch = |reason: String| Err(RegroundError::StateMismatch { reason });
            if delta.db_id() != db_id {
                return mismatch(format!(
                    "delta from database {} but the prior was grounded against database {db_id}",
                    delta.db_id()
                ));
            }
            if self.db.id() != db_id {
                return mismatch(format!(
                    "prior was grounded against database {db_id} but this program holds \
                     database {}",
                    self.db.id()
                ));
            }
            if delta.base_generation() != generation {
                return mismatch(format!(
                    "delta starts at generation {} but the prior snapshot is at {generation} \
                     (stale, re-applied, or double-drained delta)",
                    delta.base_generation()
                ));
            }
            if delta.end_generation() != self.db.generation() {
                return mismatch(format!(
                    "delta ends at generation {} but the database is at {} \
                     (mutations after take_delta)",
                    delta.end_generation(),
                    self.db.generation()
                ));
            }
            if delta.end_generation().checked_sub(delta.base_generation())
                != Some(delta.raw_entries() as u64)
            {
                return mismatch(format!(
                    "delta carries {} raw entries for a generation span of {} \
                     (entries dropped or duplicated)",
                    delta.raw_entries(),
                    delta.end_generation() - delta.base_generation()
                ));
            }
        }
        if delta.is_empty() {
            return Ok(prior);
        }
        if delta.is_net_empty() && prior.stamp.is_some() {
            // Net-empty batch (every raw mutation cancelled — e.g. a→b→a
            // flips, add+retract pairs): the guard above proved the raw
            // count matches the generation span, so the database state is
            // *identical* to the prior snapshot and the prior program is
            // the correct grounding of it. Re-stamp it to the current
            // generation, give it an identity dual-reuse map (its old one
            // described the reground *before* it and must not leak into
            // the next dual carry), and normalise its per-rule stats to
            // "everything spliced, nothing recomputed".
            for stats in prior.rule_stats.values_mut() {
                stats.terms_reused = stats.potentials + stats.constraints;
                stats.terms_recomputed = 0;
                stats.candidates_probed = 0;
                stats.candidates_scanned = 0;
                stats.arith_bindings_spliced = 0;
                stats.entries_coalesced = 0;
                stats.sources_deduped = 0;
                stats.wall = std::time::Duration::ZERO;
            }
            if let Some(support) = prior.splice.as_ref() {
                let spliced: Vec<(String, usize)> = self
                    .arith_rules
                    .iter()
                    .zip(&support.arith)
                    .map(|(rule, seg)| (rule.name.clone(), seg.table.len()))
                    .collect();
                // Raw-term reuse accounting, mirroring the splice path: a
                // fresh ground records no raw-term stats, so rebuild them
                // from the recorded slots (every raw artifact reused).
                let mut raw_stats: FxHashMap<String, GroundStats> = FxHashMap::default();
                for (raw, slot) in self.raw_terms().iter().zip(&support.raw) {
                    let entry = raw_stats.entry(raw.origin().to_owned()).or_default();
                    match slot {
                        RawSlot::Potential => {
                            entry.potentials += 1;
                            entry.terms_reused += 1;
                        }
                        RawSlot::Constraint => {
                            entry.constraints += 1;
                            entry.terms_reused += 1;
                        }
                        RawSlot::ConstLoss(d) => entry.constant_loss += d,
                    }
                }
                for (name, bindings) in spliced {
                    if let Some(stats) = prior.rule_stats.get_mut(&name) {
                        stats.arith_bindings_spliced = bindings;
                    }
                }
                for (name, stats) in raw_stats {
                    prior.rule_stats.insert(name, stats);
                }
            }
            prior.rule_stats.insert(
                "delta-batch".to_owned(),
                GroundStats {
                    entries_coalesced: delta.raw_entries(),
                    ..GroundStats::default()
                },
            );
            prior.dual_reuse = Some(DualReuse {
                pots: (0..prior.potentials.len() as u32).collect(),
                cons: (0..prior.constraints.len() as u32).collect(),
            });
            prior.stamp = Some((self.db.id(), self.db.generation()));
            if cms_obs::enabled(cms_obs::ObsLevel::Stats) {
                let mut total = GroundStats::default();
                for s in prior.rule_stats.values() {
                    total.absorb(s);
                }
                total.bump_registry("reground");
                cms_obs::emit(cms_obs::Event::Reground {
                    rules: (self.rules.len() + self.arith_rules.len()) as u64,
                    counters: total.obs_counters(),
                });
            }
            return Ok(prior);
        }
        // Fault-harness hook: corrupt one recorded slot ordinal so the
        // shape check below must refuse to splice.
        if crate::fault::take(crate::fault::Fault::CorruptSpliceOrdinal) {
            if let Some(support) = prior.splice.as_mut() {
                'corrupt: for seg in support.rules.iter_mut() {
                    for slot in seg.slots.values_mut() {
                        if let TermSlot::Potential(p) = slot {
                            *p = u32::MAX;
                            break 'corrupt;
                        }
                    }
                }
            }
        }
        let support = match prior.splice.take() {
            Some(s)
                if s.rules.len() == self.rules.len()
                    && s.arith.len() == self.arith_rules.len()
                    && s.raw.len() == self.raw_terms().len() =>
            {
                s
            }
            _ => return Ok(self.ground()?),
        };
        // Delta guard, stage 2: the splice tables must tile the prior term
        // pools with in-range ordinals, and the dual-reuse map (if any)
        // must align with them, or splicing would index garbage.
        validate_support(&support, prior.potentials.len(), prior.constraints.len())
            .map_err(|reason| RegroundError::StateMismatch { reason })?;
        if let Some(reuse) = &prior.dual_reuse {
            if reuse.pots.len() != prior.potentials.len()
                || reuse.cons.len() != prior.constraints.len()
            {
                return Err(RegroundError::StateMismatch {
                    reason: format!(
                        "dual-reuse map covers {}/{} terms but the prior holds {}/{}",
                        reuse.pots.len(),
                        reuse.cons.len(),
                        prior.potentials.len(),
                        prior.constraints.len()
                    ),
                });
            }
        }
        self.validate_rule_arities()?;
        self.db.ensure_index();

        let delta_preds = delta.preds();
        let delta_atoms = delta.atom_set();
        let pools_changed = delta.pools_changed();

        // Compile plans once: they provide both the dependency sets and
        // the seeded executor for the value-only fast path.
        let plans: Vec<JoinPlan> = self
            .rules
            .iter()
            .map(|r| JoinPlan::compile(r, &self.db))
            .collect();
        let deps = DependencyMap::from_plans(&plans);
        let mut dirty_rules = vec![false; self.rules.len()];
        for pred in &delta_preds {
            for &i in deps.dependents(*pred) {
                dirty_rules[i] = true;
            }
        }

        // Pool deltas re-ground every dirty logical rule from scratch —
        // shard those re-grounds across threads (each into a rule-local
        // registry/sink, exactly like `Program::ground`) and merge them in
        // declaration order below. Two-phase interning keeps the result
        // identical to the sequential shared-registry path at any thread
        // count.
        let mut preground: Vec<Option<Result<RuleGrounding, GroundingError>>> =
            (0..self.rules.len()).map(|_| None).collect();
        if pools_changed && threads >= 2 {
            let dirty_idx: Vec<usize> = (0..self.rules.len()).filter(|&i| dirty_rules[i]).collect();
            if dirty_idx.len() >= 2 {
                for (i, r) in dirty_idx
                    .iter()
                    .copied()
                    .zip(self.ground_rule_set_locally(&dirty_idx, threads))
                {
                    preground[i] = Some(r);
                }
            }
        }

        let mut registry = std::mem::take(&mut prior.registry);
        let mut pot_iter = prior.potentials.into_iter();
        let mut con_iter = prior.constraints.into_iter();

        let mut potentials: Vec<GroundPotential> = Vec::new();
        let mut constraints: Vec<GroundConstraint> = Vec::new();
        let mut rule_stats: FxHashMap<String, GroundStats> = FxHashMap::default();
        let mut constant_loss = 0.0;
        let mut new_support = SpliceSupport::default();
        // Term-identity bookkeeping: `old_pot`/`old_con` track how far into
        // the prior term pool the iterators have been consumed, so every
        // spliced term can record which prior index it came from.
        let mut reuse = DualReuse::default();
        let mut old_pot = 0usize;
        let mut old_con = 0usize;

        let rules_span = cms_obs::span("reground/rules");
        for (i, (rule, seg)) in self.rules.iter().zip(support.rules).enumerate() {
            if !dirty_rules[i] {
                // Clean: splice the whole segment unchanged.
                potentials.extend(pot_iter.by_ref().take(seg.pots));
                constraints.extend(con_iter.by_ref().take(seg.cons));
                DualReuse::splice(&mut reuse.pots, old_pot, seg.pots);
                DualReuse::splice(&mut reuse.cons, old_con, seg.cons);
                old_pot += seg.pots;
                old_con += seg.cons;
                let mut stats = seg.stats.clone();
                stats.terms_reused = seg.pots + seg.cons;
                stats.terms_recomputed = 0;
                stats.sources_deduped = 0;
                stats.entries_coalesced = 0;
                constant_loss += stats.constant_loss;
                rule_stats
                    .entry(rule.name.clone())
                    .or_default()
                    .absorb(&stats);
                new_support.rules.push(RuleSegment { stats, ..seg });
                continue;
            }
            if pools_changed {
                // Coarse path: pool membership moved under this rule —
                // discard its prior terms and re-ground it from scratch.
                // The re-ground runs once no matter how many batch entries
                // touched the rule; the extra entries count as deduped.
                pot_iter.by_ref().take(seg.pots).for_each(drop);
                con_iter.by_ref().take(seg.cons).for_each(drop);
                old_pot += seg.pots;
                old_con += seg.cons;
                let (sink, mut stats) = match preground[i].take() {
                    Some(rg) => {
                        // Parallel pre-ground: intern the rule-local
                        // registry into the shared one and remap, exactly
                        // like the `ground_with` merge.
                        let rg = rg?;
                        let map: Vec<usize> = rg
                            .registry
                            .atoms()
                            .iter()
                            .map(|a| registry.intern(a))
                            .collect();
                        let mut sink = rg.sink;
                        for p in &mut sink.potentials {
                            remap_expr(&mut p.expr, &map);
                        }
                        for c in &mut sink.constraints {
                            remap_expr(&mut c.expr, &map);
                        }
                        (sink, rg.stats)
                    }
                    None => {
                        let mut sink = GroundSink::default();
                        let stats = ground_rule(rule, &self.db, &mut registry, &mut sink)?;
                        (sink, stats)
                    }
                };
                let emit_preds: FxHashSet<PredId> = plans[i].emit_preds().collect();
                stats.sources_deduped = delta
                    .entries()
                    .iter()
                    .filter(|e| emit_preds.contains(&e.atom.pred))
                    .count()
                    .saturating_sub(1);
                DualReuse::fresh(&mut reuse.pots, sink.potentials.len());
                DualReuse::fresh(&mut reuse.cons, sink.constraints.len());
                stats.terms_recomputed = sink.potentials.len() + sink.constraints.len();
                constant_loss += stats.constant_loss;
                rule_stats
                    .entry(rule.name.clone())
                    .or_default()
                    .absorb(&stats);
                new_support.rules.push(RuleSegment {
                    pots: sink.potentials.len(),
                    cons: sink.constraints.len(),
                    slots: sink.slots,
                    stats,
                });
                potentials.extend(sink.potentials);
                constraints.extend(sink.constraints);
                continue;
            }
            // Value-only fast path: the substitution set is unchanged, so
            // recompute exactly the groundings that instantiate a mutated
            // atom, found by seeded plan execution.
            let start = Instant::now();
            let plan = &plans[i];
            let mut seg_pots: Vec<GroundPotential> = pot_iter.by_ref().take(seg.pots).collect();
            let mut seg_cons: Vec<GroundConstraint> = con_iter.by_ref().take(seg.cons).collect();
            let mut slots = seg.slots;
            let mut stats = seg.stats;

            let mut affected: FxHashSet<Vec<Sym>> = FxHashSet::default();
            {
                let guard = self.db.index();
                let idx = guard
                    .as_ref()
                    // Fault-harness hook: pretend the index vanished
                    // mid-reground (a forced invalidation).
                    .filter(|_| !crate::fault::take(crate::fault::Fault::InvalidateIndex))
                    .ok_or_else(|| GroundingError::IndexUnavailable {
                        rule: rule.name.clone(),
                    })?;
                let mut scratch = GroundStats::default();
                let mut deduped = 0usize;
                for entry in delta.entries() {
                    for lit_idx in 0..plan.num_emit_literals() {
                        let Some(seed) = plan.seed_binding(lit_idx, &entry.atom) else {
                            continue;
                        };
                        plan.execute_seeded(&self.db, idx, &seed, &mut scratch, |binding, _| {
                            let key: Vec<Sym> = binding
                                .iter()
                                .map(|s| s.expect("complete binding has no holes"))
                                .collect();
                            // A grounding reached by several batch entries
                            // (or several seed literals) re-emits once; the
                            // extra hits are the batch's deduped work.
                            if !affected.insert(key) {
                                deduped += 1;
                            }
                            Ok(())
                        })?;
                    }
                }
                // Work counters report *this* reground's probes, not a
                // running total across the flip chain (structure counters
                // — potentials/constraints/pruned/substitutions — keep
                // describing the current segment contents instead).
                stats.candidates_probed = scratch.candidates_probed;
                stats.candidates_scanned = scratch.candidates_scanned;
                stats.sources_deduped = deduped;
                stats.entries_coalesced = 0;
            }

            // Remove the affected groundings' prior artifacts.
            let mut dead_pot = vec![false; seg_pots.len()];
            let mut dead_con = vec![false; seg_cons.len()];
            for key in &affected {
                match slots.get(key) {
                    Some(TermSlot::Potential(p)) => {
                        dead_pot[*p as usize] = true;
                        stats.potentials = stats.potentials.saturating_sub(1);
                    }
                    Some(TermSlot::Constraint(c)) => {
                        dead_con[*c as usize] = true;
                        stats.constraints = stats.constraints.saturating_sub(1);
                    }
                    Some(TermSlot::ConstLoss(d)) => {
                        stats.constant_loss -= d;
                        stats.pruned = stats.pruned.saturating_sub(1);
                    }
                    Some(TermSlot::Pruned) => {
                        stats.pruned = stats.pruned.saturating_sub(1);
                    }
                    // Unreachable when `prior` matches the pre-delta
                    // database; tolerate and emit fresh below.
                    None => {}
                }
            }
            let pot_map = compact(&mut seg_pots, &dead_pot);
            let con_map = compact(&mut seg_cons, &dead_con);
            // Prior identity of the surviving (spliced) terms, for dual
            // carry-over: survivor at compacted position `new_rel` was the
            // prior program's term `old_* + old_rel`.
            let mut seg_pot_src = vec![NO_PRIOR; seg_pots.len()];
            for (old_rel, &new_rel) in pot_map.iter().enumerate() {
                if new_rel != u32::MAX {
                    seg_pot_src[new_rel as usize] = (old_pot + old_rel) as u32;
                }
            }
            let mut seg_con_src = vec![NO_PRIOR; seg_cons.len()];
            for (old_rel, &new_rel) in con_map.iter().enumerate() {
                if new_rel != u32::MAX {
                    seg_con_src[new_rel as usize] = (old_con + old_rel) as u32;
                }
            }
            old_pot += pot_map.len();
            old_con += con_map.len();
            for slot in slots.values_mut() {
                match slot {
                    TermSlot::Potential(p) if !dead_pot[*p as usize] => *p = pot_map[*p as usize],
                    TermSlot::Constraint(c) if !dead_con[*c as usize] => *c = con_map[*c as usize],
                    // Dead entries belong to affected bindings and are
                    // overwritten by the re-emission right below.
                    _ => {}
                }
            }

            // Re-emit the affected groundings against the current values.
            let mut mini = GroundSink::default();
            let mut mini_stats = GroundStats::default();
            for key in &affected {
                let binding: Vec<Option<Sym>> = key.iter().map(|&s| Some(s)).collect();
                emit(
                    rule,
                    plan,
                    &self.db,
                    &binding,
                    &mut registry,
                    &mut mini,
                    &mut mini_stats,
                )?;
            }
            let pot_off = seg_pots.len() as u32;
            let con_off = seg_cons.len() as u32;
            for (key, slot) in mini.slots {
                let shifted = match slot {
                    TermSlot::Potential(p) => TermSlot::Potential(p + pot_off),
                    TermSlot::Constraint(c) => TermSlot::Constraint(c + con_off),
                    other => other,
                };
                slots.insert(key, shifted);
            }
            stats.terms_reused = seg_pots.len() + seg_cons.len();
            stats.terms_recomputed = affected.len();
            stats.potentials += mini_stats.potentials;
            stats.constraints += mini_stats.constraints;
            stats.pruned += mini_stats.pruned;
            stats.constant_loss += mini_stats.constant_loss;
            stats.wall = start.elapsed();
            reuse.pots.extend_from_slice(&seg_pot_src);
            DualReuse::fresh(&mut reuse.pots, mini.potentials.len());
            reuse.cons.extend_from_slice(&seg_con_src);
            DualReuse::fresh(&mut reuse.cons, mini.constraints.len());
            seg_pots.extend(mini.potentials);
            seg_cons.extend(mini.constraints);

            constant_loss += stats.constant_loss;
            rule_stats
                .entry(rule.name.clone())
                .or_default()
                .absorb(&stats);
            new_support.rules.push(RuleSegment {
                pots: seg_pots.len(),
                cons: seg_cons.len(),
                slots,
                stats,
            });
            potentials.extend(seg_pots);
            constraints.extend(seg_cons);
        }

        drop(rules_span);
        // Arithmetic rules: per-free-binding granularity. The recorded
        // ArithTable maps every mutated atom to exactly the bindings whose
        // summations fold it; only those re-fold — untouched bindings
        // splice byte-identically and keep their dual identity.
        let arith_span = cms_obs::span("reground/arith");
        for (rule, seg) in self.arith_rules.iter().zip(support.arith) {
            let dirty = rule
                .terms
                .iter()
                .flat_map(|t| &t.atoms)
                .any(|a| delta_preds.contains(&a.pred));
            if !dirty {
                // Clean: splice the whole segment unchanged.
                potentials.extend(pot_iter.by_ref().take(seg.pots));
                constraints.extend(con_iter.by_ref().take(seg.cons));
                DualReuse::splice(&mut reuse.pots, old_pot, seg.pots);
                DualReuse::splice(&mut reuse.cons, old_con, seg.cons);
                old_pot += seg.pots;
                old_con += seg.cons;
                let mut stats = seg.stats.clone();
                stats.terms_reused = seg.pots + seg.cons;
                stats.terms_recomputed = 0;
                stats.arith_bindings_spliced = seg.table.len();
                stats.sources_deduped = 0;
                stats.entries_coalesced = 0;
                rule_stats
                    .entry(rule.name.clone())
                    .or_default()
                    .absorb(&stats);
                new_support.arith.push(ArithSegment { stats, ..seg });
                continue;
            }

            let start = Instant::now();
            let shape = arith_shape(rule).map_err(GroundingError::Arith)?;
            // A consistent table carries the rule's current key schema and
            // owns exactly `width` artifacts per binding; anything else (a
            // prior recorded under an older rule shape) falls back to a
            // wholesale re-ground.
            let consistent = seg.table.free_vars == shape.free_vars
                && seg.table.len() * shape.pot_width == seg.pots
                && seg.table.len() * shape.con_width == seg.cons;
            if !consistent {
                pot_iter.by_ref().take(seg.pots).for_each(drop);
                con_iter.by_ref().take(seg.cons).for_each(drop);
                old_pot += seg.pots;
                old_con += seg.cons;
                let p0 = potentials.len();
                let c0 = constraints.len();
                let (astats, table) = ground_arith_rule_recorded(
                    rule,
                    &self.db,
                    &mut registry,
                    &mut potentials,
                    &mut constraints,
                )?;
                let (pots, cons) = (potentials.len() - p0, constraints.len() - c0);
                DualReuse::fresh(&mut reuse.pots, pots);
                DualReuse::fresh(&mut reuse.cons, cons);
                let mut stats = GroundStats {
                    substitutions: astats.groundings,
                    potentials: pots,
                    constraints: cons,
                    terms_recomputed: pots + cons,
                    ..GroundStats::default()
                };
                stats.wall = start.elapsed();
                rule_stats
                    .entry(rule.name.clone())
                    .or_default()
                    .absorb(&stats);
                new_support.arith.push(ArithSegment {
                    pots,
                    cons,
                    stats,
                    table,
                });
                continue;
            }

            let (pw, cw) = (shape.pot_width, shape.con_width);
            let guard = self.db.index();
            let idx = guard
                .as_ref()
                // Fault-harness hook: forced mid-reground invalidation.
                .filter(|_| !crate::fault::take(crate::fault::Fault::InvalidateIndex))
                .ok_or_else(|| GroundingError::IndexUnavailable {
                    rule: rule.name.clone(),
                })?;
            let mut stats = GroundStats::default();

            if !pools_changed {
                // Value-only fast path: the free-binding set is provably
                // unchanged, so re-fold exactly the bindings the mutated
                // atoms contribute to, in place.
                let mut affected: FxHashSet<u32> = FxHashSet::default();
                for entry in delta.entries() {
                    for &b in seg.table.bindings_of(&entry.atom) {
                        // A free binding fed by several batch entries
                        // re-folds its summation exactly once.
                        if !affected.insert(b) {
                            stats.sources_deduped += 1;
                        }
                    }
                }
                let mut pot_src = pot_iter.by_ref().take(seg.pots);
                let mut con_src = con_iter.by_ref().take(seg.cons);
                for b in 0..seg.table.len() as u32 {
                    if affected.contains(&b) {
                        for _ in 0..pw {
                            pot_src.next();
                        }
                        for _ in 0..cw {
                            con_src.next();
                        }
                        fold_free_binding(
                            rule,
                            &shape,
                            &seg.table.keys[b as usize],
                            &self.db,
                            Some(idx),
                            &mut registry,
                            &mut potentials,
                            &mut constraints,
                            None,
                        )
                        .map_err(GroundingError::Arith)?;
                        DualReuse::fresh(&mut reuse.pots, pw);
                        DualReuse::fresh(&mut reuse.cons, cw);
                        stats.terms_recomputed += pw + cw;
                    } else {
                        for k in 0..pw {
                            potentials.push(pot_src.next().expect("spliced arith potential"));
                            reuse.pots.push((old_pot + b as usize * pw + k) as u32);
                        }
                        for k in 0..cw {
                            constraints.push(con_src.next().expect("spliced arith constraint"));
                            reuse.cons.push((old_con + b as usize * cw + k) as u32);
                        }
                        stats.terms_reused += pw + cw;
                        stats.arith_bindings_spliced += 1;
                    }
                }
                old_pot += seg.pots;
                old_con += seg.cons;
                stats.substitutions = seg.table.len();
                stats.potentials = seg.pots;
                stats.constraints = seg.cons;
                stats.wall = start.elapsed();
                rule_stats
                    .entry(rule.name.clone())
                    .or_default()
                    .absorb(&stats);
                new_support.arith.push(ArithSegment {
                    pots: seg.pots,
                    cons: seg.cons,
                    stats: stats.clone(),
                    table: seg.table,
                });
                continue;
            }

            // Pool delta: re-enumerate the free bindings and diff against
            // the table. New bindings ground fresh, vanished ones compact
            // out, surviving ones splice unless a mutated atom touches
            // their summation.
            let mut prior_pots: Vec<Option<GroundPotential>> =
                pot_iter.by_ref().take(seg.pots).map(Some).collect();
            let mut prior_cons: Vec<Option<GroundConstraint>> =
                con_iter.by_ref().take(seg.cons).map(Some).collect();
            let new_keys = enumerate_free_bindings(rule, &shape, &self.db, Some(idx));

            // Which prior bindings did the delta touch? Changed/Removed
            // atoms were contributors before (exact lookup); an Added atom
            // can only enter bindings whose keys agree with the free
            // variables some pattern instantiation of it binds.
            let mut touched: FxHashSet<u32> = FxHashSet::default();
            let mut touch_all = false;
            let mut added_masks: Vec<Vec<(usize, Sym)>> = Vec::new();
            for entry in delta.entries() {
                match entry.kind {
                    DeltaKind::Changed { .. } | DeltaKind::Removed => {
                        for &b in seg.table.bindings_of(&entry.atom) {
                            // Same dedup as the value-only path: a binding
                            // touched by N batch entries re-folds once.
                            if !touched.insert(b) {
                                stats.sources_deduped += 1;
                            }
                        }
                    }
                    DeltaKind::Added => {
                        for pattern in rule.terms.iter().flat_map(|t| &t.atoms) {
                            match free_var_mask(pattern, &entry.atom, &shape.free_vars) {
                                Some(mask) if mask.is_empty() => touch_all = true,
                                Some(mask) => added_masks.push(mask),
                                None => {}
                            }
                        }
                    }
                }
            }

            let mut table = ArithTable::new(shape.free_vars.clone());
            let mut contributors: Vec<GroundAtom> = Vec::new();
            for key in new_keys {
                let splice_from = seg.table.ordinal_of(&key).filter(|po| {
                    !touch_all
                        && !touched.contains(po)
                        && !added_masks
                            .iter()
                            .any(|m| m.iter().all(|&(i, s)| key[i] == s))
                });
                match splice_from {
                    Some(po) => {
                        for k in 0..pw {
                            let src = po as usize * pw + k;
                            potentials.push(
                                prior_pots[src]
                                    .take()
                                    .expect("arith potential spliced once"),
                            );
                            reuse.pots.push((old_pot + src) as u32);
                        }
                        for k in 0..cw {
                            let src = po as usize * cw + k;
                            constraints.push(
                                prior_cons[src]
                                    .take()
                                    .expect("arith constraint spliced once"),
                            );
                            reuse.cons.push((old_con + src) as u32);
                        }
                        let ordinal = table.begin_binding(key);
                        for atom in seg.table.contributors_of(po) {
                            table.record_contributor(ordinal, atom);
                        }
                        stats.terms_reused += pw + cw;
                        stats.arith_bindings_spliced += 1;
                    }
                    None => {
                        contributors.clear();
                        fold_free_binding(
                            rule,
                            &shape,
                            &key,
                            &self.db,
                            Some(idx),
                            &mut registry,
                            &mut potentials,
                            &mut constraints,
                            Some(&mut contributors),
                        )
                        .map_err(GroundingError::Arith)?;
                        DualReuse::fresh(&mut reuse.pots, pw);
                        DualReuse::fresh(&mut reuse.cons, cw);
                        let ordinal = table.begin_binding(key);
                        for atom in &contributors {
                            table.record_contributor(ordinal, atom);
                        }
                        stats.terms_recomputed += pw + cw;
                    }
                }
            }
            old_pot += seg.pots;
            old_con += seg.cons;
            let (pots, cons) = (table.len() * pw, table.len() * cw);
            stats.substitutions = table.len();
            stats.potentials = pots;
            stats.constraints = cons;
            stats.wall = start.elapsed();
            rule_stats
                .entry(rule.name.clone())
                .or_default()
                .absorb(&stats);
            new_support.arith.push(ArithSegment {
                pots,
                cons,
                stats,
                table,
            });
        }

        drop(arith_span);
        // Raw terms are ground: dirtiness is exact atom equality.
        let _raw_span = cms_obs::span("reground/raw");
        for (raw, slot) in self.raw_terms().iter().zip(support.raw) {
            let mut stats = GroundStats::default();
            let dirty = raw.atoms().any(|a| delta_atoms.contains(a));
            if dirty {
                match slot {
                    RawSlot::Potential => {
                        drop(pot_iter.next());
                        old_pot += 1;
                    }
                    RawSlot::Constraint => {
                        drop(con_iter.next());
                        old_con += 1;
                    }
                    RawSlot::ConstLoss(_) => {}
                }
                stats.terms_recomputed = 1;
                match self.raw_artifact(raw, &mut registry) {
                    RawArtifact::Potential(p) => {
                        stats.potentials += 1;
                        potentials.push(p);
                        reuse.pots.push(NO_PRIOR);
                        new_support.raw.push(RawSlot::Potential);
                    }
                    RawArtifact::Constraint(c) => {
                        stats.constraints += 1;
                        constraints.push(c);
                        reuse.cons.push(NO_PRIOR);
                        new_support.raw.push(RawSlot::Constraint);
                    }
                    RawArtifact::ConstLoss(d) => {
                        stats.constant_loss += d;
                        stats.pruned += 1;
                        constant_loss += d;
                        new_support.raw.push(RawSlot::ConstLoss(d));
                    }
                }
            } else {
                stats.terms_reused = 1;
                match slot {
                    RawSlot::Potential => {
                        stats.potentials += 1;
                        potentials.push(pot_iter.next().expect("reused raw potential present"));
                        reuse.pots.push(old_pot as u32);
                        old_pot += 1;
                    }
                    RawSlot::Constraint => {
                        stats.constraints += 1;
                        constraints.push(con_iter.next().expect("reused raw constraint present"));
                        reuse.cons.push(old_con as u32);
                        old_con += 1;
                    }
                    RawSlot::ConstLoss(d) => {
                        stats.constant_loss += d;
                        constant_loss += d;
                    }
                }
                new_support.raw.push(slot);
            }
            rule_stats
                .entry(raw.origin().to_owned())
                .or_default()
                .absorb(&stats);
        }

        debug_assert!(pot_iter.next().is_none(), "prior potentials fully consumed");
        debug_assert!(
            con_iter.next().is_none(),
            "prior constraints fully consumed"
        );
        debug_assert_eq!(reuse.pots.len(), potentials.len());
        debug_assert_eq!(reuse.cons.len(), constraints.len());

        // Delta-wide batch accounting under a synthetic rule entry (the
        // same convention as the self-healing ladder's "self-healing"
        // entry): how many raw mutations the drain coalesced away before
        // this reground ever saw them.
        rule_stats.insert(
            "delta-batch".to_owned(),
            GroundStats {
                entries_coalesced: delta.raw_entries().saturating_sub(delta.len()),
                ..GroundStats::default()
            },
        );

        if cms_obs::enabled(cms_obs::ObsLevel::Stats) {
            let mut total = GroundStats::default();
            for s in rule_stats.values() {
                total.absorb(s);
            }
            total.bump_registry("reground");
            cms_obs::emit(cms_obs::Event::Reground {
                rules: (self.rules.len() + self.arith_rules.len()) as u64,
                counters: total.obs_counters(),
            });
        }
        Ok(GroundProgram {
            registry,
            potentials,
            constraints,
            constant_loss,
            rule_stats,
            splice: Some(new_support),
            dual_reuse: Some(reuse),
            // The guard proved delta.end == db.generation(), so the result
            // is a snapshot of the current database state.
            stamp: Some((self.db.id(), self.db.generation())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ArithRuleBuilder;
    use crate::hinge::ConstraintKind;
    use crate::predicate::Vocabulary;
    use crate::program::AtomLin;
    use crate::rule::{rvar, RAtom, RTerm, RuleBuilder};
    use crate::AdmmConfig;

    /// A program exercising every source kind: a two-literal join rule, a
    /// single-literal rule, an arithmetic cap, and raw terms — all over a
    /// `covers`/`inMap`(observed)/`explained` shape.
    fn eval_program() -> Program {
        let mut vocab = Vocabulary::new();
        let covers = vocab.closed("covers", 2);
        let in_map = vocab.closed("inMap", 1);
        let scope = vocab.closed("scope", 1);
        let explained = vocab.open("explained", 1);
        let mut program = Program::new(vocab);
        for t in 0..4 {
            let tn = format!("t{t}");
            program
                .db
                .observe(GroundAtom::from_strs(scope, &[&tn]), 1.0);
            program.db.target(GroundAtom::from_strs(explained, &[&tn]));
        }
        for c in 0..3 {
            let cn = format!("c{c}");
            program
                .db
                .observe(GroundAtom::from_strs(in_map, &[&cn]), 0.0);
            for t in 0..4 {
                if (c + t) % 2 == 0 {
                    program.db.observe(
                        GroundAtom::from_strs(covers, &[&cn, &format!("t{t}")]),
                        0.5 + 0.1 * t as f64,
                    );
                }
            }
            // Raw size prior on the observed inMap atom (folds to a
            // constant loss that must track flips).
            let mut lin = AtomLin::new();
            lin.add(GroundAtom::from_strs(in_map, &[&cn]), 1.0);
            program.add_raw_potential(lin, 0.25, false, "size-prior");
        }
        program.add_rule(
            RuleBuilder::new("explain-reward")
                .body(scope, vec![rvar("T")])
                .head(explained, vec![rvar("T")])
                .weight(1.0)
                .build(),
        );
        // Hard join rule: covers(C,T) ∧ inMap(C) → explained(T). Flipping
        // one inMap value moves its groundings between pruned and live.
        program.add_rule(
            RuleBuilder::new("cover-implies")
                .body(covers, vec![rvar("C"), rvar("T")])
                .body(in_map, vec![rvar("C")])
                .head(explained, vec![rvar("T")])
                .build(),
        );
        // Arithmetic cap with a summation over the join.
        program.add_arith_rule(
            ArithRuleBuilder::new("explain-cap")
                .term(
                    1.0,
                    vec![RAtom {
                        pred: explained,
                        args: vec![RTerm::Var("T".into())],
                    }],
                )
                .term(
                    -1.0,
                    vec![
                        RAtom {
                            pred: covers,
                            args: vec![RTerm::Var("C".into()), RTerm::Var("T".into())],
                        },
                        RAtom {
                            pred: in_map,
                            args: vec![RTerm::Var("C".into())],
                        },
                    ],
                )
                .sum_over("C")
                .build()
                .expect("explain-cap rule is valid"),
        );
        // A raw constraint that never touches inMap (must always splice).
        let mut lin = AtomLin::new();
        lin.add(GroundAtom::from_strs(explained, &["t0"]), 1.0);
        lin.add_constant(-1.0);
        program.add_raw_constraint(lin, ConstraintKind::LeqZero, "cap-t0");
        program
    }

    fn assert_equivalent(label: &str, incremental: &GroundProgram, fresh: &GroundProgram) {
        assert_eq!(
            incremental.canonical_terms(),
            fresh.canonical_terms(),
            "{label}: ground terms diverged"
        );
        assert!(
            (incremental.constant_loss - fresh.constant_loss).abs() < 1e-9,
            "{label}: constant loss {} vs {}",
            incremental.constant_loss,
            fresh.constant_loss
        );
    }

    #[test]
    fn value_flip_fast_path_matches_fresh_ground() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();

        // Flip c1 into the selection.
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c1"]), 1.0);
        let delta = program.db.take_delta();
        assert!(!delta.pools_changed());
        let incremental = program.reground(&prior, &delta).unwrap();
        let fresh = program.ground().unwrap();
        assert_equivalent("flip c1 on", &incremental, &fresh);

        let total = incremental.total_stats();
        assert!(total.terms_reused > 0, "{total:?}");
        assert!(total.terms_recomputed > 0, "{total:?}");
        // The untouched single-literal rule must be spliced wholesale.
        assert_eq!(
            incremental.rule_stats["explain-reward"].terms_recomputed, 0,
            "clean rule was recomputed"
        );

        // Flip it back off: the chain of regrounds stays equivalent.
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c1"]), 0.0);
        let delta = program.db.take_delta();
        let back = program.reground_owned(incremental, &delta).unwrap();
        let fresh = program.ground().unwrap();
        assert_equivalent("flip c1 back off", &back, &fresh);
    }

    #[test]
    fn unchanged_write_regrounds_to_identity() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 0.0); // same value
        let delta = program.db.take_delta();
        assert!(delta.is_empty(), "no-op writes must not emit deltas");
        let same = program.reground(&prior, &delta).unwrap();
        assert_eq!(same.canonical_terms(), prior.canonical_terms());
    }

    #[test]
    fn added_and_retracted_atoms_take_the_coarse_path() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let covers = program.vocab.id_of("covers").unwrap();

        // Add a brand-new covers atom (new join candidate).
        program
            .db
            .observe(GroundAtom::from_strs(covers, &["c2", "t1"]), 0.9);
        let delta = program.db.take_delta();
        assert!(delta.pools_changed());
        let incremental = program.reground(&prior, &delta).unwrap();
        let fresh = program.ground().unwrap();
        assert_equivalent("added covers atom", &incremental, &fresh);

        // Retract one again.
        assert!(program
            .db
            .retract(&GroundAtom::from_strs(covers, &["c0", "t0"])));
        let delta = program.db.take_delta();
        let incremental = program.reground_owned(incremental, &delta).unwrap();
        let fresh = program.ground().unwrap();
        assert_equivalent("retracted covers atom", &incremental, &fresh);
    }

    #[test]
    fn warm_solve_matches_cold_solve_after_flip() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let cold0 = prior.solve(&AdmmConfig::default());
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 1.0);
        let delta = program.db.take_delta();
        let ground = program.reground(&prior, &delta).unwrap();
        let warm = ground.solve_warm(&AdmmConfig::default(), &cold0.admm.values);
        let cold = ground.solve(&AdmmConfig::default());
        assert!(warm.admm.converged);
        assert!(
            (warm.total_objective() - cold.total_objective()).abs() < 1e-3,
            "warm {} vs cold {}",
            warm.total_objective(),
            cold.total_objective()
        );
        assert!(warm.admm.max_violation < 1e-3);
    }

    #[test]
    fn naive_prior_falls_back_to_full_ground() {
        let mut program = eval_program();
        let prior = program.ground_naive().unwrap();
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 1.0);
        let delta = program.db.take_delta();
        let incremental = program.reground(&prior, &delta).unwrap();
        let fresh = program.ground().unwrap();
        assert_equivalent("naive fallback", &incremental, &fresh);
    }

    fn flip_in_map(program: &mut Program, cand: &str, value: f64) -> DbDelta {
        let in_map = program.vocab.id_of("inMap").unwrap();
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &[cand]), value);
        program.db.take_delta()
    }

    fn expect_mismatch(result: Result<GroundProgram, RegroundError>, needle: &str) {
        match result {
            Err(RegroundError::StateMismatch { reason }) => {
                assert!(
                    reason.contains(needle),
                    "reason {reason:?} lacks {needle:?}"
                );
            }
            Ok(_) => panic!("guard must reject (expected {needle:?})"),
            Err(other) => panic!("wrong error {other:?} (expected {needle:?})"),
        }
    }

    #[test]
    fn double_drained_delta_is_rejected() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let real = flip_in_map(&mut program, "c1", 1.0);
        // The second drain is empty and spans nothing — applying it in
        // place of the real delta must be refused, not silently spliced.
        let drained_again = program.db.take_delta();
        expect_mismatch(program.reground(&prior, &drained_again), "double-drained");
        // The real delta still applies.
        let ok = program.reground(&prior, &real).unwrap();
        assert_equivalent("real delta", &ok, &program.ground().unwrap());
    }

    #[test]
    fn reapplied_delta_is_rejected() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let delta = flip_in_map(&mut program, "c1", 1.0);
        let next = program.reground(&prior, &delta).unwrap();
        // Applying the same delta against its own result describes a
        // timeline that never happened.
        expect_mismatch(program.reground(&next, &delta), "generation");
    }

    #[test]
    fn delta_from_a_different_database_is_rejected() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        // An identically-built program still holds a *different* database
        // (every `Database` gets a fresh id): its deltas — even with the
        // same generation numbers — must not validate against the
        // original's ground program.
        let mut other = eval_program();
        let _ = other.ground().unwrap();
        let _ = other.db.take_delta();
        let foreign = flip_in_map(&mut other, "c1", 1.0);
        expect_mismatch(program.reground(&prior, &foreign), "database");
    }

    #[test]
    fn mutation_after_take_delta_is_rejected() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let delta = flip_in_map(&mut program, "c1", 1.0);
        // Mutate again *after* draining: the delta no longer reaches the
        // database's current state.
        let in_map = program.vocab.id_of("inMap").unwrap();
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c2"]), 1.0);
        expect_mismatch(program.reground(&prior, &delta), "mutations after");
    }

    #[test]
    fn dropped_and_duplicated_delta_entries_are_rejected() {
        for fault in [
            crate::fault::Fault::DropDeltaEntry,
            crate::fault::Fault::DuplicateDeltaEntry,
        ] {
            let mut program = eval_program();
            let prior = program.ground().unwrap();
            let _ = program.db.take_delta();
            crate::fault::arm(fault);
            let delta = flip_in_map(&mut program, "c1", 1.0);
            assert_eq!(crate::fault::armed(), None, "{fault:?} consumed");
            expect_mismatch(program.reground(&prior, &delta), "entries");
            // Recovery: a fresh ground sees the mutated database directly.
            let fresh = program.ground().unwrap();
            let mut clean = eval_program();
            let in_map = clean.vocab.id_of("inMap").unwrap();
            clean
                .db
                .observe(GroundAtom::from_strs(in_map, &["c1"]), 1.0);
            assert_equivalent(
                "fresh ground after tampered delta",
                &fresh,
                &clean.ground().unwrap(),
            );
        }
    }

    #[test]
    fn corrupted_splice_ordinal_is_rejected_before_splicing() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let delta = flip_in_map(&mut program, "c1", 1.0);
        crate::fault::arm(crate::fault::Fault::CorruptSpliceOrdinal);
        expect_mismatch(program.reground(&prior, &delta), "out of range");
        assert_eq!(crate::fault::armed(), None);
        // One-shot: the retry against the same prior and delta succeeds.
        let ok = program.reground(&prior, &delta).unwrap();
        assert_equivalent("retry after corruption", &ok, &program.ground().unwrap());
    }

    #[test]
    fn forced_index_invalidation_surfaces_as_grounding_error() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let delta = flip_in_map(&mut program, "c1", 1.0);
        crate::fault::arm(crate::fault::Fault::InvalidateIndex);
        match program.reground(&prior, &delta) {
            Err(RegroundError::Grounding(GroundingError::IndexUnavailable { .. })) => {}
            other => panic!("expected IndexUnavailable, got {other:?}"),
        }
        // One-shot: recovery (here, the retried reground) runs clean.
        let ok = program.reground(&prior, &delta).unwrap();
        assert_equivalent("retry after invalidation", &ok, &program.ground().unwrap());
    }

    #[test]
    fn coalesce_folds_to_net_effect_in_first_appearance_order() {
        let a = GroundAtom::from_strs(PredId(0), &["a"]);
        let b = GroundAtom::from_strs(PredId(0), &["b"]);
        let c = GroundAtom::from_strs(PredId(0), &["c"]);
        let entry = |atom: &GroundAtom, kind| DeltaEntry {
            atom: atom.clone(),
            kind,
        };
        // a: Added + Changed + Removed cancels entirely; b: a Changed
        // chain folds old→final; c: Changed + Removed folds to Removed.
        let raw = vec![
            entry(&a, DeltaKind::Added),
            entry(&b, DeltaKind::Changed { old: 0.1, new: 0.2 }),
            entry(&a, DeltaKind::Changed { old: 0.5, new: 0.9 }),
            entry(&c, DeltaKind::Changed { old: 0.3, new: 0.4 }),
            entry(&b, DeltaKind::Changed { old: 0.2, new: 0.7 }),
            entry(&a, DeltaKind::Removed),
            entry(&c, DeltaKind::Removed),
        ];
        let net = coalesce(raw);
        assert_eq!(net.len(), 2);
        // b appeared before c in the raw log, so it emits first.
        assert_eq!(net[0].atom, b);
        assert!(matches!(
            net[0].kind,
            DeltaKind::Changed { old, new }
                if (old - 0.1).abs() < 1e-12 && (new - 0.7).abs() < 1e-12
        ));
        assert_eq!(net[1].atom, c);
        assert!(matches!(net[1].kind, DeltaKind::Removed));
    }

    #[test]
    fn coalesce_keeps_removed_added_as_a_pool_pair() {
        let a = GroundAtom::from_strs(PredId(0), &["a"]);
        let raw = vec![
            DeltaEntry {
                atom: a.clone(),
                kind: DeltaKind::Removed,
            },
            DeltaEntry {
                atom: a.clone(),
                kind: DeltaKind::Added,
            },
            DeltaEntry {
                atom: a.clone(),
                kind: DeltaKind::Changed { old: 0.2, new: 0.6 },
            },
        ];
        // Remove + re-add shifted pool positions, so it must stay a pool
        // delta (two entries); the trailing value write folds into it.
        let net = coalesce(raw);
        assert_eq!(net.len(), 2);
        assert!(matches!(net[0].kind, DeltaKind::Removed));
        assert!(matches!(net[1].kind, DeltaKind::Added));
    }

    #[test]
    fn batched_mutations_reground_in_one_pass() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();
        let covers = program.vocab.id_of("covers").unwrap();

        // One drained window carrying value flips on two candidates, a
        // cancelled pair on a third, a new covers atom, and a retraction.
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c1"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c2"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c2"]), 0.0);
        program
            .db
            .observe(GroundAtom::from_strs(covers, &["c2", "t1"]), 0.9);
        assert!(program
            .db
            .retract(&GroundAtom::from_strs(covers, &["c0", "t0"])));
        let delta = program.db.take_delta();
        assert_eq!(delta.raw_entries(), 6);
        assert_eq!(delta.len(), 4, "the c2 round-trip coalesced away");
        let incremental = program.reground(&prior, &delta).unwrap();
        let fresh = program.ground().unwrap();
        assert_equivalent("mixed batch", &incremental, &fresh);
        let batch = &incremental.rule_stats["delta-batch"];
        assert_eq!(batch.entries_coalesced, 2);
    }

    #[test]
    fn value_batch_dedupes_shared_seeded_work() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();
        let covers = program.vocab.id_of("covers").unwrap();

        // Two value writes feeding the same join source: the covers edge
        // and the inMap flip both seed cover-implies groundings for c0,
        // and the shared (c0,t0) grounding must recompute exactly once.
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(covers, &["c0", "t0"]), 0.8);
        let delta = program.db.take_delta();
        assert!(!delta.pools_changed());
        assert_eq!(delta.len(), 2);
        let incremental = program.reground(&prior, &delta).unwrap();
        let fresh = program.ground().unwrap();
        assert_equivalent("overlapping value batch", &incremental, &fresh);
        let total = incremental.total_stats();
        assert!(
            total.sources_deduped > 0,
            "overlapping seeds must dedup: {total:?}"
        );
    }

    #[test]
    fn net_empty_batch_short_circuits_to_the_prior() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();

        // a→b→a on one atom plus add+retract of another: net-empty.
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 0.0);
        let covers = program.vocab.id_of("covers").unwrap();
        let extra = GroundAtom::from_strs(covers, &["c2", "t3"]);
        program.db.observe(extra.clone(), 0.9);
        assert!(program.db.retract(&extra));
        let delta = program.db.take_delta();
        assert!(delta.is_net_empty());
        assert!(!delta.is_empty());
        assert_eq!(delta.raw_entries(), 4);

        let same = program.reground(&prior, &delta).unwrap();
        assert_equivalent("net-empty batch", &same, &prior);
        let total = same.total_stats();
        assert_eq!(total.terms_recomputed, 0, "{total:?}");
        assert_eq!(total.entries_coalesced, 4, "{total:?}");
        assert_eq!(
            total.terms_reused,
            prior.potentials.len() + prior.constraints.len(),
            "every term must be reported as reused"
        );

        // The short-circuit restamped: the *next* real delta chains.
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c1"]), 1.0);
        let next = program.db.take_delta();
        let chained = program.reground_owned(same, &next).unwrap();
        assert_equivalent("chained after no-op", &chained, &program.ground().unwrap());
    }

    #[test]
    fn net_empty_short_circuit_preserves_warm_duals() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let (_, duals) = prior.solve_warm_dual(&AdmmConfig::default(), &[], None);
        let _ = program.db.take_delta();
        let in_map = program.vocab.id_of("inMap").unwrap();
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 1.0);
        program
            .db
            .observe(GroundAtom::from_strs(in_map, &["c0"]), 0.0);
        let delta = program.db.take_delta();
        assert!(delta.is_net_empty());
        let same = program.reground(&prior, &delta).unwrap();
        // The identity dual-reuse map must carry every prior dual through
        // bit-for-bit.
        let carried = same
            .carry_duals(&duals)
            .expect("net-empty reground records a dual-reuse map");
        assert_eq!(carried.potential_duals(), duals.potential_duals());
        assert_eq!(carried.constraint_duals(), duals.constraint_duals());
    }

    #[test]
    fn parallel_reground_is_deterministic() {
        let mut program = eval_program();
        let prior = program.ground().unwrap();
        let prior2 = prior.clone();
        let _ = program.db.take_delta();
        let covers = program.vocab.id_of("covers").unwrap();
        let scope = program.vocab.id_of("scope").unwrap();
        let explained = program.vocab.id_of("explained").unwrap();

        // Pool mutations dirtying several rules at once, so the parallel
        // shard path actually engages.
        program
            .db
            .observe(GroundAtom::from_strs(covers, &["c2", "t1"]), 0.9);
        program
            .db
            .observe(GroundAtom::from_strs(scope, &["t4"]), 1.0);
        program.db.target(GroundAtom::from_strs(explained, &["t4"]));
        let delta = program.db.take_delta();
        assert!(delta.pools_changed());

        let seq = program.reground_owned_with(prior, &delta, 1).unwrap();
        let par = program.reground_owned_with(prior2, &delta, 4).unwrap();
        assert_eq!(
            format!("{:?}", seq.potentials),
            format!("{:?}", par.potentials),
            "parallel merge must be byte-identical to sequential"
        );
        assert_eq!(
            format!("{:?}", seq.constraints),
            format!("{:?}", par.constraints)
        );
        assert!((seq.constant_loss - par.constant_loss).abs() == 0.0);
        assert_equivalent("parallel vs fresh", &par, &program.ground().unwrap());
    }

    #[test]
    fn dependency_map_inverts_plan_predicates() {
        let program = eval_program();
        program.db.ensure_index();
        let plans: Vec<JoinPlan> = program
            .rules
            .iter()
            .map(|r| JoinPlan::compile(r, &program.db))
            .collect();
        let deps = DependencyMap::from_plans(&plans);
        let in_map = program.vocab.id_of("inMap").unwrap();
        let scope = program.vocab.id_of("scope").unwrap();
        let explained = program.vocab.id_of("explained").unwrap();
        assert_eq!(deps.dependents(in_map), &[1], "only the join rule");
        assert_eq!(deps.dependents(scope), &[0]);
        assert_eq!(
            deps.dependents(explained),
            &[0, 1],
            "head occurrences count"
        );
    }
}

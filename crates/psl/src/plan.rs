//! Join plans: rules compiled to a dense, index-probing execution form.
//!
//! A [`JoinPlan`] is the once-per-rule compilation step of the grounder:
//!
//! * **Slot interning** — variable names are mapped to dense slot ids in
//!   first-occurrence order (body, then head), so a substitution is a
//!   `Vec<Option<Sym>>` indexed by slot instead of a string-keyed hash map.
//!   The hot loop does no hashing and no allocation per binding.
//! * **Selectivity ordering** — the positive body literals are reordered
//!   greedily most-selective-first using the database's argument-position
//!   index cardinalities: literals with constant arguments are estimated by
//!   their posting-list length, literals joining on an already-bound slot
//!   by `pool / distinct-values`, and unconstrained literals by their full
//!   pool size (penalized, so cartesian scans sink to the end).
//! * **Probe-vs-scan lowering** — at execution each literal picks, per
//!   backtracking node, the shortest posting list among its bound argument
//!   positions and iterates only those candidates; a literal with no bound
//!   position falls back to a pool scan. [`GroundStats`] records how many
//!   candidates each mode touched.
//!
//! The executor reports every complete binding to a caller-supplied
//! closure; emission semantics (hinge compilation, pruning) stay in
//! [`crate::grounding`].

use crate::database::{AtomIndex, Database};
use crate::grounding::{GroundStats, GroundingError};
use crate::predicate::PredId;
use crate::rule::{LogicalRule, RAtom, RTerm};
use cms_data::{FxHashMap, Sym};

/// A rule term lowered to a dense slot or an interned constant.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SlotTerm {
    /// A constant symbol.
    Const(Sym),
    /// A variable slot (index into the binding vector).
    Slot(u32),
}

/// One rule atom in slot form.
#[derive(Clone, Debug)]
pub(crate) struct PlanAtom {
    pub(crate) pred: PredId,
    pub(crate) terms: Vec<SlotTerm>,
}

impl PlanAtom {
    fn lower(atom: &RAtom, slots: &mut FxHashMap<String, u32>) -> PlanAtom {
        let terms = atom
            .args
            .iter()
            .map(|t| match t {
                RTerm::Const(k) => SlotTerm::Const(*k),
                RTerm::Var(name) => {
                    let next = slots.len() as u32;
                    SlotTerm::Slot(*slots.entry(name.clone()).or_insert(next))
                }
            })
            .collect();
        PlanAtom {
            pred: atom.pred,
            terms,
        }
    }
}

/// A rule literal compiled for emission (original body-then-head order).
#[derive(Clone, Debug)]
pub(crate) struct EmitLiteral {
    pub(crate) atom: PlanAtom,
    pub(crate) negated: bool,
    pub(crate) in_body: bool,
}

/// A compiled rule: slot-interned literals plus a join order.
#[derive(Debug)]
pub struct JoinPlan {
    num_slots: usize,
    /// Positive body literals in execution order.
    join: Vec<PlanAtom>,
    /// All literals (body then head, original order) for emission.
    pub(crate) emit: Vec<EmitLiteral>,
}

impl JoinPlan {
    /// Compile `rule` against the current shape of `db` (pool sizes and
    /// index cardinalities drive the join order).
    pub fn compile(rule: &LogicalRule, db: &Database) -> JoinPlan {
        let mut slots: FxHashMap<String, u32> = FxHashMap::default();
        let mut emit: Vec<EmitLiteral> = Vec::with_capacity(rule.body.len() + rule.head.len());
        for lit in &rule.body {
            emit.push(EmitLiteral {
                atom: PlanAtom::lower(&lit.atom, &mut slots),
                negated: lit.negated,
                in_body: true,
            });
        }
        for lit in &rule.head {
            emit.push(EmitLiteral {
                atom: PlanAtom::lower(&lit.atom, &mut slots),
                negated: lit.negated,
                in_body: false,
            });
        }

        let guard = db.index();
        let idx = guard.as_ref().expect("database index ensured");
        let mut remaining: Vec<(usize, PlanAtom)> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.negated)
            .map(|(i, _)| (i, emit[i].atom.clone()))
            .collect();

        let mut join: Vec<PlanAtom> = Vec::with_capacity(remaining.len());
        let mut bound: Vec<bool> = vec![false; slots.len()];
        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, (orig, atom))| {
                    let pool = db.atoms_of(atom.pred).len();
                    let mut probeable = false;
                    let mut est = pool;
                    for (pos, t) in atom.terms.iter().enumerate() {
                        match *t {
                            SlotTerm::Const(k) => {
                                probeable = true;
                                est = est.min(idx.postings(atom.pred, pos, k).len());
                            }
                            SlotTerm::Slot(s) if bound[s as usize] => {
                                probeable = true;
                                let distinct = idx.distinct(atom.pred, pos).max(1);
                                est = est.min(pool.div_ceil(distinct));
                            }
                            SlotTerm::Slot(_) => {}
                        }
                    }
                    (usize::from(!probeable), est, *orig)
                })
                .map(|(i, _)| i)
                .expect("non-empty remaining");
            let (_, atom) = remaining.remove(pick);
            for t in &atom.terms {
                if let SlotTerm::Slot(s) = *t {
                    bound[s as usize] = true;
                }
            }
            join.push(atom);
        }

        JoinPlan {
            num_slots: slots.len(),
            join,
            emit,
        }
    }

    /// Enumerate all bindings of the join over `db`, invoking `on_match`
    /// for each complete substitution. `idx` must be the database's current
    /// argument-position index.
    pub(crate) fn execute<F>(
        &self,
        db: &Database,
        idx: &AtomIndex,
        stats: &mut GroundStats,
        mut on_match: F,
    ) -> Result<(), GroundingError>
    where
        F: FnMut(&[Option<Sym>], &mut GroundStats) -> Result<(), GroundingError>,
    {
        let mut binding: Vec<Option<Sym>> = vec![None; self.num_slots];
        let mut trail: Vec<u32> = Vec::new();
        self.join_at(0, db, idx, &mut binding, &mut trail, stats, &mut on_match)
    }

    /// Like [`JoinPlan::execute`], but with some slots pre-bound. Only the
    /// complete bindings *consistent with the seed* are enumerated — the
    /// pre-bound slots turn every literal that mentions them into an index
    /// probe, so the walk touches a fraction of the full join. Used by the
    /// delta regrounder to enumerate exactly the groundings that
    /// instantiate a mutated atom.
    pub(crate) fn execute_seeded<F>(
        &self,
        db: &Database,
        idx: &AtomIndex,
        seed: &[Option<Sym>],
        stats: &mut GroundStats,
        mut on_match: F,
    ) -> Result<(), GroundingError>
    where
        F: FnMut(&[Option<Sym>], &mut GroundStats) -> Result<(), GroundingError>,
    {
        debug_assert_eq!(seed.len(), self.num_slots);
        let mut binding: Vec<Option<Sym>> = seed.to_vec();
        let mut trail: Vec<u32> = Vec::new();
        self.join_at(0, db, idx, &mut binding, &mut trail, stats, &mut on_match)
    }

    /// Unify `ground` against emit literal `lit_idx`'s pattern, returning
    /// the seed binding (slots bound to the atom's arguments) or `None` if
    /// the pattern cannot produce this atom (constant or repeated-slot
    /// mismatch, wrong predicate or arity).
    pub(crate) fn seed_binding(
        &self,
        lit_idx: usize,
        ground: &crate::atom::GroundAtom,
    ) -> Option<Vec<Option<Sym>>> {
        let atom = &self.emit[lit_idx].atom;
        if atom.pred != ground.pred || atom.terms.len() != ground.args.len() {
            return None;
        }
        let mut seed: Vec<Option<Sym>> = vec![None; self.num_slots];
        for (t, &sym) in atom.terms.iter().zip(ground.args.iter()) {
            match *t {
                SlotTerm::Const(k) => {
                    if k != sym {
                        return None;
                    }
                }
                SlotTerm::Slot(s) => match seed[s as usize] {
                    Some(prev) if prev != sym => return None,
                    _ => seed[s as usize] = Some(sym),
                },
            }
        }
        Some(seed)
    }

    /// Predicates this plan touches (all emit literals: positive and
    /// negated body, head) — the rule's dependency set for delta
    /// regrounding. May contain duplicates.
    pub(crate) fn emit_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.emit.iter().map(|l| l.atom.pred)
    }

    #[allow(clippy::too_many_arguments)]
    fn join_at<F>(
        &self,
        depth: usize,
        db: &Database,
        idx: &AtomIndex,
        binding: &mut Vec<Option<Sym>>,
        trail: &mut Vec<u32>,
        stats: &mut GroundStats,
        on_match: &mut F,
    ) -> Result<(), GroundingError>
    where
        F: FnMut(&[Option<Sym>], &mut GroundStats) -> Result<(), GroundingError>,
    {
        let Some(atom) = self.join.get(depth) else {
            stats.substitutions += 1;
            return on_match(binding, stats);
        };
        let pool = db.atoms_of(atom.pred);

        // Probe: shortest posting list among bound argument positions.
        let mut best: Option<&[u32]> = None;
        for (pos, t) in atom.terms.iter().enumerate() {
            let sym = match *t {
                SlotTerm::Const(k) => Some(k),
                SlotTerm::Slot(s) => binding[s as usize],
            };
            if let Some(sym) = sym {
                let p = idx.postings(atom.pred, pos, sym);
                if best.is_none_or(|b: &[u32]| p.len() < b.len()) {
                    best = Some(p);
                    if p.is_empty() {
                        break;
                    }
                }
            }
        }

        match best {
            Some(postings) => {
                stats.candidates_probed += postings.len();
                for &i in postings {
                    self.try_candidate(
                        atom, i as usize, depth, db, idx, binding, trail, stats, on_match,
                    )?;
                }
            }
            None => {
                stats.candidates_scanned += pool.len();
                for i in 0..pool.len() {
                    self.try_candidate(atom, i, depth, db, idx, binding, trail, stats, on_match)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn try_candidate<F>(
        &self,
        atom: &PlanAtom,
        cand_idx: usize,
        depth: usize,
        db: &Database,
        idx: &AtomIndex,
        binding: &mut Vec<Option<Sym>>,
        trail: &mut Vec<u32>,
        stats: &mut GroundStats,
        on_match: &mut F,
    ) -> Result<(), GroundingError>
    where
        F: FnMut(&[Option<Sym>], &mut GroundStats) -> Result<(), GroundingError>,
    {
        let cand = &db.atoms_of(atom.pred)[cand_idx];
        debug_assert_eq!(
            atom.terms.len(),
            cand.args.len(),
            "pool arity validated up front"
        );
        let mark = trail.len();
        let mut ok = true;
        for (t, &c) in atom.terms.iter().zip(cand.args.iter()) {
            match *t {
                SlotTerm::Const(k) => {
                    if k != c {
                        ok = false;
                        break;
                    }
                }
                SlotTerm::Slot(s) => match binding[s as usize] {
                    Some(v) => {
                        if v != c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding[s as usize] = Some(c);
                        trail.push(s);
                    }
                },
            }
        }
        let result = if ok {
            self.join_at(depth + 1, db, idx, binding, trail, stats, on_match)
        } else {
            Ok(())
        };
        for &s in &trail[mark..] {
            binding[s as usize] = None;
        }
        trail.truncate(mark);
        result
    }

    /// Number of variable slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of emit literals (body then head, original order).
    pub(crate) fn num_emit_literals(&self) -> usize {
        self.emit.len()
    }

    /// The join order as positions into the rule's positive body literals —
    /// exposed for plan introspection in tests and diagnostics.
    pub fn join_preds(&self) -> Vec<PredId> {
        self.join.iter().map(|a| a.pred).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::GroundAtom;
    use crate::rule::{rconst, rvar, RuleBuilder};

    /// The selectivity planner must move a constant-probed literal ahead of
    /// a broader one, regardless of the order the rule wrote them in.
    #[test]
    fn constant_probe_is_ordered_first() {
        let covers = PredId(0);
        let in_map = PredId(1);
        let mut db = Database::new();
        for i in 0..20 {
            db.observe(
                GroundAtom::from_strs(covers, &[&format!("c{}", i % 4), &format!("t{i}")]),
                1.0,
            );
            db.target(GroundAtom::from_strs(in_map, &[&format!("c{}", i % 4)]));
        }
        // Written order: the unselective inMap(C) first, then covers('c2', T)
        // whose constant argument probes a 5-atom posting list.
        let rule = RuleBuilder::new("r")
            .body(in_map, vec![rvar("C")])
            .body(covers, vec![rconst("c2"), rvar("T")])
            .weight(1.0)
            .build();
        let plan = JoinPlan::compile(&rule, &db);
        assert_eq!(plan.num_slots(), 2, "C and T");
        assert_eq!(
            plan.join_preds(),
            vec![covers, in_map],
            "constant-probed covers literal must run first"
        );
    }

    /// Literal order is preserved for emission even when the join order
    /// changes (the emit template stays body-then-head as written).
    #[test]
    fn emit_template_keeps_written_order() {
        let covers = PredId(0);
        let in_map = PredId(1);
        let mut db = Database::new();
        db.observe(GroundAtom::from_strs(covers, &["c1", "t1"]), 1.0);
        db.target(GroundAtom::from_strs(in_map, &["c1"]));
        let rule = RuleBuilder::new("r")
            .body(in_map, vec![rvar("C")])
            .body(covers, vec![rconst("c1"), rvar("T")])
            .head(in_map, vec![rvar("C")])
            .weight(1.0)
            .build();
        let plan = JoinPlan::compile(&rule, &db);
        let emitted: Vec<(PredId, bool)> =
            plan.emit.iter().map(|e| (e.atom.pred, e.in_body)).collect();
        assert_eq!(
            emitted,
            vec![(in_map, true), (covers, true), (in_map, false)]
        );
    }
}

//! Consensus-ADMM MAP inference for hinge-loss MRFs, with a **sharded,
//! deterministic** consensus step and **reusable dual state**.
//!
//! This is the solver of Bach et al., "Hinge-Loss Markov Random Fields and
//! Probabilistic Soft Logic" (JMLR 2017): every ground potential and hard
//! constraint holds a *local copy* of the variables it touches; the local
//! subproblems have closed-form solutions (hinge prox operators and
//! hyperplane projections), and a consensus step averages copies and clips
//! to the `[0,1]` box.
//!
//! For each term with inner expression `ℓ(y) = b + aᵀy` and center
//! `c = z − u` (scaled dual form):
//!
//! * linear hinge `w·max(0,ℓ)`: if `ℓ(c) ≤ 0` take `y = c`; else try
//!   `y = c − (w/ρ)a`; if `ℓ(y) < 0` project `c` onto the hyperplane
//!   `ℓ = 0`.
//! * squared hinge `w·max(0,ℓ)²`: if `ℓ(c) ≤ 0` take `y = c`; else
//!   `y = c − (2w·ℓ(c) / (ρ + 2w‖a‖²))·a`.
//! * constraint `ℓ ≤ 0`: project onto the half-space; `ℓ = 0`: project
//!   onto the hyperplane.
//!
//! ## Sharded consensus
//!
//! The local step is embarrassingly parallel (each term owns its copies);
//! the naive consensus step — one reduction over *every* local copy — is
//! not, and becomes the serial bottleneck once the local step is spread
//! over workers. This solver shards it:
//!
//! * Variables are partitioned into **contiguous shards** balanced by copy
//!   count ([`AdmmConfig::shard_slots`] copies per shard). Shard boundaries
//!   depend only on the problem, never on the thread count.
//! * Every local copy ("slot") belongs to exactly one shard — the shard of
//!   its variable. The scaled duals `u` are stored **shard-major**, so each
//!   shard owns a contiguous dual range; the local copies `y` stay
//!   term-major for the local step.
//! * One **fused pass per shard** accumulates the per-variable sums
//!   `Σ(yᵢ + uᵢ)` in a shard-local buffer, writes the averaged-and-clipped
//!   consensus `z`, performs the dual update `u += y − z`, and gathers the
//!   primal/dual residual partials — one sweep instead of three.
//!
//! **Determinism.** Within a shard, slots are visited in ascending
//! term-major order — the exact order the single-threaded reduction used —
//! and every `z[v]`, `u` slot, and residual partial is written by exactly
//! one shard. Per-shard residual partials are merged in shard order on the
//! coordinating thread. Consequently the iterates, iteration counts, and
//! objectives are **bit-identical for every `threads` value** (a property
//! test enforces this at `threads ∈ {1, 2, 4, 7}`). Shared arrays are
//! plain `f64` bits in `AtomicU64`s (relaxed loads/stores, phase-separated
//! by barriers), which keeps the whole solver safe Rust.
//!
//! Workers are spawned **once per solve** and advance through the
//! local/consensus phases over `std::sync::Barrier`, so per-iteration
//! parallel overhead is a few barrier waits, not a thread spawn.
//!
//! ## Warm starts and dual reuse
//!
//! [`AdmmSolver::solve_warm`] seeds the consensus vector from a previous
//! solution *and* the per-term scaled duals from a [`DualState`] returned
//! by an earlier solve. Terms whose dual vector is missing (empty) or of
//! the wrong length start at zero. Re-seeding both `z` and `u` makes a
//! solve on a slightly perturbed program resume almost where the previous
//! one stopped — the delta-regrounding subsystem keeps term identity
//! across regrounds precisely so that
//! [`crate::GroundProgram::carry_duals`] can map a prior [`DualState`]
//! onto the spliced program.

use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct AdmmConfig {
    /// Augmented-Lagrangian step size ρ.
    pub rho: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Absolute tolerance (scaled by problem size).
    pub eps_abs: f64,
    /// Relative tolerance.
    pub eps_rel: f64,
    /// Number of worker threads (1 = serial). Defaults to the
    /// `ADMM_THREADS` environment variable, or 1 when unset.
    pub threads: usize,
    /// Initial value for consensus variables.
    pub initial_value: f64,
    /// Residual-balancing ρ adaptation (Boyd et al. §3.4.1): when one
    /// residual dominates the other by more than 10×, scale ρ by 2 (and
    /// rescale the duals). Helps badly scaled programs; off by default to
    /// keep runs exactly reproducible against recorded numbers.
    pub adaptive_rho: bool,
    /// Minimum term count before `threads > 1` actually engages the
    /// parallel path — small programs solve faster serially. Defaults to
    /// the `ADMM_PARALLEL_THRESHOLD` environment variable, or 512 when
    /// unset (the previously hard-coded value). Set to 0 to force the
    /// parallel path regardless of size (benches, determinism tests).
    pub parallel_threshold: usize,
    /// Target number of local copies per consensus shard. Shard boundaries
    /// are derived from the problem alone — never from `threads` — which
    /// is what makes results bit-identical across thread counts.
    pub shard_slots: usize,
    /// Stall watchdog: stop with [`SolveHealth::Stalled`] when the
    /// combined residual fails to improve on its best value for this many
    /// consecutive iterations. `0` (the default) disables the watchdog.
    /// Detection runs on the coordinating thread over the merged residual
    /// partials, so it is bit-identical across thread counts.
    pub stall_window: usize,
    /// Wall-clock budget for the whole solve, spanning restarts; checked
    /// once per iteration on the coordinating thread. When exceeded the
    /// solve stops with [`SolveHealth::TimedOut`] (never restarted). This
    /// is the one watchdog that is inherently *not* bit-identical across
    /// runs — leave it `None` (the default) where reproducibility matters.
    pub time_budget: Option<Duration>,
    /// Restarts attempted after a `Stalled` / `Diverged` outcome. The
    /// first restart keeps the consensus iterate (scrubbed of non-finite
    /// entries), resets the duals, and doubles ρ; later restarts cold-reset
    /// the iterates at the original ρ. `0` (the default) reports the
    /// unhealthy outcome unchanged.
    pub max_restarts: usize,
}

/// Structured outcome of a solve — the watchdog-aware refinement of the
/// boolean `converged` flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolveHealth {
    /// Both residuals dropped below tolerance.
    #[default]
    Converged,
    /// The iteration cap was reached without convergence — the historical
    /// non-converged outcome. Not necessarily a failure: e.g. infeasible
    /// programs legitimately settle on a compromise without converging.
    Capped,
    /// The combined residual made no progress for
    /// [`AdmmConfig::stall_window`] consecutive iterations (or a stall was
    /// injected by the fault harness).
    Stalled {
        /// Iteration at which the stall was detected.
        at: usize,
    },
    /// A non-finite value reached the residual aggregates. Any NaN/∞ in
    /// `y`, `z`, or `u` contaminates them within one iteration, so this
    /// guard catches every divergence at the iteration it happens.
    Diverged {
        /// Iteration at which the divergence was detected.
        at: usize,
    },
    /// The [`AdmmConfig::time_budget`] ran out.
    TimedOut,
}

impl SolveHealth {
    /// True for outcomes that warrant no restart or fallback:
    /// [`SolveHealth::Converged`] and the historical iteration-cap
    /// outcome.
    pub fn is_nominal(&self) -> bool {
        matches!(self, SolveHealth::Converged | SolveHealth::Capped)
    }

    /// Stable label without the iteration suffix, for metric names
    /// (`solve.health.stalled`, not `solve.health.stalled@40`).
    pub fn label(&self) -> &'static str {
        match self {
            SolveHealth::Converged => "converged",
            SolveHealth::Capped => "capped",
            SolveHealth::Stalled { .. } => "stalled",
            SolveHealth::Diverged { .. } => "diverged",
            SolveHealth::TimedOut => "timed-out",
        }
    }
}

impl std::fmt::Display for SolveHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveHealth::Converged => write!(f, "converged"),
            SolveHealth::Capped => write!(f, "capped"),
            SolveHealth::Stalled { at } => write!(f, "stalled@{at}"),
            SolveHealth::Diverged { at } => write!(f, "diverged@{at}"),
            SolveHealth::TimedOut => write!(f, "timed-out"),
        }
    }
}

/// Read a usize from the environment once (CI uses `ADMM_THREADS` /
/// `ADMM_PARALLEL_THRESHOLD` to re-run the whole suite on the parallel
/// path).
fn env_usize(cache: &'static OnceLock<usize>, name: &str, default: usize) -> usize {
    // The warning fires at most once per variable by construction: the
    // `OnceLock` initializer runs once per process.
    *cache.get_or_init(|| match std::env::var(name) {
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!(
                    "warning: ignoring malformed {name}={raw:?} (expected a \
                     non-negative integer); using the default {default}"
                );
                default
            }
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!("warning: ignoring non-unicode {name}={raw:?}; using the default {default}");
            default
        }
    })
}

impl Default for AdmmConfig {
    fn default() -> AdmmConfig {
        static THREADS: OnceLock<usize> = OnceLock::new();
        static THRESHOLD: OnceLock<usize> = OnceLock::new();
        AdmmConfig {
            rho: 1.0,
            max_iterations: 25_000,
            eps_abs: 1e-6,
            eps_rel: 1e-4,
            threads: env_usize(&THREADS, "ADMM_THREADS", 1).max(1),
            initial_value: 0.5,
            adaptive_rho: false,
            parallel_threshold: env_usize(&THRESHOLD, "ADMM_PARALLEL_THRESHOLD", 512),
            shard_slots: 4096,
            stall_window: 0,
            time_budget: None,
            max_restarts: 0,
        }
    }
}

/// What one local term optimizes.
#[derive(Clone, Copy, Debug)]
enum TermKind {
    Potential { weight: f64, squared: bool },
    Constraint { equality: bool },
}

/// Warm-start inputs for [`AdmmSolver::solve_warm`].
#[derive(Clone, Copy, Default, Debug)]
pub struct WarmStart<'a> {
    /// Consensus seed: values are clamped to `[0,1]`; variables beyond the
    /// slice length start at [`AdmmConfig::initial_value`].
    pub values: Option<&'a [f64]>,
    /// Scaled-dual seed from a previous solve of the same (or a spliced)
    /// program. Terms with a missing or wrong-length entry start at zero.
    pub duals: Option<&'a DualState>,
}

/// Per-term scaled duals `u` captured at the end of a solve, aligned with
/// the solver's potentials-then-constraints term order. Feed it back via
/// [`WarmStart::duals`] to resume iteration; map it across a delta
/// reground with [`crate::GroundProgram::carry_duals`].
#[derive(Clone, Debug, Default)]
pub struct DualState {
    pub(crate) potentials: Vec<Vec<f64>>,
    pub(crate) constraints: Vec<Vec<f64>>,
}

impl DualState {
    /// Dual vectors per potential, in the program's potential order.
    pub fn potential_duals(&self) -> &[Vec<f64>] {
        &self.potentials
    }

    /// Dual vectors per constraint, in the program's constraint order.
    pub fn constraint_duals(&self) -> &[Vec<f64>] {
        &self.constraints
    }

    /// Number of terms carrying a non-empty dual vector — i.e. terms that
    /// will actually seed `u` on the next solve.
    pub fn seeded_terms(&self) -> usize {
        self.potentials
            .iter()
            .chain(self.constraints.iter())
            .filter(|d| !d.is_empty())
            .count()
    }

    /// True iff every stored dual value is finite. A poisoned (NaN/∞)
    /// state must not be fed back into a warm start: the workspace builder
    /// would skip the poisoned vectors silently, so callers on the
    /// degradation ladder check here first and count the fallback.
    pub fn all_finite(&self) -> bool {
        self.potentials
            .iter()
            .chain(self.constraints.iter())
            .all(|d| d.iter().all(|x| x.is_finite()))
    }
}

/// Result of a solve.
#[derive(Clone, Debug)]
pub struct AdmmSolution {
    /// Consensus values per variable, in `[0,1]`.
    pub values: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// True iff both residuals dropped below tolerance before the cap.
    pub converged: bool,
    /// Σ weighted potential values at the solution (excluding any constant
    /// loss folded away during grounding).
    pub objective: f64,
    /// Largest hard-constraint violation at the solution.
    pub max_violation: f64,
    /// Wall time spent in the local (term-minimization) step.
    pub local_time: Duration,
    /// Wall time spent in the fused consensus/dual/residual step.
    pub consensus_time: Duration,
    /// Structured outcome: `converged` is exactly
    /// `health == SolveHealth::Converged`.
    pub health: SolveHealth,
    /// Restarts performed by the recovery policy before this outcome.
    pub restarts: usize,
}

impl AdmmSolution {
    /// Mirror this solve into the telemetry layer: `solve.*` registry
    /// counters at [`cms_obs::ObsLevel::Stats`], synthetic local/
    /// consensus phase spans under `parent` at
    /// [`cms_obs::ObsLevel::Spans`], and a typed
    /// [`cms_obs::Event::Solve`] at [`cms_obs::ObsLevel::Journal`].
    /// No-op (one atomic load) when telemetry is off.
    fn publish(&self, parent: cms_obs::SpanId) {
        if cms_obs::enabled(cms_obs::ObsLevel::Stats) {
            // Cached handles: `publish` runs once per solve inside the
            // flip loop the telemetry-overhead gate times.
            use cms_obs::LazyCounter;
            static RUNS: LazyCounter = LazyCounter::new("solve.runs");
            static ITERATIONS: LazyCounter = LazyCounter::new("solve.iterations");
            static RESTARTS: LazyCounter = LazyCounter::new("solve.restarts");
            static HEALTH: [LazyCounter; 5] = [
                LazyCounter::new("solve.health.converged"),
                LazyCounter::new("solve.health.capped"),
                LazyCounter::new("solve.health.stalled"),
                LazyCounter::new("solve.health.diverged"),
                LazyCounter::new("solve.health.timed-out"),
            ];
            RUNS.inc();
            ITERATIONS.add(self.iterations as u64);
            RESTARTS.add(self.restarts as u64);
            let h = match self.health {
                SolveHealth::Converged => &HEALTH[0],
                SolveHealth::Capped => &HEALTH[1],
                SolveHealth::Stalled { .. } => &HEALTH[2],
                SolveHealth::Diverged { .. } => &HEALTH[3],
                SolveHealth::TimedOut => &HEALTH[4],
            };
            h.inc();
        }
        cms_obs::record_span_duration("solve/local", parent, self.local_time.as_nanos() as u64);
        cms_obs::record_span_duration(
            "solve/consensus",
            parent,
            self.consensus_time.as_nanos() as u64,
        );
        // `emit` gates internally, but the event's health string would
        // allocate before the level check — guard here so the stats-level
        // hot path never pays it.
        if cms_obs::enabled(cms_obs::ObsLevel::Journal) {
            cms_obs::emit(cms_obs::Event::Solve {
                iterations: self.iterations as u64,
                converged: self.converged,
                restarts: self.restarts as u64,
                health: self.health.to_string(),
                objective: self.objective,
                max_violation: self.max_violation,
                local_ns: self.local_time.as_nanos() as u64,
                consensus_ns: self.consensus_time.as_nanos() as u64,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Shared-array helpers: f64 bits in AtomicU64. All accesses are relaxed;
// cross-thread visibility is provided by the phase barriers.
// ---------------------------------------------------------------------------

#[inline]
fn f_load(a: &AtomicU64) -> f64 {
    f64::from_bits(a.load(Ordering::Relaxed))
}

#[inline]
fn f_store(a: &AtomicU64, v: f64) {
    a.store(v.to_bits(), Ordering::Relaxed);
}

/// Residual partials of one shard, written only by the shard's owner
/// during the consensus phase and read by the coordinator after it.
#[derive(Default)]
struct ShardPartials {
    primal_sq: AtomicU64,
    y_norm_sq: AtomicU64,
    z_norm_sq: AtomicU64,
    dual_sq: AtomicU64,
}

/// One contiguous variable shard and its shard-major slot range.
#[derive(Clone, Debug)]
struct Shard {
    /// Variables this shard owns.
    vars: Range<usize>,
    /// Range in the shard-major arrays (`u`, `shard_slot`).
    slots: Range<usize>,
}

/// Flattened problem + iteration state. Terms are stored structure-of-
/// arrays: per-term metadata plus term-major slot arrays (`slot_*`, `y`)
/// delimited by `term_start`, and the shard-major dual array `u` linked to
/// the term-major view through `slot_upos` / `shard_slot`.
struct Workspace {
    num_potentials: usize,
    num_terms: usize,
    term_start: Vec<u32>,
    kind: Vec<TermKind>,
    constant: Vec<f64>,
    coef_norm_sq: Vec<f64>,
    slot_var: Vec<u32>,
    slot_coef: Vec<f64>,
    /// Term-major slot → its shard-major position.
    slot_upos: Vec<u32>,
    /// Shard-major position → its term-major slot.
    shard_slot: Vec<u32>,
    /// Shard-major position → its variable (saves a `slot_var` indirection
    /// in the consensus sweeps).
    sm_var: Vec<u32>,
    shards: Vec<Shard>,
    counts: Vec<u32>,
    total_copies: usize,
    /// Local copies, term-major (written in the local phase).
    y: Vec<AtomicU64>,
    /// Scaled duals, shard-major (written in the consensus phase).
    u: Vec<AtomicU64>,
    /// Consensus variables (written by the owning shard).
    z: Vec<AtomicU64>,
}

impl Workspace {
    /// Closed-form local minimization over a range of terms: for each term
    /// compute `s = ℓ(c)` at the center `c = z − u`, pick the prox/projection
    /// step factor, and write `y = c − factor·a`.
    fn local_phase(&self, terms: Range<usize>, rho: f64) {
        for t in terms {
            let s0 = self.term_start[t] as usize;
            let s1 = self.term_start[t + 1] as usize;
            let mut s = self.constant[t];
            for i in s0..s1 {
                let c = f_load(&self.z[self.slot_var[i] as usize])
                    - f_load(&self.u[self.slot_upos[i] as usize]);
                s += self.slot_coef[i] * c;
            }
            let norm = self.coef_norm_sq[t];
            let factor = match self.kind[t] {
                TermKind::Constraint { equality } => {
                    if (equality || s > 0.0) && norm > 0.0 {
                        s / norm
                    } else {
                        0.0
                    }
                }
                TermKind::Potential { weight, squared } => {
                    if s <= 0.0 {
                        0.0 // hinge inactive at the center
                    } else if squared {
                        2.0 * weight * s / (rho + 2.0 * weight * norm)
                    } else {
                        // Try the linear-region minimizer; if it overshoots
                        // the kink, project onto ℓ = 0 instead.
                        let s_after = s - (weight / rho) * norm;
                        if s_after >= 0.0 {
                            weight / rho
                        } else if norm > 0.0 {
                            s / norm
                        } else {
                            0.0
                        }
                    }
                }
            };
            for i in s0..s1 {
                let c = f_load(&self.z[self.slot_var[i] as usize])
                    - f_load(&self.u[self.slot_upos[i] as usize]);
                f_store(&self.y[i], c - factor * self.slot_coef[i]);
            }
        }
    }

    /// Fused consensus + dual + residual pass over one shard: accumulate
    /// `Σ(y + u)` per variable (slot order = ascending term order, the same
    /// order the serial reduction used), write the averaged/clipped `z`,
    /// update the shard's duals, and record the residual partials.
    fn consensus_shard(&self, s: usize, scratch: &mut Vec<f64>, out: &ShardPartials) {
        let shard = &self.shards[s];
        let vlo = shard.vars.start;
        scratch.clear();
        scratch.resize(shard.vars.len(), 0.0);
        for pos in shard.slots.clone() {
            let slot = self.shard_slot[pos] as usize;
            let v = self.sm_var[pos] as usize;
            scratch[v - vlo] += f_load(&self.y[slot]) + f_load(&self.u[pos]);
        }
        let mut dual_sq = 0.0f64;
        for v in shard.vars.clone() {
            let old = f_load(&self.z[v]);
            let cnt = self.counts[v];
            let new = if cnt == 0 {
                old // variables in no term keep their value
            } else {
                (scratch[v - vlo] / f64::from(cnt)).clamp(0.0, 1.0)
            };
            let d = new - old;
            dual_sq += f64::from(cnt) * d * d;
            f_store(&self.z[v], new);
        }
        let mut primal_sq = 0.0f64;
        let mut y_norm_sq = 0.0f64;
        let mut z_norm_sq = 0.0f64;
        for pos in shard.slots.clone() {
            let slot = self.shard_slot[pos] as usize;
            let v = self.sm_var[pos] as usize;
            let yv = f_load(&self.y[slot]);
            let zv = f_load(&self.z[v]);
            let diff = yv - zv;
            f_store(&self.u[pos], f_load(&self.u[pos]) + diff);
            primal_sq += diff * diff;
            y_norm_sq += yv * yv;
            z_norm_sq += zv * zv;
        }
        f_store(&out.primal_sq, primal_sq);
        f_store(&out.y_norm_sq, y_norm_sq);
        f_store(&out.z_norm_sq, z_norm_sq);
        f_store(&out.dual_sq, dual_sq);
    }

    /// Rescale every dual by `1/factor` (ρ adaptation keeps λ = ρ·u fixed).
    fn rescale_duals(&self, factor: f64) {
        for a in &self.u {
            f_store(a, f_load(a) / factor);
        }
    }

    /// Restart repair: zero every dual, scrub non-finite consensus values
    /// back to `initial`, and re-seed the local copies from `z`. Keeps
    /// whatever finite progress the failed attempt made.
    fn reset_for_restart(&self, initial: f64) {
        for a in &self.u {
            f_store(a, 0.0);
        }
        for a in &self.z {
            if !f_load(a).is_finite() {
                f_store(a, initial.clamp(0.0, 1.0));
            }
        }
        for (slot, &v) in self.slot_var.iter().enumerate() {
            f_store(&self.y[slot], f_load(&self.z[v as usize]));
        }
    }

    /// Cold reset: consensus back to the initial value everywhere, duals
    /// to zero, local copies re-seeded — as if the solve had just begun.
    fn cold_reset(&self, initial: f64) {
        for a in &self.z {
            f_store(a, initial.clamp(0.0, 1.0));
        }
        self.reset_for_restart(initial);
    }

    fn values(&self) -> Vec<f64> {
        self.z.iter().map(f_load).collect()
    }

    /// Read the duals back out into per-term vectors.
    fn extract_duals(&self) -> DualState {
        let term_duals = |t: usize| -> Vec<f64> {
            (self.term_start[t] as usize..self.term_start[t + 1] as usize)
                .map(|i| f_load(&self.u[self.slot_upos[i] as usize]))
                .collect()
        };
        DualState {
            potentials: (0..self.num_potentials).map(term_duals).collect(),
            constraints: (self.num_potentials..self.num_terms)
                .map(term_duals)
                .collect(),
        }
    }
}

/// Partition `0..weights.len()` into `parts` contiguous ranges with
/// roughly equal total weight (trailing ranges may be empty).
fn balanced_ranges(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let total: usize = weights.iter().sum();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let remaining_parts = parts - out.len();
        let target = (total - assigned).div_ceil(remaining_parts);
        if acc >= target && out.len() + 1 < parts {
            out.push(start..i + 1);
            start = i + 1;
            assigned += acc;
            acc = 0;
        }
    }
    out.push(start..weights.len());
    while out.len() < parts {
        out.push(weights.len()..weights.len());
    }
    out
}

/// MAP solver over ground potentials and constraints.
pub struct AdmmSolver<'a> {
    potentials: &'a [GroundPotential],
    constraints: &'a [GroundConstraint],
    num_vars: usize,
}

impl<'a> AdmmSolver<'a> {
    /// Create a solver for the given ground program pieces.
    pub fn new(
        potentials: &'a [GroundPotential],
        constraints: &'a [GroundConstraint],
        num_vars: usize,
    ) -> AdmmSolver<'a> {
        AdmmSolver {
            potentials,
            constraints,
            num_vars,
        }
    }

    /// Run ADMM to convergence (or the iteration cap).
    pub fn solve(&self, config: &AdmmConfig) -> AdmmSolution {
        self.solve_inner(config, WarmStart::default(), false).0
    }

    /// Run ADMM warm-started from a previous consensus vector (duals reset
    /// to zero). Kept for callers that carry no dual state; see
    /// [`AdmmSolver::solve_warm`] for the full warm start.
    pub fn solve_from(&self, config: &AdmmConfig, warm: Option<&[f64]>) -> AdmmSolution {
        self.solve_inner(
            config,
            WarmStart {
                values: warm,
                duals: None,
            },
            false,
        )
        .0
    }

    /// Run ADMM with a full warm start (consensus values and/or scaled
    /// duals) and return the solution together with the final
    /// [`DualState`] for the next resume.
    pub fn solve_warm(
        &self,
        config: &AdmmConfig,
        warm: WarmStart<'_>,
    ) -> (AdmmSolution, DualState) {
        let (sol, duals) = self.solve_inner(config, warm, true);
        (sol, duals.unwrap_or_default())
    }

    /// Shared solve driver. Dual extraction is skipped unless requested —
    /// `solve`/`solve_from` drop the state, so they should not pay the
    /// per-term allocations for it.
    fn solve_inner(
        &self,
        config: &AdmmConfig,
        warm: WarmStart<'_>,
        want_duals: bool,
    ) -> (AdmmSolution, Option<DualState>) {
        let _span = cms_obs::span("solve");
        let ws = self.build_workspace(config, &warm);
        if ws.total_copies == 0 {
            // No term holds a local copy: every expression is constant.
            let values = ws.values();
            let objective = self.objective(&values);
            let max_violation = self
                .constraints
                .iter()
                .map(|c| c.violation(&values))
                .fold(0.0, f64::max);
            let solution = AdmmSolution {
                values,
                iterations: 0,
                converged: true,
                objective,
                max_violation,
                local_time: Duration::ZERO,
                consensus_time: Duration::ZERO,
                health: SolveHealth::Converged,
                restarts: 0,
            };
            solution.publish(_span.id());
            return (solution, want_duals.then(|| ws.extract_duals()));
        }

        let threads = config.threads.max(1);
        let parallel = threads > 1 && ws.num_terms >= config.parallel_threshold;
        let partials: Vec<ShardPartials> = (0..ws.shards.len())
            .map(|_| ShardPartials::default())
            .collect();

        // One wall-clock deadline spans every restart attempt, so the
        // restart policy can never exceed the caller's budget.
        let deadline = config.time_budget.map(|b| Instant::now() + b);
        let mut attempt_cfg = config.clone();
        let mut restarts = 0usize;
        let mut iterations = 0usize;
        let mut local_time = Duration::ZERO;
        let mut consensus_time = Duration::ZERO;
        let outcome = loop {
            let outcome = if parallel {
                self.run_parallel(&attempt_cfg, &ws, &partials, threads, deadline)
            } else {
                self.run_serial(&attempt_cfg, &ws, &partials, deadline)
            };
            iterations += outcome.iterations;
            local_time += outcome.local_time;
            consensus_time += outcome.consensus_time;
            let restartable = matches!(
                outcome.health,
                SolveHealth::Stalled { .. } | SolveHealth::Diverged { .. }
            );
            if !restartable || restarts >= config.max_restarts {
                break outcome;
            }
            restarts += 1;
            if restarts == 1 {
                // First restart: keep the consensus iterate (scrubbed of
                // any non-finite entries), drop the duals, double ρ.
                ws.reset_for_restart(config.initial_value);
                attempt_cfg.rho = config.rho * 2.0;
            } else {
                // Later restarts: full cold reset at the original ρ.
                ws.cold_reset(config.initial_value);
                attempt_cfg.rho = config.rho;
            }
        };

        let values = ws.values();
        let objective = self.objective(&values);
        let max_violation = self
            .constraints
            .iter()
            .map(|c| c.violation(&values))
            .fold(0.0, f64::max);
        let solution = AdmmSolution {
            values,
            iterations,
            converged: outcome.health == SolveHealth::Converged,
            objective,
            max_violation,
            local_time,
            consensus_time,
            health: outcome.health,
            restarts,
        };
        solution.publish(_span.id());
        (solution, want_duals.then(|| ws.extract_duals()))
    }

    /// Σ weighted potential values under `y`.
    pub fn objective(&self, y: &[f64]) -> f64 {
        self.potentials.iter().map(|p| p.value(y)).sum()
    }

    /// Build the flattened workspace: SoA terms, shard partition, seeded
    /// `z`/`y`/`u`.
    fn build_workspace(&self, config: &AdmmConfig, warm: &WarmStart<'_>) -> Workspace {
        let n = self.num_vars;
        let num_potentials = self.potentials.len();
        let num_terms = num_potentials + self.constraints.len();

        let mut term_start: Vec<u32> = Vec::with_capacity(num_terms + 1);
        let mut kind: Vec<TermKind> = Vec::with_capacity(num_terms);
        let mut constant: Vec<f64> = Vec::with_capacity(num_terms);
        let mut coef_norm_sq: Vec<f64> = Vec::with_capacity(num_terms);
        let mut slot_var: Vec<u32> = Vec::new();
        let mut slot_coef: Vec<f64> = Vec::new();
        term_start.push(0);
        for p in self.potentials {
            for &(v, c) in &p.expr.terms {
                slot_var.push(v as u32);
                slot_coef.push(c);
            }
            term_start.push(slot_var.len() as u32);
            kind.push(TermKind::Potential {
                weight: p.weight,
                squared: p.squared,
            });
            constant.push(p.expr.constant);
            coef_norm_sq.push(p.expr.coef_norm_sq());
        }
        for c in self.constraints {
            for &(v, coef) in &c.expr.terms {
                slot_var.push(v as u32);
                slot_coef.push(coef);
            }
            term_start.push(slot_var.len() as u32);
            kind.push(TermKind::Constraint {
                equality: c.kind == ConstraintKind::EqZero,
            });
            constant.push(c.expr.constant);
            coef_norm_sq.push(c.expr.coef_norm_sq());
        }
        let total_copies = slot_var.len();

        let mut counts = vec![0u32; n];
        for &v in &slot_var {
            counts[v as usize] += 1;
        }

        // Contiguous variable shards balanced by copy count; boundaries are
        // a pure function of the problem and `shard_slots`.
        let target = config.shard_slots.max(1);
        let mut shards: Vec<Shard> = Vec::new();
        let mut var_shard = vec![0u32; n];
        {
            let mut start = 0usize;
            let mut acc = 0usize;
            for v in 0..n {
                acc += counts[v] as usize;
                var_shard[v] = shards.len() as u32;
                if acc >= target {
                    shards.push(Shard {
                        vars: start..v + 1,
                        slots: 0..0,
                    });
                    start = v + 1;
                    acc = 0;
                }
            }
            if start < n || shards.is_empty() {
                shards.push(Shard {
                    vars: start..n,
                    slots: 0..0,
                });
            }
        }

        // Shard-major slot order: bucket term-major slots by shard,
        // preserving ascending term order inside each bucket.
        let mut shard_len = vec![0usize; shards.len()];
        for &v in &slot_var {
            shard_len[var_shard[v as usize] as usize] += 1;
        }
        let mut cursor = Vec::with_capacity(shards.len());
        let mut offset = 0usize;
        for (shard, &len) in shards.iter_mut().zip(shard_len.iter()) {
            shard.slots = offset..offset + len;
            cursor.push(offset);
            offset += len;
        }
        let mut slot_upos = vec![0u32; total_copies];
        let mut shard_slot = vec![0u32; total_copies];
        let mut sm_var = vec![0u32; total_copies];
        for (slot, &v) in slot_var.iter().enumerate() {
            let s = var_shard[v as usize] as usize;
            let pos = cursor[s];
            cursor[s] += 1;
            slot_upos[slot] = pos as u32;
            shard_slot[pos] = slot as u32;
            sm_var[pos] = v;
        }

        // Seed z from the warm values, y from z, u from the warm duals.
        let z: Vec<AtomicU64> = (0..n)
            .map(|v| {
                let init = warm
                    .values
                    .and_then(|w| w.get(v).copied())
                    .map_or(config.initial_value, |x| x.clamp(0.0, 1.0));
                AtomicU64::new(init.to_bits())
            })
            .collect();
        let y: Vec<AtomicU64> = slot_var
            .iter()
            .map(|&v| AtomicU64::new(f_load(&z[v as usize]).to_bits()))
            .collect();
        let u: Vec<AtomicU64> = (0..total_copies).map(|_| AtomicU64::new(0)).collect();
        if let Some(duals) = warm.duals {
            let seed = |t: usize, d: &Vec<f64>| {
                let s0 = term_start[t] as usize;
                let s1 = term_start[t + 1] as usize;
                if d.len() == s1 - s0 && d.iter().all(|x| x.is_finite()) {
                    for (i, &val) in (s0..s1).zip(d.iter()) {
                        f_store(&u[slot_upos[i] as usize], val);
                    }
                }
            };
            for (t, d) in duals.potentials.iter().enumerate().take(num_potentials) {
                seed(t, d);
            }
            for (j, d) in duals.constraints.iter().enumerate() {
                if num_potentials + j < num_terms {
                    seed(num_potentials + j, d);
                }
            }
        }

        Workspace {
            num_potentials,
            num_terms,
            term_start,
            kind,
            constant,
            coef_norm_sq,
            slot_var,
            slot_coef,
            slot_upos,
            shard_slot,
            sm_var,
            shards,
            counts,
            total_copies,
            y,
            u,
            z,
        }
    }

    /// Single-threaded iteration loop (same per-shard routines, run in
    /// shard order — bit-identical to the parallel path by construction).
    fn run_serial(
        &self,
        config: &AdmmConfig,
        ws: &Workspace,
        partials: &[ShardPartials],
        deadline: Option<Instant>,
    ) -> LoopOutcome {
        let mut state = LoopState::new(config, ws, deadline);
        let mut scratch: Vec<f64> = Vec::new();
        while state.iterations < config.max_iterations {
            state.iterations += 1;
            let t0 = Instant::now();
            ws.local_phase(0..ws.num_terms, state.rho);
            let t1 = Instant::now();
            for (s, out) in partials.iter().enumerate() {
                ws.consensus_shard(s, &mut scratch, out);
            }
            state.local_time += t1 - t0;
            state.consensus_time += t1.elapsed();
            if state.check_and_adapt(config, ws, partials) {
                break;
            }
        }
        state.into_outcome()
    }

    /// Barrier-phased parallel loop: workers are spawned once and step
    /// through local/consensus phases; the coordinator merges the per-shard
    /// residual partials (in shard order) and decides convergence.
    fn run_parallel(
        &self,
        config: &AdmmConfig,
        ws: &Workspace,
        partials: &[ShardPartials],
        threads: usize,
        deadline: Option<Instant>,
    ) -> LoopOutcome {
        // Balance term chunks by slot count and shard chunks by shard size.
        let term_weights: Vec<usize> = (0..ws.num_terms)
            .map(|t| (ws.term_start[t + 1] - ws.term_start[t]) as usize + 1)
            .collect();
        let shard_weights: Vec<usize> = ws.shards.iter().map(|s| s.slots.len() + 1).collect();
        let term_chunks = balanced_ranges(&term_weights, threads);
        let shard_chunks = balanced_ranges(&shard_weights, threads);

        let barrier = Barrier::new(threads + 1);
        let stop = AtomicBool::new(false);
        let rho_bits = AtomicU64::new(config.rho.to_bits());

        // A panicking worker would strand everyone else on the (non-
        // poisoning) barrier forever; instead workers catch the panic, keep
        // honoring the barrier protocol as no-ops, and the coordinator
        // aborts the solve and re-raises once the scope has joined.
        let panicked = AtomicBool::new(false);

        let mut state = LoopState::new(config, ws, deadline);
        // Workers parent their spans under the coordinator's open solve
        // span explicitly — their threads have no ambient span stack.
        let solve_span = cms_obs::current_span();
        thread::scope(|scope| {
            for w in 0..threads {
                let terms = term_chunks[w].clone();
                let my_shards = shard_chunks[w].clone();
                let (barrier, stop, rho_bits, panicked) = (&barrier, &stop, &rho_bits, &panicked);
                scope.spawn(move || {
                    // Label the worker's trace track so the Perfetto
                    // export lays it out as a named thread.
                    cms_obs::set_thread_track(format!("admm-worker-{w}"));
                    let _span = cms_obs::span_with_parent(format!("solve/worker-{w}"), solve_span);
                    let mut scratch: Vec<f64> = Vec::new();
                    loop {
                        barrier.wait(); // A: iteration gate
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let rho = f64::from_bits(rho_bits.load(Ordering::Relaxed));
                        // The barrier waits sit OUTSIDE the catches so a
                        // panicking worker still performs exactly the same
                        // number of waits per iteration as everyone else.
                        let local = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            ws.local_phase(terms.clone(), rho);
                        }));
                        if local.is_err() {
                            panicked.store(true, Ordering::Relaxed);
                        }
                        barrier.wait(); // B: local phase done
                        let consensus =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                for s in my_shards.clone() {
                                    ws.consensus_shard(s, &mut scratch, &partials[s]);
                                }
                            }));
                        if consensus.is_err() {
                            panicked.store(true, Ordering::Relaxed);
                        }
                        barrier.wait(); // C: consensus phase done
                    }
                });
            }
            loop {
                if state.iterations >= config.max_iterations || state.converged {
                    stop.store(true, Ordering::Relaxed);
                    barrier.wait(); // release workers into the stop check
                    break;
                }
                state.iterations += 1;
                let t0 = Instant::now();
                barrier.wait(); // A
                barrier.wait(); // B: local phase complete
                let t1 = Instant::now();
                barrier.wait(); // C: consensus phase complete
                state.local_time += t1 - t0;
                state.consensus_time += t1.elapsed();
                // Workers are parked at A; the coordinator owns everything.
                if panicked.load(Ordering::Relaxed) || state.check_and_adapt(config, ws, partials) {
                    state.converged_or_capped = true;
                }
                rho_bits.store(state.rho.to_bits(), Ordering::Relaxed);
                if state.converged_or_capped {
                    stop.store(true, Ordering::Relaxed);
                    barrier.wait(); // release workers into the stop check
                    break;
                }
            }
        });
        assert!(
            !panicked.load(Ordering::Relaxed),
            "ADMM worker panicked during a parallel solve"
        );
        state.into_outcome()
    }
}

/// Mutable loop bookkeeping shared by the serial and parallel drivers.
struct LoopState {
    iterations: usize,
    converged: bool,
    converged_or_capped: bool,
    rho: f64,
    total_copies: f64,
    local_time: Duration,
    consensus_time: Duration,
    /// Why a watchdog stopped the loop, if one did.
    stop_health: Option<SolveHealth>,
    /// Best combined residual seen so far (stall watchdog).
    best_combined: f64,
    /// Iterations since the combined residual last improved.
    stalled_for: usize,
    /// Wall-clock deadline shared across restart attempts.
    deadline: Option<Instant>,
    /// Telemetry histogram of the combined residual, fetched once per
    /// solve attempt so the per-iteration cost is a bucket increment.
    /// `None` below [`cms_obs::ObsLevel::Stats`].
    residual_hist: Option<&'static cms_obs::Histogram>,
}

/// What a finished iteration loop reports back.
struct LoopOutcome {
    iterations: usize,
    health: SolveHealth,
    local_time: Duration,
    consensus_time: Duration,
}

impl LoopState {
    fn new(config: &AdmmConfig, ws: &Workspace, deadline: Option<Instant>) -> LoopState {
        LoopState {
            iterations: 0,
            converged: false,
            converged_or_capped: false,
            rho: config.rho,
            total_copies: ws.total_copies as f64,
            local_time: Duration::ZERO,
            consensus_time: Duration::ZERO,
            stop_health: None,
            best_combined: f64::INFINITY,
            stalled_for: 0,
            deadline,
            residual_hist: cms_obs::enabled(cms_obs::ObsLevel::Stats).then(|| {
                static RESIDUAL: cms_obs::LazyHistogram = cms_obs::LazyHistogram::new(
                    "solve.residual",
                    &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1000.0],
                );
                RESIDUAL.handle()
            }),
        }
    }

    /// Merge the per-shard residual partials (in shard order — the fixed,
    /// thread-count-independent reduction order), test convergence, and
    /// apply residual-balancing ρ adaptation. Returns true when the loop
    /// should stop.
    fn check_and_adapt(
        &mut self,
        config: &AdmmConfig,
        ws: &Workspace,
        partials: &[ShardPartials],
    ) -> bool {
        let mut primal_sq = 0.0f64;
        let mut y_norm_sq = 0.0f64;
        let mut z_norm_sq = 0.0f64;
        let mut dual_sq = 0.0f64;
        for p in partials {
            primal_sq += f_load(&p.primal_sq);
            y_norm_sq += f_load(&p.y_norm_sq);
            z_norm_sq += f_load(&p.z_norm_sq);
            dual_sq += f_load(&p.dual_sq);
        }
        // Divergence watchdog: any non-finite value in y/z/u contaminates
        // these four aggregates within one iteration (every slot feeds
        // primal_sq/y_norm_sq, every variable z_norm_sq, every dual the
        // update that produced it), so four is_finite checks are a
        // complete guard — and they run here, coordinator-only, over the
        // merged partials, so detection is bit-identical across threads.
        if !(primal_sq.is_finite()
            && y_norm_sq.is_finite()
            && z_norm_sq.is_finite()
            && dual_sq.is_finite())
        {
            self.stop_health = Some(SolveHealth::Diverged {
                at: self.iterations,
            });
            return true;
        }

        if let Some(hist) = &self.residual_hist {
            hist.record(primal_sq.sqrt() + self.rho * dual_sq.sqrt());
        }

        let m = self.total_copies;
        let eps_pri =
            config.eps_abs * m.sqrt() + config.eps_rel * y_norm_sq.sqrt().max(z_norm_sq.sqrt());
        let eps_dual =
            config.eps_abs * m.sqrt() + config.eps_rel * self.rho * dual_sq.sqrt().max(1.0);
        if primal_sq.sqrt() <= eps_pri && self.rho * dual_sq.sqrt() <= eps_dual {
            self.converged = true;
            return true;
        }

        // Stall watchdog: the combined residual must set a new best within
        // the window. (The fault harness can force a stall to exercise the
        // recovery path without constructing a genuinely stuck program.)
        if crate::fault::take(crate::fault::Fault::SolverStall) {
            self.stop_health = Some(SolveHealth::Stalled {
                at: self.iterations,
            });
            return true;
        }
        if config.stall_window > 0 {
            let combined = primal_sq.sqrt() + self.rho * dual_sq.sqrt();
            if combined < self.best_combined {
                self.best_combined = combined;
                self.stalled_for = 0;
            } else {
                self.stalled_for += 1;
                if self.stalled_for >= config.stall_window {
                    self.stop_health = Some(SolveHealth::Stalled {
                        at: self.iterations,
                    });
                    return true;
                }
            }
        }

        // Time budget: checked last so a converging final iteration still
        // reports convergence.
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.stop_health = Some(SolveHealth::TimedOut);
                return true;
            }
        }

        // Residual balancing (τ = 2, μ = 10). Scaled duals u = λ/ρ, so
        // changing ρ requires rescaling u to keep λ unchanged.
        if config.adaptive_rho && self.iterations.is_multiple_of(50) {
            let primal = primal_sq.sqrt();
            let dual = self.rho * dual_sq.sqrt();
            let factor = if primal > 10.0 * dual {
                2.0
            } else if dual > 10.0 * primal {
                0.5
            } else {
                1.0
            };
            if factor != 1.0 {
                self.rho *= factor;
                ws.rescale_duals(factor);
            }
        }
        false
    }

    fn into_outcome(self) -> LoopOutcome {
        let health = if self.converged {
            SolveHealth::Converged
        } else {
            self.stop_health.unwrap_or(SolveHealth::Capped)
        };
        LoopOutcome {
            iterations: self.iterations,
            health,
            local_time: self.local_time,
            consensus_time: self.consensus_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn lin(terms: &[(usize, f64)], constant: f64) -> LinExpr {
        let mut e = LinExpr::constant(constant);
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e.normalize();
        e
    }

    fn pot(terms: &[(usize, f64)], constant: f64, weight: f64) -> GroundPotential {
        GroundPotential {
            expr: lin(terms, constant),
            weight,
            squared: false,
            origin: String::new(),
        }
    }

    fn base_config() -> AdmmConfig {
        // Pin the env-sensitive knobs so unit expectations are stable even
        // when the suite runs under ADMM_THREADS / ADMM_PARALLEL_THRESHOLD.
        AdmmConfig {
            threads: 1,
            parallel_threshold: 512,
            ..AdmmConfig::default()
        }
    }

    fn solve(
        potentials: &[GroundPotential],
        constraints: &[GroundConstraint],
        n: usize,
    ) -> AdmmSolution {
        AdmmSolver::new(potentials, constraints, n).solve(&base_config())
    }

    #[test]
    fn single_downward_pressure_drives_to_zero() {
        // minimize max(0, y0): optimum y0 = 0.
        let p = vec![pot(&[(0, 1.0)], 0.0, 1.0)];
        let sol = solve(&p, &[], 1);
        assert!(sol.converged);
        assert!(sol.values[0] < 1e-3, "got {}", sol.values[0]);
    }

    #[test]
    fn single_upward_pressure_drives_to_one() {
        // minimize max(0, 1 − y0): optimum y0 = 1.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0)];
        let sol = solve(&p, &[], 1);
        assert!(sol.values[0] > 1.0 - 1e-3, "got {}", sol.values[0]);
    }

    #[test]
    fn weights_break_ties() {
        // w=1 pushes y up, w=3 pushes y down ⇒ y → 0.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0), pot(&[(0, 1.0)], 0.0, 3.0)];
        let sol = solve(&p, &[], 1);
        assert!(sol.values[0] < 0.05, "got {}", sol.values[0]);
        // Objective = max(0,1−0)·1 = 1 at the optimum.
        assert!(
            (sol.objective - 1.0).abs() < 0.05,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn equality_constraint_is_enforced() {
        // minimize max(0, 1−y0) s.t. y0 = 0.3.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0)];
        let c = vec![GroundConstraint {
            expr: lin(&[(0, 1.0)], -0.3),
            kind: ConstraintKind::EqZero,
            origin: String::new(),
        }];
        let sol = AdmmSolver::new(&p, &c, 1).solve(&base_config());
        assert!((sol.values[0] - 0.3).abs() < 1e-3, "got {}", sol.values[0]);
        assert!(sol.max_violation < 1e-3);
    }

    #[test]
    fn inequality_constraint_caps_value() {
        // maximize y0 (via hinge 1−y0) s.t. y0 ≤ 0.6.
        let p = vec![pot(&[(0, -1.0)], 1.0, 2.0)];
        let c = vec![GroundConstraint {
            expr: lin(&[(0, 1.0)], -0.6),
            kind: ConstraintKind::LeqZero,
            origin: String::new(),
        }];
        let sol = AdmmSolver::new(&p, &c, 1).solve(&base_config());
        assert!((sol.values[0] - 0.6).abs() < 1e-2, "got {}", sol.values[0]);
    }

    #[test]
    fn coupled_implication_chain() {
        // Potentials encode: push a up (w=1); a → b hard; b → c hard;
        // push c down (w=0.5). Expect a=b=c=1 since the up-weight beats the
        // 0.5 down-weight through the chain.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0), pot(&[(2, 1.0)], 0.0, 0.5)];
        let imp = |x: usize, y: usize| GroundConstraint {
            // x − y ≤ 0  (x implies y in the MAP LP sense x ≤ y)
            expr: lin(&[(x, 1.0), (y, -1.0)], 0.0),
            kind: ConstraintKind::LeqZero,
            origin: String::new(),
        };
        let c = vec![imp(0, 1), imp(1, 2)];
        let sol = AdmmSolver::new(&p, &c, 3).solve(&base_config());
        assert!(sol.values[0] > 0.95, "a = {}", sol.values[0]);
        assert!(sol.values[1] >= sol.values[0] - 1e-2);
        assert!(sol.values[2] >= sol.values[1] - 1e-2);
    }

    #[test]
    fn squared_hinge_balances_opposing_pressures() {
        // minimize max(0,1−y)² + max(0,y)² → optimum y = 0.5 by symmetry.
        let p = vec![
            GroundPotential {
                expr: lin(&[(0, -1.0)], 1.0),
                weight: 1.0,
                squared: true,
                origin: String::new(),
            },
            GroundPotential {
                expr: lin(&[(0, 1.0)], 0.0),
                weight: 1.0,
                squared: true,
                origin: String::new(),
            },
        ];
        let sol = solve(&p, &[], 1);
        assert!((sol.values[0] - 0.5).abs() < 1e-2, "got {}", sol.values[0]);
        assert!((sol.objective - 0.5).abs() < 1e-2);
    }

    #[test]
    fn linear_hinges_tie_breaks_inside_box() {
        // Equal opposing linear hinges: max(0,1−y)+max(0,y) = 1 for
        // y ∈ [0,1]. Just check the objective value is 1 and convergence.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0), pot(&[(0, 1.0)], 0.0, 1.0)];
        let sol = solve(&p, &[], 1);
        assert!((sol.objective - 1.0).abs() < 1e-3);
    }

    #[test]
    fn untouched_variables_keep_initial_value() {
        let p = vec![pot(&[(0, 1.0)], 0.0, 1.0)];
        let sol = solve(&p, &[], 3);
        assert!((sol.values[1] - 0.5).abs() < 1e-12);
        assert!((sol.values[2] - 0.5).abs() < 1e-12);
    }

    /// A moderately sized random-ish instance over `n` variables.
    fn random_instance(n: usize) -> Vec<GroundPotential> {
        let mut potentials = Vec::new();
        for i in 0..12 * n {
            let a = i % n;
            let b = (i * 7 + 3) % n;
            if a == b {
                continue;
            }
            potentials.push(pot(
                &[(a, 1.0), (b, -1.0)],
                ((i % 3) as f64 - 1.0) * 0.2,
                1.0 + (i % 4) as f64,
            ));
        }
        potentials
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let potentials = random_instance(50);
        let solver = AdmmSolver::new(&potentials, &[], 50);
        let cfg = AdmmConfig {
            shard_slots: 64, // force several shards
            parallel_threshold: 0,
            ..base_config()
        };
        let serial = solver.solve(&AdmmConfig {
            threads: 1,
            ..cfg.clone()
        });
        for threads in [2usize, 4, 7] {
            let parallel = solver.solve(&AdmmConfig {
                threads,
                ..cfg.clone()
            });
            assert_eq!(serial.iterations, parallel.iterations, "threads={threads}");
            assert_eq!(
                serial.objective.to_bits(),
                parallel.objective.to_bits(),
                "threads={threads}"
            );
            for (v, (a, b)) in serial.values.iter().zip(parallel.values.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} var {v}");
            }
        }
    }

    #[test]
    fn shard_size_only_changes_grouping_not_the_solution() {
        // Different shard sizes may regroup the residual reduction (and so
        // could, in principle, shift the stopping iteration by rounding),
        // but the fixed point is the same optimum.
        let potentials = random_instance(40);
        let solver = AdmmSolver::new(&potentials, &[], 40);
        let a = solver.solve(&AdmmConfig {
            shard_slots: 7,
            ..base_config()
        });
        let b = solver.solve(&AdmmConfig {
            shard_slots: 4096,
            ..base_config()
        });
        assert!(
            (a.objective - b.objective).abs() < 1e-3,
            "{} vs {}",
            a.objective,
            b.objective
        );
    }

    #[test]
    fn warm_dual_resume_converges_faster_than_value_only_warm() {
        let potentials = random_instance(60);
        let solver = AdmmSolver::new(&potentials, &[], 60);
        let cfg = base_config();
        let (cold, duals) = solver.solve_warm(&cfg, WarmStart::default());
        assert!(cold.converged);
        assert_eq!(duals.potential_duals().len(), potentials.len());
        // Resume from the solution: with values only, ADMM must re-learn
        // the duals; with values + duals it should stop (almost) at once.
        let value_only = solver.solve_from(&cfg, Some(&cold.values));
        let (resumed, _) = solver.solve_warm(
            &cfg,
            WarmStart {
                values: Some(&cold.values),
                duals: Some(&duals),
            },
        );
        assert!(resumed.converged);
        assert!(
            resumed.iterations <= value_only.iterations,
            "dual warm {} vs value-only warm {}",
            resumed.iterations,
            value_only.iterations
        );
        assert!(
            (resumed.objective - cold.objective).abs() < 0.1,
            "resumed {} vs cold {}",
            resumed.objective,
            cold.objective
        );
    }

    #[test]
    fn mismatched_dual_state_is_ignored() {
        let p = vec![pot(&[(0, 1.0)], 0.0, 1.0)];
        let solver = AdmmSolver::new(&p, &[], 1);
        // Wrong-length dual vector: must be skipped, not crash or corrupt.
        let bogus = DualState {
            potentials: vec![vec![1.0, 2.0, 3.0]],
            constraints: Vec::new(),
        };
        let (sol, _) = solver.solve_warm(
            &base_config(),
            WarmStart {
                values: None,
                duals: Some(&bogus),
            },
        );
        assert!(sol.converged);
        assert!(sol.values[0] < 1e-3);
    }

    #[test]
    fn adaptive_rho_reaches_same_optimum() {
        // A badly scaled problem: heavy weights vs default ρ.
        let p = vec![
            pot(&[(0, -1.0)], 1.0, 200.0),
            pot(&[(0, 1.0), (1, -1.0)], 0.0, 50.0),
            pot(&[(1, 1.0)], -0.4, 1.0),
        ];
        let solver = AdmmSolver::new(&p, &[], 2);
        let plain = solver.solve(&base_config());
        let adaptive = solver.solve(&AdmmConfig {
            adaptive_rho: true,
            ..base_config()
        });
        assert!(adaptive.converged);
        assert!(
            (plain.objective - adaptive.objective).abs() < 1e-2,
            "plain {} vs adaptive {}",
            plain.objective,
            adaptive.objective
        );
    }

    #[test]
    fn infeasible_constraints_report_violation() {
        // y0 ≤ 0.2 and y0 ≥ 0.8 cannot both hold; the solver must settle
        // on a compromise and *report* the violation instead of looping.
        let c = vec![
            GroundConstraint {
                expr: lin(&[(0, 1.0)], -0.2),
                kind: ConstraintKind::LeqZero,
                origin: String::new(),
            },
            GroundConstraint {
                expr: lin(&[(0, -1.0)], 0.8),
                kind: ConstraintKind::LeqZero,
                origin: String::new(),
            },
        ];
        let solver = AdmmSolver::new(&[], &c, 1);
        let sol = solver.solve(&AdmmConfig {
            max_iterations: 2_000,
            ..base_config()
        });
        assert!(
            sol.max_violation > 0.25,
            "violation must be visible: {}",
            sol.max_violation
        );
        // The compromise sits between the two infeasible caps.
        assert!(
            sol.values[0] > 0.2 && sol.values[0] < 0.8,
            "y0 = {}",
            sol.values[0]
        );
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let sol = solve(&[], &[], 4);
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.values, vec![0.5; 4]);
    }

    #[test]
    fn phase_times_are_recorded() {
        let potentials = random_instance(30);
        let solver = AdmmSolver::new(&potentials, &[], 30);
        let sol = solver.solve(&base_config());
        assert!(sol.iterations > 0);
        assert!(sol.local_time > Duration::ZERO);
        assert!(sol.consensus_time > Duration::ZERO);
    }

    /// The infeasible two-cap program: residuals plateau, never converge.
    fn infeasible_constraints() -> Vec<GroundConstraint> {
        vec![
            GroundConstraint {
                expr: lin(&[(0, 1.0)], -0.2),
                kind: ConstraintKind::LeqZero,
                origin: String::new(),
            },
            GroundConstraint {
                expr: lin(&[(0, -1.0)], 0.8),
                kind: ConstraintKind::LeqZero,
                origin: String::new(),
            },
        ]
    }

    #[test]
    fn stall_watchdog_fires_on_infeasible_program() {
        let c = infeasible_constraints();
        let solver = AdmmSolver::new(&[], &c, 1);
        let sol = solver.solve(&AdmmConfig {
            stall_window: 25,
            max_iterations: 10_000,
            ..base_config()
        });
        match sol.health {
            SolveHealth::Stalled { at } => {
                assert_eq!(sol.iterations, at);
                assert!(at < 10_000, "watchdog must beat the cap: {at}");
            }
            other => panic!("expected a stall, got {other:?}"),
        }
        assert!(!sol.converged);
        assert_eq!(sol.restarts, 0);
    }

    #[test]
    fn converging_solves_are_untouched_by_the_stall_window() {
        let potentials = random_instance(40);
        let solver = AdmmSolver::new(&potentials, &[], 40);
        let plain = solver.solve(&base_config());
        let watched = solver.solve(&AdmmConfig {
            stall_window: 50,
            max_restarts: 2,
            ..base_config()
        });
        assert!(plain.converged && watched.converged);
        assert_eq!(plain.iterations, watched.iterations);
        assert_eq!(plain.objective.to_bits(), watched.objective.to_bits());
        assert_eq!(watched.restarts, 0);
    }

    #[test]
    fn zero_time_budget_times_out_immediately() {
        let potentials = random_instance(40);
        let solver = AdmmSolver::new(&potentials, &[], 40);
        let sol = solver.solve(&AdmmConfig {
            time_budget: Some(Duration::ZERO),
            // Restarts must not resurrect a timed-out solve.
            max_restarts: 3,
            ..base_config()
        });
        assert_eq!(sol.health, SolveHealth::TimedOut);
        assert_eq!(sol.iterations, 1);
        assert_eq!(sol.restarts, 0);
        assert!(!sol.converged);
    }

    #[test]
    fn nan_input_is_reported_as_divergence_not_garbage() {
        // A NaN coefficient contaminates y at iteration 1 (the prox factor
        // degrades to 0.0 but `c − 0.0·NaN` is still NaN); without the
        // guard the solve would run to the cap and report garbage.
        let p = vec![pot(&[(0, f64::NAN)], 0.0, 1.0)];
        let solver = AdmmSolver::new(&p, &[], 1);
        let sol = solver.solve(&base_config());
        assert_eq!(sol.health, SolveHealth::Diverged { at: 1 });
        assert_eq!(sol.iterations, 1);
        assert!(!sol.converged);
    }

    #[test]
    fn restart_recovers_from_poisoned_warm_values() {
        let potentials = random_instance(30);
        let solver = AdmmSolver::new(&potentials, &[], 30);
        let mut seed = vec![0.4; 30];
        seed[3] = f64::NAN; // clamp(0,1) keeps NaN, so z is poisoned
        let poisoned = solver.solve_from(&base_config(), Some(&seed));
        assert_eq!(poisoned.health, SolveHealth::Diverged { at: 1 });

        let recovered = solver.solve_from(
            &AdmmConfig {
                max_restarts: 2,
                ..base_config()
            },
            Some(&seed),
        );
        assert_eq!(recovered.health, SolveHealth::Converged);
        assert_eq!(recovered.restarts, 1);
        let clean = solver.solve(&base_config());
        // The restart runs at 2ρ, so it lands on a slightly different
        // eps-accurate point than the clean solve — compare loosely.
        assert!(
            (recovered.objective - clean.objective).abs() < 5e-2,
            "recovered {} vs clean {}",
            recovered.objective,
            clean.objective
        );
    }

    #[test]
    fn stall_detection_is_bit_identical_across_thread_counts() {
        let c = infeasible_constraints();
        let solver = AdmmSolver::new(&[], &c, 1);
        let cfg = AdmmConfig {
            stall_window: 25,
            max_iterations: 10_000,
            shard_slots: 64,
            parallel_threshold: 0,
            ..base_config()
        };
        let serial = solver.solve(&AdmmConfig {
            threads: 1,
            ..cfg.clone()
        });
        assert!(matches!(serial.health, SolveHealth::Stalled { .. }));
        for threads in [2usize, 4] {
            let parallel = solver.solve(&AdmmConfig {
                threads,
                ..cfg.clone()
            });
            assert_eq!(serial.health, parallel.health, "threads={threads}");
            assert_eq!(serial.iterations, parallel.iterations, "threads={threads}");
            for (a, b) in serial.values.iter().zip(parallel.values.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn injected_stall_is_one_shot() {
        let potentials = random_instance(20);
        let solver = AdmmSolver::new(&potentials, &[], 20);
        crate::fault::arm(crate::fault::Fault::SolverStall);
        let stalled = solver.solve(&base_config());
        assert_eq!(stalled.health, SolveHealth::Stalled { at: 1 });
        assert_eq!(crate::fault::armed(), None);
        // The injection was consumed: the next solve is clean.
        let clean = solver.solve(&base_config());
        assert!(clean.converged);
    }

    #[test]
    fn injected_stall_triggers_the_restart_policy() {
        let potentials = random_instance(20);
        let solver = AdmmSolver::new(&potentials, &[], 20);
        crate::fault::arm(crate::fault::Fault::SolverStall);
        let sol = solver.solve(&AdmmConfig {
            max_restarts: 2,
            ..base_config()
        });
        // One-shot injection: the restarted attempt runs clean.
        assert_eq!(sol.restarts, 1);
        assert!(sol.converged, "health: {:?}", sol.health);
    }
}

//! Consensus-ADMM MAP inference for hinge-loss MRFs.
//!
//! This is the solver of Bach et al., "Hinge-Loss Markov Random Fields and
//! Probabilistic Soft Logic" (JMLR 2017): every ground potential and hard
//! constraint holds a *local copy* of the variables it touches; the local
//! subproblems have closed-form solutions (hinge prox operators and
//! hyperplane projections), and a consensus step averages copies and clips
//! to the `[0,1]` box.
//!
//! For each term with inner expression `ℓ(y) = b + aᵀy` and center
//! `c = z − u` (scaled dual form):
//!
//! * linear hinge `w·max(0,ℓ)`: if `ℓ(c) ≤ 0` take `y = c`; else try
//!   `y = c − (w/ρ)a`; if `ℓ(y) < 0` project `c` onto the hyperplane
//!   `ℓ = 0`.
//! * squared hinge `w·max(0,ℓ)²`: if `ℓ(c) ≤ 0` take `y = c`; else
//!   `y = c − (2w·ℓ(c) / (ρ + 2w‖a‖²))·a`.
//! * constraint `ℓ ≤ 0`: project onto the half-space; `ℓ = 0`: project
//!   onto the hyperplane.

use crate::hinge::{ConstraintKind, GroundConstraint, GroundPotential};
use std::thread;

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct AdmmConfig {
    /// Augmented-Lagrangian step size ρ.
    pub rho: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Absolute tolerance (scaled by problem size).
    pub eps_abs: f64,
    /// Relative tolerance.
    pub eps_rel: f64,
    /// Number of worker threads for the local step (1 = serial).
    pub threads: usize,
    /// Initial value for consensus variables.
    pub initial_value: f64,
    /// Residual-balancing ρ adaptation (Boyd et al. §3.4.1): when one
    /// residual dominates the other by more than 10×, scale ρ by 2 (and
    /// rescale the duals). Helps badly scaled programs; off by default to
    /// keep runs exactly reproducible against recorded numbers.
    pub adaptive_rho: bool,
}

impl Default for AdmmConfig {
    fn default() -> AdmmConfig {
        AdmmConfig {
            rho: 1.0,
            max_iterations: 25_000,
            eps_abs: 1e-6,
            eps_rel: 1e-4,
            threads: 1,
            initial_value: 0.5,
            adaptive_rho: false,
        }
    }
}

/// What one local term optimizes.
#[derive(Clone, Debug)]
enum TermKind {
    Potential { weight: f64, squared: bool },
    Constraint { equality: bool },
}

/// A local term: variables, coefficients, constant, dual state.
#[derive(Clone, Debug)]
struct LocalTerm {
    vars: Vec<usize>,
    coefs: Vec<f64>,
    constant: f64,
    coef_norm_sq: f64,
    kind: TermKind,
    /// Local copies y and scaled duals u, aligned with `vars`.
    y: Vec<f64>,
    u: Vec<f64>,
}

/// Result of a solve.
#[derive(Clone, Debug)]
pub struct AdmmSolution {
    /// Consensus values per variable, in `[0,1]`.
    pub values: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// True iff both residuals dropped below tolerance before the cap.
    pub converged: bool,
    /// Σ weighted potential values at the solution (excluding any constant
    /// loss folded away during grounding).
    pub objective: f64,
    /// Largest hard-constraint violation at the solution.
    pub max_violation: f64,
}

/// MAP solver over ground potentials and constraints.
pub struct AdmmSolver<'a> {
    potentials: &'a [GroundPotential],
    constraints: &'a [GroundConstraint],
    num_vars: usize,
}

impl<'a> AdmmSolver<'a> {
    /// Create a solver for the given ground program pieces.
    pub fn new(
        potentials: &'a [GroundPotential],
        constraints: &'a [GroundConstraint],
        num_vars: usize,
    ) -> AdmmSolver<'a> {
        AdmmSolver {
            potentials,
            constraints,
            num_vars,
        }
    }

    /// Run ADMM to convergence (or the iteration cap).
    pub fn solve(&self, config: &AdmmConfig) -> AdmmSolution {
        self.solve_from(config, None)
    }

    /// Run ADMM, optionally **warm-starting** the consensus variables from
    /// `warm` (values are clamped to `[0,1]`; variables beyond its length
    /// start at `config.initial_value`). Local copies start at the warm
    /// consensus and scaled duals at zero, so a solve seeded with the
    /// previous solution of a slightly perturbed program converges in a
    /// fraction of the cold iteration count.
    pub fn solve_from(&self, config: &AdmmConfig, warm: Option<&[f64]>) -> AdmmSolution {
        let n = self.num_vars;
        let mut z: Vec<f64> = (0..n)
            .map(|v| {
                warm.and_then(|w| w.get(v).copied())
                    .map_or(config.initial_value, |x| x.clamp(0.0, 1.0))
            })
            .collect();

        let mut terms: Vec<LocalTerm> =
            Vec::with_capacity(self.potentials.len() + self.constraints.len());
        for p in self.potentials {
            terms.push(LocalTerm {
                vars: p.expr.terms.iter().map(|&(v, _)| v).collect(),
                coefs: p.expr.terms.iter().map(|&(_, c)| c).collect(),
                constant: p.expr.constant,
                coef_norm_sq: p.expr.coef_norm_sq(),
                kind: TermKind::Potential {
                    weight: p.weight,
                    squared: p.squared,
                },
                y: vec![0.0; p.expr.terms.len()],
                u: vec![0.0; p.expr.terms.len()],
            });
        }
        for c in self.constraints {
            terms.push(LocalTerm {
                vars: c.expr.terms.iter().map(|&(v, _)| v).collect(),
                coefs: c.expr.terms.iter().map(|&(_, c)| c).collect(),
                constant: c.expr.constant,
                coef_norm_sq: c.expr.coef_norm_sq(),
                kind: TermKind::Constraint {
                    equality: c.kind == ConstraintKind::EqZero,
                },
                y: vec![0.0; c.expr.terms.len()],
                u: vec![0.0; c.expr.terms.len()],
            });
        }
        for t in &mut terms {
            for (i, &v) in t.vars.iter().enumerate() {
                t.y[i] = z[v];
            }
        }
        // Copies per variable (for averaging). Variables in no term keep
        // their initial value.
        let mut counts = vec![0usize; n];
        for t in &terms {
            for &v in &t.vars {
                counts[v] += 1;
            }
        }
        let total_copies: usize = counts.iter().sum();
        if total_copies == 0 {
            let objective = self.objective(&z);
            return AdmmSolution {
                values: z,
                iterations: 0,
                converged: true,
                objective,
                max_violation: self.max_violation_of(&[]),
            };
        }

        let mut rho = config.rho;
        let mut iterations = 0;
        let mut converged = false;
        let threads = config.threads.max(1);

        while iterations < config.max_iterations {
            iterations += 1;

            // --- local step: minimize each term's augmented objective ---
            if threads == 1 || terms.len() < 512 {
                for t in &mut terms {
                    local_step(t, &z, rho);
                }
            } else {
                parallel_local_step(&mut terms, &z, rho, threads);
            }

            // --- consensus step ---
            let z_old = std::mem::take(&mut z);
            let mut sums = vec![0.0f64; n];
            for t in &terms {
                for (i, &v) in t.vars.iter().enumerate() {
                    sums[v] += t.y[i] + t.u[i];
                }
            }
            z = (0..n)
                .map(|v| {
                    if counts[v] == 0 {
                        z_old[v]
                    } else {
                        (sums[v] / counts[v] as f64).clamp(0.0, 1.0)
                    }
                })
                .collect();

            // --- dual step + residuals ---
            let mut primal_sq = 0.0f64;
            let mut y_norm_sq = 0.0f64;
            let mut z_norm_sq = 0.0f64;
            for t in &mut terms {
                for (i, &v) in t.vars.iter().enumerate() {
                    let diff = t.y[i] - z[v];
                    t.u[i] += diff;
                    primal_sq += diff * diff;
                    y_norm_sq += t.y[i] * t.y[i];
                    z_norm_sq += z[v] * z[v];
                }
            }
            let mut dual_sq = 0.0f64;
            for v in 0..n {
                let d = z[v] - z_old[v];
                dual_sq += counts[v] as f64 * d * d;
            }
            let m = total_copies as f64;
            let eps_pri =
                config.eps_abs * m.sqrt() + config.eps_rel * y_norm_sq.sqrt().max(z_norm_sq.sqrt());
            let eps_dual =
                config.eps_abs * m.sqrt() + config.eps_rel * rho * dual_sq.sqrt().max(1.0);
            if primal_sq.sqrt() <= eps_pri && rho * dual_sq.sqrt() <= eps_dual {
                converged = true;
                break;
            }

            // Residual balancing (τ = 2, μ = 10). Scaled duals u = λ/ρ, so
            // changing ρ requires rescaling u to keep λ unchanged.
            if config.adaptive_rho && iterations % 50 == 0 {
                let primal = primal_sq.sqrt();
                let dual = rho * dual_sq.sqrt();
                let factor = if primal > 10.0 * dual {
                    2.0
                } else if dual > 10.0 * primal {
                    0.5
                } else {
                    1.0
                };
                if factor != 1.0 {
                    rho *= factor;
                    for t in &mut terms {
                        for u in &mut t.u {
                            *u /= factor;
                        }
                    }
                }
            }
        }

        let objective = self.objective(&z);
        let max_violation = self
            .constraints
            .iter()
            .map(|c| c.violation(&z))
            .fold(0.0, f64::max);
        AdmmSolution {
            values: z,
            iterations,
            converged,
            objective,
            max_violation,
        }
    }

    /// Σ weighted potential values under `y`.
    pub fn objective(&self, y: &[f64]) -> f64 {
        self.potentials.iter().map(|p| p.value(y)).sum()
    }

    fn max_violation_of(&self, y: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.violation(y))
            .fold(0.0, f64::max)
    }
}

/// Closed-form local minimization for one term.
fn local_step(t: &mut LocalTerm, z: &[f64], rho: f64) {
    // Center c = z − u.
    for (i, &v) in t.vars.iter().enumerate() {
        t.y[i] = z[v] - t.u[i];
    }
    let ell_at = |y: &[f64], t: &LocalTerm| -> f64 {
        t.constant
            + t.coefs
                .iter()
                .zip(y.iter())
                .map(|(c, v)| c * v)
                .sum::<f64>()
    };
    let s = ell_at(&t.y, t);
    match t.kind {
        TermKind::Constraint { equality } => {
            if equality || s > 0.0 {
                project_hyperplane(t, s);
            }
        }
        TermKind::Potential { weight, squared } => {
            if s <= 0.0 {
                return; // hinge inactive at the center
            }
            if squared {
                let step = 2.0 * weight * s / (rho + 2.0 * weight * t.coef_norm_sq);
                for (y, c) in t.y.iter_mut().zip(t.coefs.iter()) {
                    *y -= step * c;
                }
            } else {
                // Try the linear-region minimizer.
                let s_after = s - (weight / rho) * t.coef_norm_sq;
                if s_after >= 0.0 {
                    let step = weight / rho;
                    for (y, c) in t.y.iter_mut().zip(t.coefs.iter()) {
                        *y -= step * c;
                    }
                } else {
                    // Kink is optimal: project onto ℓ = 0.
                    project_hyperplane(t, s);
                }
            }
        }
    }
}

/// Project the current `y` (holding the center) onto `ℓ(y) = 0`.
fn project_hyperplane(t: &mut LocalTerm, s: f64) {
    if t.coef_norm_sq == 0.0 {
        return; // constant expression; nothing to project
    }
    let step = s / t.coef_norm_sq;
    for (y, c) in t.y.iter_mut().zip(t.coefs.iter()) {
        *y -= step * c;
    }
}

/// Chunked parallel local step using `std::thread::scope` (panics in a
/// worker propagate when the scope joins).
fn parallel_local_step(terms: &mut [LocalTerm], z: &[f64], rho: f64, threads: usize) {
    let chunk = terms.len().div_ceil(threads);
    thread::scope(|scope| {
        for slice in terms.chunks_mut(chunk) {
            scope.spawn(move || {
                for t in slice {
                    local_step(t, z, rho);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn lin(terms: &[(usize, f64)], constant: f64) -> LinExpr {
        let mut e = LinExpr::constant(constant);
        for &(v, c) in terms {
            e.add_term(v, c);
        }
        e.normalize();
        e
    }

    fn pot(terms: &[(usize, f64)], constant: f64, weight: f64) -> GroundPotential {
        GroundPotential {
            expr: lin(terms, constant),
            weight,
            squared: false,
            origin: String::new(),
        }
    }

    fn solve(
        potentials: &[GroundPotential],
        constraints: &[GroundConstraint],
        n: usize,
    ) -> AdmmSolution {
        AdmmSolver::new(potentials, constraints, n).solve(&AdmmConfig::default())
    }

    #[test]
    fn single_downward_pressure_drives_to_zero() {
        // minimize max(0, y0): optimum y0 = 0.
        let p = vec![pot(&[(0, 1.0)], 0.0, 1.0)];
        let sol = solve(&p, &[], 1);
        assert!(sol.converged);
        assert!(sol.values[0] < 1e-3, "got {}", sol.values[0]);
    }

    #[test]
    fn single_upward_pressure_drives_to_one() {
        // minimize max(0, 1 − y0): optimum y0 = 1.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0)];
        let sol = solve(&p, &[], 1);
        assert!(sol.values[0] > 1.0 - 1e-3, "got {}", sol.values[0]);
    }

    #[test]
    fn weights_break_ties() {
        // w=1 pushes y up, w=3 pushes y down ⇒ y → 0.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0), pot(&[(0, 1.0)], 0.0, 3.0)];
        let sol = solve(&p, &[], 1);
        assert!(sol.values[0] < 0.05, "got {}", sol.values[0]);
        // Objective = max(0,1−0)·1 = 1 at the optimum.
        assert!(
            (sol.objective - 1.0).abs() < 0.05,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn equality_constraint_is_enforced() {
        // minimize max(0, 1−y0) s.t. y0 = 0.3.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0)];
        let c = vec![GroundConstraint {
            expr: lin(&[(0, 1.0)], -0.3),
            kind: ConstraintKind::EqZero,
            origin: String::new(),
        }];
        let sol = solve(&p, &c, 1);
        assert!((sol.values[0] - 0.3).abs() < 1e-3, "got {}", sol.values[0]);
        assert!(sol.max_violation < 1e-3);
    }

    #[test]
    fn inequality_constraint_caps_value() {
        // maximize y0 (via hinge 1−y0) s.t. y0 ≤ 0.6.
        let p = vec![pot(&[(0, -1.0)], 1.0, 2.0)];
        let c = vec![GroundConstraint {
            expr: lin(&[(0, 1.0)], -0.6),
            kind: ConstraintKind::LeqZero,
            origin: String::new(),
        }];
        let sol = solve(&p, &c, 1);
        assert!((sol.values[0] - 0.6).abs() < 1e-2, "got {}", sol.values[0]);
    }

    #[test]
    fn coupled_implication_chain() {
        // Potentials encode: push a up (w=1); a → b hard; b → c hard;
        // push c down (w=0.5). Expect a=b=c=1 since the up-weight beats the
        // 0.5 down-weight through the chain.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0), pot(&[(2, 1.0)], 0.0, 0.5)];
        let imp = |x: usize, y: usize| GroundConstraint {
            // x − y ≤ 0  (x implies y in the MAP LP sense x ≤ y)
            expr: lin(&[(x, 1.0), (y, -1.0)], 0.0),
            kind: ConstraintKind::LeqZero,
            origin: String::new(),
        };
        let c = vec![imp(0, 1), imp(1, 2)];
        let sol = solve(&p, &c, 3);
        assert!(sol.values[0] > 0.95, "a = {}", sol.values[0]);
        assert!(sol.values[1] >= sol.values[0] - 1e-2);
        assert!(sol.values[2] >= sol.values[1] - 1e-2);
    }

    #[test]
    fn squared_hinge_balances_opposing_pressures() {
        // minimize max(0,1−y)² + max(0,y)² → optimum y = 0.5 by symmetry.
        let p = vec![
            GroundPotential {
                expr: lin(&[(0, -1.0)], 1.0),
                weight: 1.0,
                squared: true,
                origin: String::new(),
            },
            GroundPotential {
                expr: lin(&[(0, 1.0)], 0.0),
                weight: 1.0,
                squared: true,
                origin: String::new(),
            },
        ];
        let sol = solve(&p, &[], 1);
        assert!((sol.values[0] - 0.5).abs() < 1e-2, "got {}", sol.values[0]);
        assert!((sol.objective - 0.5).abs() < 1e-2);
    }

    #[test]
    fn linear_hinges_tie_breaks_inside_box() {
        // Equal opposing linear hinges: any y is optimal (objective 1 −
        // y + y... actually max(0,1−y)+max(0,y) = 1 for y ∈ [0,1]).
        // Just check the objective value is 1 and solver converges.
        let p = vec![pot(&[(0, -1.0)], 1.0, 1.0), pot(&[(0, 1.0)], 0.0, 1.0)];
        let sol = solve(&p, &[], 1);
        assert!((sol.objective - 1.0).abs() < 1e-3);
    }

    #[test]
    fn untouched_variables_keep_initial_value() {
        let p = vec![pot(&[(0, 1.0)], 0.0, 1.0)];
        let sol = solve(&p, &[], 3);
        assert!((sol.values[1] - 0.5).abs() < 1e-12);
        assert!((sol.values[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        // A moderately sized random-ish instance; both thread counts must
        // agree on the objective (same algorithm, same arithmetic, chunked).
        let mut potentials = Vec::new();
        for i in 0..600usize {
            let a = i % 50;
            let b = (i * 7 + 3) % 50;
            if a == b {
                continue;
            }
            potentials.push(pot(
                &[(a, 1.0), (b, -1.0)],
                ((i % 3) as f64 - 1.0) * 0.2,
                1.0 + (i % 4) as f64,
            ));
        }
        let solver = AdmmSolver::new(&potentials, &[], 50);
        let serial = solver.solve(&AdmmConfig {
            threads: 1,
            ..AdmmConfig::default()
        });
        let parallel = solver.solve(&AdmmConfig {
            threads: 4,
            ..AdmmConfig::default()
        });
        assert!(
            (serial.objective - parallel.objective).abs() < 1e-3,
            "serial {} vs parallel {}",
            serial.objective,
            parallel.objective
        );
    }

    #[test]
    fn adaptive_rho_reaches_same_optimum() {
        // A badly scaled problem: heavy weights vs default ρ.
        let p = vec![
            pot(&[(0, -1.0)], 1.0, 200.0),
            pot(&[(0, 1.0), (1, -1.0)], 0.0, 50.0),
            pot(&[(1, 1.0)], -0.4, 1.0),
        ];
        let solver = AdmmSolver::new(&p, &[], 2);
        let plain = solver.solve(&AdmmConfig::default());
        let adaptive = solver.solve(&AdmmConfig {
            adaptive_rho: true,
            ..AdmmConfig::default()
        });
        assert!(adaptive.converged);
        assert!(
            (plain.objective - adaptive.objective).abs() < 1e-2,
            "plain {} vs adaptive {}",
            plain.objective,
            adaptive.objective
        );
    }

    #[test]
    fn infeasible_constraints_report_violation() {
        // y0 ≤ 0.2 and y0 ≥ 0.8 cannot both hold; the solver must settle
        // on a compromise and *report* the violation instead of looping.
        let c = vec![
            GroundConstraint {
                expr: lin(&[(0, 1.0)], -0.2),
                kind: ConstraintKind::LeqZero,
                origin: String::new(),
            },
            GroundConstraint {
                expr: lin(&[(0, -1.0)], 0.8),
                kind: ConstraintKind::LeqZero,
                origin: String::new(),
            },
        ];
        let solver = AdmmSolver::new(&[], &c, 1);
        let sol = solver.solve(&AdmmConfig {
            max_iterations: 2_000,
            ..AdmmConfig::default()
        });
        assert!(
            sol.max_violation > 0.25,
            "violation must be visible: {}",
            sol.max_violation
        );
        // The compromise sits between the two infeasible caps.
        assert!(
            sol.values[0] > 0.2 && sol.values[0] < 0.8,
            "y0 = {}",
            sol.values[0]
        );
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let sol = solve(&[], &[], 4);
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.values, vec![0.5; 4]);
    }
}

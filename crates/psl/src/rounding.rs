//! Rounding relaxed MAP states to discrete decisions.
//!
//! MAP inference in an HL-MRF is a *relaxation* of the discrete selection
//! problem: the optimum may be fractional. The standard recipe (and the
//! paper's) is to round the soft truth values of the decision predicate and
//! evaluate candidates under the true discrete objective. This module
//! provides the generic pieces; the selector in `cms-select` supplies the
//! discrete objective.

/// All distinct thresholds worth trying for a value vector: midpoints
/// between consecutive distinct values, plus 0 and 1 guards. Thresholding a
/// vector at any other point yields the same discrete set as one of these.
pub fn candidate_thresholds(values: &[f64]) -> Vec<f64> {
    let mut distinct: Vec<f64> = values.to_vec();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("NaN truth value"));
    distinct.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let mut thresholds = vec![0.0];
    for w in distinct.windows(2) {
        thresholds.push((w[0] + w[1]) / 2.0);
    }
    // A threshold above the maximum selects nothing.
    thresholds.push(1.0 + 1e-9);
    thresholds
}

/// Indices whose value is ≥ `threshold` (the rounded "selected" set).
pub fn threshold_select(values: &[f64], threshold: f64) -> Vec<usize> {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v >= threshold)
        .map(|(i, _)| i)
        .collect()
}

/// Exhaustive threshold rounding: evaluate every candidate threshold under
/// a discrete objective (smaller is better) and return the best selection.
pub fn best_threshold_rounding<F>(values: &[f64], mut objective: F) -> (Vec<usize>, f64)
where
    F: FnMut(&[usize]) -> f64,
{
    let mut best: Option<(Vec<usize>, f64)> = None;
    for threshold in candidate_thresholds(values) {
        let selection = threshold_select(values, threshold);
        let score = objective(&selection);
        if best.as_ref().is_none_or(|(_, s)| score < *s) {
            best = Some((selection, score));
        }
    }
    best.expect("at least one threshold is always generated")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_cover_all_distinct_cuts() {
        let values = [0.1, 0.9, 0.5, 0.9];
        let ts = candidate_thresholds(&values);
        // Cuts: everything, {0.5,0.9s}, {0.9s}, nothing.
        let selections: Vec<Vec<usize>> =
            ts.iter().map(|&t| threshold_select(&values, t)).collect();
        assert!(selections.contains(&vec![0, 1, 2, 3]));
        assert!(selections.contains(&vec![1, 2, 3]));
        assert!(selections.contains(&vec![1, 3]));
        assert!(selections.contains(&vec![]));
    }

    #[test]
    fn best_rounding_minimizes_objective() {
        let values = [0.2, 0.8, 0.6];
        // Objective: want exactly indices {1, 2} selected.
        let (sel, score) = best_threshold_rounding(&values, |s| {
            let want = [1usize, 2usize];
            let missing = want.iter().filter(|i| !s.contains(i)).count();
            let extra = s.iter().filter(|i| !want.contains(i)).count();
            (missing + extra) as f64
        });
        assert_eq!(sel, vec![1, 2]);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn empty_values_round_to_empty() {
        let (sel, _) = best_threshold_rounding(&[], |s| s.len() as f64);
        assert!(sel.is_empty());
    }

    #[test]
    fn ties_handled() {
        let values = [0.5, 0.5];
        let ts = candidate_thresholds(&values);
        let sels: Vec<Vec<usize>> = ts.iter().map(|&t| threshold_select(&values, t)).collect();
        assert!(sels.contains(&vec![0, 1]));
        assert!(sels.contains(&vec![]));
    }
}

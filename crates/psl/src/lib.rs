//! `cms-psl` — a from-scratch probabilistic soft logic (PSL) engine.
//!
//! PSL programs define hinge-loss Markov random fields (HL-MRFs): weighted
//! logical rules compile, per grounding, into hinge-loss potentials
//! `w · max(0, ℓ(y))^p` over `[0,1]`-valued ground-atom truths, and hard
//! rules into linear constraints. MAP inference is exact convex
//! minimization, solved here by consensus ADMM with closed-form local steps
//! (Bach et al., JMLR 2017).
//!
//! The paper's collective mapping-selection model is expressed on top of
//! this crate by `cms-select`; nothing in here is specific to schema
//! mapping. No PSL or Markov-logic crate exists in the ecosystem, so this
//! engine is implemented from scratch (see DESIGN.md §3).
//!
//! ```
//! use cms_psl::{Vocabulary, Program, GroundAtom, RuleBuilder, rvar, AdmmConfig};
//!
//! let mut vocab = Vocabulary::new();
//! let friend = vocab.closed("friend", 2);
//! let smokes = vocab.open("smokes", 1);
//! let mut program = Program::new(vocab);
//! program.db.observe(GroundAtom::from_strs(friend, &["a", "b"]), 1.0);
//! program.db.target(GroundAtom::from_strs(smokes, &["a"]));
//! program.db.target(GroundAtom::from_strs(smokes, &["b"]));
//! // friends smoke together (softly):
//! program.add_rule(
//!     RuleBuilder::new("peer")
//!         .body(friend, vec![rvar("X"), rvar("Y")])
//!         .body(smokes, vec![rvar("X")])
//!         .head(smokes, vec![rvar("Y")])
//!         .weight(1.0)
//!         .build(),
//! );
//! let ground = program.ground().unwrap();
//! let solution = ground.solve(&AdmmConfig::default());
//! assert!(solution.admm.converged);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admm;
pub mod arith;
pub mod atom;
pub mod database;
pub mod delta;
pub mod fault;
pub mod grounding;
pub mod hinge;
pub mod linear;
pub mod plan;
pub mod predicate;
pub mod program;
pub mod rounding;
pub mod rule;

pub use admm::{AdmmConfig, AdmmSolution, AdmmSolver, DualState, SolveHealth, WarmStart};
pub use arith::{
    ground_arith_rule, ground_arith_rule_naive, ArithError, ArithRule, ArithRuleBuilder, ArithTerm,
    Comparison,
};
pub use atom::GroundAtom;
pub use database::{Database, Resolved};
pub use delta::{DbDelta, DeltaEntry, DeltaKind, DependencyMap, RegroundError};
pub use fault::Fault;
pub use grounding::{
    ground_rule, reference::ground_rule_naive, GroundSink, GroundStats, GroundingError, VarRegistry,
};
pub use hinge::{ConstraintKind, GroundConstraint, GroundPotential};
pub use linear::LinExpr;
pub use plan::JoinPlan;
pub use predicate::{PredId, Predicate, Vocabulary};
pub use program::{AtomLin, GroundProgram, MapSolution, Program};
pub use rounding::{best_threshold_rounding, candidate_thresholds, threshold_select};
pub use rule::{rconst, rvar, Literal, LogicalRule, RAtom, RTerm, RuleBuilder};

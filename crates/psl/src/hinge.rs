//! Ground potentials and constraints of a hinge-loss MRF.
//!
//! A hinge-loss MRF's MAP state minimizes
//!
//! ```text
//!   Σ_j  w_j · max(0, ℓ_j(y))^{p_j}      (p_j ∈ {1, 2})
//! ```
//!
//! over `y ∈ [0,1]^n` subject to linear constraints `ℓ(y) ≤ 0` / `= 0`.
//! This is the exact MAP problem of PSL (Bach et al., JMLR 2017).

use crate::linear::LinExpr;

/// A weighted hinge-loss potential `w · max(0, expr)^p`.
#[derive(Clone, Debug)]
pub struct GroundPotential {
    /// The linear inner expression ℓ(y).
    pub expr: LinExpr,
    /// Non-negative weight.
    pub weight: f64,
    /// True for squared hinge (p = 2), false for linear (p = 1).
    pub squared: bool,
    /// Originating rule name (diagnostics).
    pub origin: String,
}

impl GroundPotential {
    /// Potential value under an assignment.
    pub fn value(&self, y: &[f64]) -> f64 {
        let v = self.expr.eval(y).max(0.0);
        if self.squared {
            self.weight * v * v
        } else {
            self.weight * v
        }
    }
}

/// The relation a hard constraint imposes on its expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConstraintKind {
    /// `expr ≤ 0`.
    LeqZero,
    /// `expr = 0`.
    EqZero,
}

/// A hard linear constraint.
#[derive(Clone, Debug)]
pub struct GroundConstraint {
    /// The linear expression.
    pub expr: LinExpr,
    /// Inequality or equality.
    pub kind: ConstraintKind,
    /// Originating rule name (diagnostics).
    pub origin: String,
}

impl GroundConstraint {
    /// Amount by which the constraint is violated under `y` (0 if
    /// satisfied).
    pub fn violation(&self, y: &[f64]) -> f64 {
        let v = self.expr.eval(y);
        match self.kind {
            ConstraintKind::LeqZero => v.max(0.0),
            ConstraintKind::EqZero => v.abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr() -> LinExpr {
        let mut e = LinExpr::constant(-0.5);
        e.add_term(0, 1.0);
        e
    }

    #[test]
    fn linear_potential_value() {
        let p = GroundPotential {
            expr: expr(),
            weight: 2.0,
            squared: false,
            origin: String::new(),
        };
        assert_eq!(p.value(&[0.25]), 0.0); // inactive hinge
        assert_eq!(p.value(&[1.0]), 1.0); // 2 * 0.5
    }

    #[test]
    fn squared_potential_value() {
        let p = GroundPotential {
            expr: expr(),
            weight: 2.0,
            squared: true,
            origin: String::new(),
        };
        assert_eq!(p.value(&[1.0]), 0.5); // 2 * 0.25
    }

    #[test]
    fn constraint_violations() {
        let c = GroundConstraint {
            expr: expr(),
            kind: ConstraintKind::LeqZero,
            origin: String::new(),
        };
        assert_eq!(c.violation(&[0.2]), 0.0);
        assert!((c.violation(&[1.0]) - 0.5).abs() < 1e-12);
        let e = GroundConstraint {
            expr: expr(),
            kind: ConstraintKind::EqZero,
            origin: String::new(),
        };
        assert!((e.violation(&[0.2]) - 0.3).abs() < 1e-12);
        assert_eq!(e.violation(&[0.5]), 0.0);
    }
}

//! Minimal aligned-markdown table writer (no external deps; experiment
//! output must be diffable and paste-able into EXPERIMENTS.md).

/// A simple table: headers plus string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as aligned GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(widths.iter()) {
                out.push(' ');
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', w - cell.len() + 1));
                out.push('|');
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.markdown());
    }
}

/// Format a float with 3 decimals (table convenience).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal (table convenience).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        let md = t.markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|---"));
        // All lines same width (alignment).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a"]).row(vec!["x".into(), "y".into()]);
    }
}

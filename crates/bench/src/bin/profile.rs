//! `cms-bench profile` — run the standard pipeline workload under the
//! flight recorder and print the per-label self-time profile.
//!
//! Usage:
//!
//! ```text
//! profile [--scale N] [--seed S] [--stall] [--profile-json <path>]
//!         [--trace <path>] [--journal <path>] [--top N]
//! ```
//!
//! The workload is the telemetry pipeline end to end: scenario
//! generation (chase), local-search selection through the warm
//! relaxation (ground → reground → warm solve per flip). The run is
//! forced to `CMS_OBS=journal` in-process so spans and events are
//! captured regardless of the environment; the `CMS_OBS_RING` capacity
//! knob applies as usual.
//!
//! Outputs:
//! * the profile table (inclusive vs self wall/CPU per span label,
//!   child breakdown) on stdout — `--top N` limits the rows;
//! * `--profile-json <path>` writes the profile as JSON for
//!   `obs_diff`;
//! * `--trace <path>` writes a Perfetto-loadable Chrome trace (spans on
//!   per-thread tracks, journal events as instants);
//! * `--journal <path>` writes the JSONL journal snapshot, drop-count
//!   header included.
//!
//! `--stall` arms the `SolverStall` fault once: the watchdog detects a
//! (forced) stall on the first solve and restarts it, inflating solve
//! self time — `obs_diff` against a clean run attributes the slowdown
//! to the `solve` phase, which is exactly the acceptance check for the
//! performance-attribution layer.

use cms_bench::workloads::seeded_scenarios;
use cms_ibench::{NoiseConfig, ScenarioConfig};
use cms_select::{evaluate_scenario, LocalSearch, ObjectiveWeights};
use std::process::ExitCode;

struct Args {
    scale: usize,
    seed: u64,
    stall: bool,
    profile_json: Option<String>,
    trace: Option<String>,
    journal: Option<String>,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        scale: 1,
        seed: 20170419,
        stall: false,
        profile_json: None,
        trace: None,
        journal: None,
        top: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--scale" => {
                out.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--stall" => out.stall = true,
            "--profile-json" => out.profile_json = Some(value("--profile-json")?),
            "--trace" => out.trace = Some(value("--trace")?),
            "--journal" => out.journal = Some(value("--journal")?),
            "--top" => out.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {what} to {path}: {e}"))?;
    println!("{what} written to {path}");
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Force full capture in-process; the ring capacity still follows
    // CMS_OBS_RING so an always-on configuration stays bounded.
    cms_obs::set_level_override(cms_obs::ObsLevel::Journal);
    println!(
        "profile: scale={}, seed={}, ring={:?}, stall={}",
        args.scale,
        args.seed,
        cms_obs::ring_capacity(),
        args.stall
    );

    let base = ScenarioConfig {
        noise: NoiseConfig::uniform(25.0),
        ..ScenarioConfig::all_primitives(args.scale)
    };
    let scenarios = seeded_scenarios(&base, &[args.seed]);

    if args.stall {
        cms_psl::fault::arm(cms_psl::Fault::SolverStall);
    }
    let outcome = evaluate_scenario(
        &scenarios[0],
        &LocalSearch::default(),
        &ObjectiveWeights::unweighted(),
    )
    .map_err(|e| format!("pipeline failed: {e}"))?;
    cms_psl::fault::disarm();
    println!(
        "selector {}: F = {:.3}, mapping F1 = {:.3} ({} evaluations)\n",
        outcome.selector,
        outcome.selection.objective,
        outcome.mapping.f1,
        outcome.selection.evaluations
    );

    let report = cms_obs::profile_report();
    print!("{}", report.render(args.top));

    if let Some(path) = &args.profile_json {
        write_file(path, &report.to_json(), "profile JSON")?;
    }
    if args.trace.is_some() || args.journal.is_some() {
        let snapshot = cms_obs::snapshot_journal();
        if let Some(path) = &args.trace {
            let trace = cms_obs::export_trace_json(
                &cms_obs::snapshot_spans(),
                &snapshot.records,
                &cms_obs::thread_track_names(),
            );
            write_file(path, &trace, "Perfetto trace")?;
        }
        if let Some(path) = &args.journal {
            write_file(path, &snapshot.to_jsonl(), "journal snapshot")?;
            if snapshot.header.events_dropped > 0 {
                println!(
                    "  (ring overwrote {} events this window; header records the loss)",
                    snapshot.header.events_dropped
                );
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("profile: {e}");
            ExitCode::FAILURE
        }
    }
}

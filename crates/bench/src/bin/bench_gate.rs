//! Bench regression gate: compare criterion-shim JSON output against
//! checked-in baseline snapshots and fail on regressions.
//!
//! The criterion shim prints one machine-readable line per benchmark:
//!
//! ```text
//! {"bench":"grounding/ground-plan/4","mean_ns":2540216.0,"min_ns":2324052.0}
//! ```
//!
//! and the committed `BENCH_*_baseline.json` files record the same keys
//! under `"benches"`, one per line. This gate parses both (no JSON crate
//! needed for our own fixed format), matches benchmarks by name, and fails
//! when the current **min** ns/iter exceeds `factor ×` the baseline
//! **mean** — min-vs-mean absorbs shared-runner noise while a genuine
//! `factor`-sized regression still trips.
//!
//! ```text
//! bench_gate --baseline BENCH_grounding_baseline.json --log grounding.log \
//!            --baseline BENCH_regrounding_baseline.json --log regrounding.log \
//!            [--factor 2.0]
//! ```
//!
//! Exit code 1 on any regression or on a baseline bench missing from the
//! logs (bit-rotted bench names should fail CI too).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Pull `"field":<number>` out of a JSON-ish line (our own fixed format).
fn field(line: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let start = line.find(&key)? + key.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull the quoted value after `"bench":` or a line-leading quoted key.
fn bench_name(line: &str) -> Option<String> {
    let start = if let Some(p) = line.find("\"bench\":\"") {
        p + "\"bench\":\"".len()
    } else {
        let t = line.trim_start();
        if !t.starts_with('"') {
            return None;
        }
        line.find('"')? + 1
    };
    let end = line[start..].find('"')? + start;
    let name = &line[start..end];
    // Baseline keys and log names both look like "group/id[/param]".
    name.contains('/').then(|| name.to_owned())
}

/// Parse `name -> (mean_ns, min_ns)` from either a bench log or a
/// baseline snapshot (both carry one bench per line).
fn parse(path: &str) -> BTreeMap<String, (f64, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let (Some(name), Some(mean)) = (bench_name(line), field(line, "mean_ns")) else {
            continue;
        };
        let min = field(line, "min_ns").unwrap_or(mean);
        out.insert(name, (mean, min));
    }
    out
}

fn main() -> ExitCode {
    let mut baselines: Vec<String> = Vec::new();
    let mut logs: Vec<String> = Vec::new();
    let mut factor = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baselines.push(args.next().expect("--baseline needs a path")),
            "--log" => logs.push(args.next().expect("--log needs a path")),
            "--factor" => {
                factor = args
                    .next()
                    .expect("--factor needs a value")
                    .parse()
                    .expect("--factor must be a number");
            }
            other => panic!("bench_gate: unknown argument {other:?}"),
        }
    }
    assert!(
        !baselines.is_empty() && !logs.is_empty(),
        "usage: bench_gate --baseline <json>... --log <bench output>... [--factor 2.0]"
    );

    let mut current: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for log in &logs {
        current.extend(parse(log));
    }
    let mut failures = 0usize;
    let mut checked = 0usize;
    for baseline_file in &baselines {
        for (name, (base_mean, _)) in parse(baseline_file) {
            let Some(&(cur_mean, cur_min)) = current.get(&name) else {
                println!("FAIL {name}: present in {baseline_file} but missing from bench logs");
                failures += 1;
                continue;
            };
            checked += 1;
            let ratio = cur_min / base_mean;
            let verdict = if cur_min > factor * base_mean {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "{verdict:4} {name}: baseline mean {base_mean:.0} ns, current mean {cur_mean:.0} / min {cur_min:.0} ns (min/baseline = {ratio:.2}x, limit {factor:.1}x)"
            );
        }
    }
    println!("bench_gate: {checked} benchmarks checked, {failures} regression(s)");
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

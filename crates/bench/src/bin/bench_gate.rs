//! Bench regression gate: compare criterion-shim JSON output against
//! checked-in baseline snapshots and fail on regressions.
//!
//! The criterion shim prints one machine-readable line per benchmark:
//!
//! ```text
//! {"bench":"grounding/ground-plan/4","mean_ns":2540216.0,"min_ns":2324052.0}
//! ```
//!
//! and the committed `BENCH_*_baseline.json` files record the same keys
//! under `"benches"`, one per line. This gate parses both (no JSON crate
//! needed for our own fixed format), matches benchmarks by name, and fails
//! when the current **min** ns/iter exceeds `factor ×` the baseline
//! **mean** — min-vs-mean absorbs shared-runner noise while a genuine
//! `factor`-sized regression still trips.
//!
//! ```text
//! bench_gate --baseline BENCH_grounding_baseline.json --log grounding.log \
//!            --baseline BENCH_regrounding_baseline.json --log regrounding.log \
//!            [--factor 2.0] [--ratio a/x/1:b/y/1<=1.05]...
//! ```
//!
//! `--ratio A:B<=L` additionally requires the *current* typical cost of
//! bench `A` to be at most `L ×` that of bench `B` — a same-run
//! comparison that survives machine changes, used to gate the
//! self-healing watchdog's and telemetry's clean-path overhead at a few
//! percent. "Typical cost" is `median_ns` where the log carries it
//! (emitted by the shim's `bench_interleaved`, whose round-robin
//! sampling makes the median ratio immune to both slow drift and
//! sustained noise windows), falling back to `mean_ns`. Minimums are
//! never used for ratios: they are an extreme statistic whose
//! run-to-run variance swamps a 2–5% bound.
//!
//! The report is a structured diff, not a panic trace:
//!
//! * `FAIL <name>: … regression` — current min exceeded the limit;
//! * `FAIL <name>: … missing from bench logs` — a baseline bench no log
//!   reported (bit-rotted bench names must fail CI too);
//! * `note <name>: … not in any baseline` — a logged bench no baseline
//!   covers (warning only: new benches land before their baseline does,
//!   and each log is checked against the union of all baselines);
//! * unreadable/malformed files and bad arguments report the offending
//!   path and exit non-zero (exit code 2 for usage errors, 1 for gate
//!   failures) instead of panicking.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

/// Pull `"field":<number>` out of a JSON-ish line (our own fixed format).
fn field(line: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let start = line.find(&key)? + key.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull the quoted value after `"bench":` or a line-leading quoted key.
fn bench_name(line: &str) -> Option<String> {
    let start = if let Some(p) = line.find("\"bench\":\"") {
        p + "\"bench\":\"".len()
    } else {
        let t = line.trim_start();
        if !t.starts_with('"') {
            return None;
        }
        line.find('"')? + 1
    };
    let end = line[start..].find('"')? + start;
    let name = &line[start..end];
    // Baseline keys and log names both look like "group/id[/param]".
    name.contains('/').then(|| name.to_owned())
}

/// One parsed benchmark line.
#[derive(Clone, Copy)]
struct Bench {
    mean: f64,
    min: f64,
    /// Only present in logs from interleaved measurement.
    median: Option<f64>,
}

/// Parse `name -> {mean_ns, min_ns, median_ns?}` from either a bench log
/// or a baseline snapshot (both carry one bench per line). An unreadable
/// file is an error; a readable file with no bench lines is reported too,
/// so a truncated log cannot silently pass the gate.
fn parse(path: &str) -> Result<BTreeMap<String, Bench>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let (Some(name), Some(mean)) = (bench_name(line), field(line, "mean_ns")) else {
            continue;
        };
        let min = field(line, "min_ns").unwrap_or(mean);
        let median = field(line, "median_ns");
        out.insert(name, Bench { mean, min, median });
    }
    if out.is_empty() {
        return Err(format!("no benchmark lines found in {path}"));
    }
    Ok(out)
}

struct Args {
    baselines: Vec<String>,
    logs: Vec<String>,
    factor: f64,
    /// Same-run bounds `(numerator, denominator, limit)` from `--ratio`.
    ratios: Vec<(String, String, f64)>,
}

/// Parse one `--ratio` spec of the form `A:B<=L`.
fn parse_ratio(spec: &str) -> Result<(String, String, f64), String> {
    let bad = || format!("--ratio must look like bench_a:bench_b<=1.05, got {spec:?}");
    let (names, limit) = spec.split_once("<=").ok_or_else(bad)?;
    let (a, b) = names.split_once(':').ok_or_else(bad)?;
    let limit: f64 = limit.parse().map_err(|_| bad())?;
    if a.is_empty() || b.is_empty() || !limit.is_finite() || limit <= 0.0 {
        return Err(bad());
    }
    Ok((a.to_owned(), b.to_owned(), limit))
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        baselines: Vec::new(),
        logs: Vec::new(),
        factor: 2.0,
        ratios: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => parsed
                .baselines
                .push(args.next().ok_or("--baseline needs a path")?),
            "--log" => parsed.logs.push(args.next().ok_or("--log needs a path")?),
            "--ratio" => parsed
                .ratios
                .push(parse_ratio(&args.next().ok_or("--ratio needs a spec")?)?),
            "--factor" => {
                let raw = args.next().ok_or("--factor needs a value")?;
                parsed.factor = raw
                    .parse()
                    .map_err(|_| format!("--factor must be a number, got {raw:?}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if parsed.baselines.is_empty() || parsed.logs.is_empty() {
        return Err(
            "usage: bench_gate --baseline <json>... --log <bench output>... [--factor 2.0]"
                .to_owned(),
        );
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<usize, String> {
    let mut current: BTreeMap<String, Bench> = BTreeMap::new();
    for log in &args.logs {
        current.extend(parse(log)?);
    }
    let mut failures = 0usize;
    let mut checked = 0usize;
    let mut covered: BTreeSet<String> = BTreeSet::new();
    for baseline_file in &args.baselines {
        for (name, base) in parse(baseline_file)? {
            let Some(&cur) = current.get(&name) else {
                println!("FAIL {name}: present in {baseline_file} but missing from bench logs");
                failures += 1;
                continue;
            };
            checked += 1;
            let base_mean = base.mean;
            let ratio = cur.min / base_mean;
            let verdict = if cur.min > args.factor * base_mean {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "{verdict:4} {name}: baseline mean {base_mean:.0} ns, current mean {:.0} / min {:.0} ns (min/baseline = {ratio:.2}x, limit {:.1}x)",
                cur.mean, cur.min, args.factor
            );
            covered.insert(name);
        }
    }
    for name in current.keys() {
        if !covered.contains(name) {
            println!("note {name}: in bench logs but not in any baseline (unguarded)");
        }
    }
    for (a, b, limit) in &args.ratios {
        let (Some(&bench_a), Some(&bench_b)) = (current.get(a), current.get(b)) else {
            let missing = if current.contains_key(a) { b } else { a };
            println!("FAIL ratio {a}:{b}: {missing} missing from bench logs");
            failures += 1;
            continue;
        };
        checked += 1;
        // Medians only compare against medians; a median-vs-mean ratio
        // would mix statistics with different biases.
        let (stat, cost_a, cost_b) = match (bench_a.median, bench_b.median) {
            (Some(ma), Some(mb)) => ("median", ma, mb),
            _ => ("mean", bench_a.mean, bench_b.mean),
        };
        let ratio = cost_a / cost_b;
        let verdict = if ratio > *limit {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:4} ratio {a}:{b}: {stat} {cost_a:.0} / {cost_b:.0} ns = {ratio:.3}x (limit {limit:.2}x)"
        );
    }
    println!("bench_gate: {checked} benchmarks checked, {failures} regression(s)");
    Ok(failures)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::from(2)
        }
    }
}

//! Validate an exported telemetry journal against the JSONL event schema
//! and the flight recorder's drop accounting.
//!
//! Usage: `journal_check <journal.jsonl> [--require <kind,kind,...>]`
//!
//! Every line must parse back into a typed [`cms_obs::EventRecord`] (the
//! parser is the exact inverse of the exporter, so this checks field
//! names, types, and per-variant shape — not just JSON well-formedness),
//! with one optional `journal-header` line carrying the ring's drop
//! counts. Checks:
//!
//! * sequence numbers strictly increasing in file order;
//! * **drop accounting is exact**: the gaps in `seq` (events missing
//!   before the first retained record relative to the header's
//!   `base_seq`, plus any holes between retained records) must equal the
//!   header's `events_dropped` — the census notes gaps exactly when
//!   drops are reported, never otherwise. Headerless exports are held to
//!   zero internal gaps (pre-ring journals were complete);
//! * every required event kind occurs at least once. The default
//!   requirement is the full pipeline:
//!   `chase,ground,reground,solve,degradation`.
//!
//! Exits 0 and prints a per-kind census (plus the drop accounting) on
//! success; prints the first offending line and exits 1 on failure.

use cms_obs::JournalSnapshot;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: journal_check <journal.jsonl> [--require <kind,kind,...>]");
        return ExitCode::FAILURE;
    };
    let mut required: Vec<String> = ["chase", "ground", "reground", "solve", "degradation"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    if args.next().as_deref() == Some("--require") {
        let kinds = args.next().unwrap_or_default();
        required = kinds.split(',').map(str::to_owned).collect();
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("journal_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let had_header = text.lines().any(|l| l.contains("\"journal-header\""));

    // The snapshot parser enforces the per-line schema (exact inverse of
    // the exporter) and at-most-one header; a headerless file gets a
    // synthetic zero-drop header anchored at the first record.
    let snapshot = match JournalSnapshot::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("journal_check: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let header = &snapshot.header;
    let records = &snapshot.records;

    let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut internal_gaps: u64 = 0;
    let mut last_seq: Option<u64> = None;
    for record in records {
        if let Some(prev) = last_seq {
            if record.seq <= prev {
                eprintln!(
                    "journal_check: {path}: seq {} not greater than previous {prev}",
                    record.seq
                );
                return ExitCode::FAILURE;
            }
            internal_gaps += record.seq - prev - 1;
        }
        last_seq = Some(record.seq);
        *census.entry(record.event.kind()).or_default() += 1;
    }

    // Drop accounting: gaps in seq exactly when drops are reported.
    if header.events != records.len() as u64 {
        eprintln!(
            "journal_check: {path}: header claims {} events but {} records follow",
            header.events,
            records.len()
        );
        return ExitCode::FAILURE;
    }
    let leading_gap = match records.first() {
        Some(first) if had_header => {
            if first.seq < header.base_seq {
                eprintln!(
                    "journal_check: {path}: first seq {} precedes header base_seq {}",
                    first.seq, header.base_seq
                );
                return ExitCode::FAILURE;
            }
            first.seq - header.base_seq
        }
        // Headerless exports (or an empty window) have no base to gap
        // against; only internal holes can indicate loss.
        _ => 0,
    };
    let gaps = leading_gap + internal_gaps;
    if gaps != header.events_dropped {
        eprintln!(
            "journal_check: {path}: seq census finds {gaps} missing events \
             ({leading_gap} before the first retained record, {internal_gaps} internal) \
             but the header reports events_dropped={}",
            header.events_dropped
        );
        return ExitCode::FAILURE;
    }

    let total: usize = census.values().sum();
    println!("journal_check: {path}: {total} events");
    if had_header {
        println!(
            "  header: base_seq={}, events_dropped={} (lifetime {}), ring_capacity={}",
            header.base_seq,
            header.events_dropped,
            header.events_dropped_total,
            header.ring_capacity
        );
    }
    for (kind, n) in &census {
        println!("  {kind}: {n}");
    }
    let missing: Vec<&str> = required
        .iter()
        .filter(|k| !census.contains_key(k.as_str()))
        .map(String::as_str)
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "journal_check: {path}: missing required event kinds: {}",
            missing.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

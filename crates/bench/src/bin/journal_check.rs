//! Validate an exported telemetry journal against the JSONL event schema.
//!
//! Usage: `journal_check <journal.jsonl> [--require <kind,kind,...>]`
//!
//! Every line must parse back into a typed [`cms_obs::EventRecord`] (the
//! parser is the exact inverse of the exporter, so this checks field
//! names, types, and per-variant shape — not just JSON well-formedness),
//! sequence numbers must be strictly increasing, and every required event
//! kind must occur at least once. The default requirement is the full
//! pipeline: `chase,ground,reground,solve,degradation`.
//!
//! Exits 0 and prints a per-kind census on success; prints the first
//! offending line and exits 1 on failure.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: journal_check <journal.jsonl> [--require <kind,kind,...>]");
        return ExitCode::FAILURE;
    };
    let mut required: Vec<String> = ["chase", "ground", "reground", "solve", "degradation"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    if args.next().as_deref() == Some("--require") {
        let kinds = args.next().unwrap_or_default();
        required = kinds.split(',').map(str::to_owned).collect();
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("journal_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match cms_obs::from_json_line(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "journal_check: {path}:{}: line does not match the event schema ({e}):\n  {line}",
                    lineno + 1
                );
                return ExitCode::FAILURE;
            }
        };
        if let Some(prev) = last_seq {
            if record.seq <= prev {
                eprintln!(
                    "journal_check: {path}:{}: seq {} not greater than previous {prev}",
                    lineno + 1,
                    record.seq
                );
                return ExitCode::FAILURE;
            }
        }
        last_seq = Some(record.seq);
        *census.entry(record.event.kind()).or_default() += 1;
    }

    let total: usize = census.values().sum();
    println!("journal_check: {path}: {total} events");
    for (kind, n) in &census {
        println!("  {kind}: {n}");
    }
    let missing: Vec<&str> = required
        .iter()
        .filter(|k| !census.contains_key(k.as_str()))
        .map(String::as_str)
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "journal_check: {path}: missing required event kinds: {}",
            missing.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

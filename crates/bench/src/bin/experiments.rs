//! Experiment reproduction harness — one subcommand per table/figure of
//! the evaluation (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded results).
//!
//! ```text
//! cargo run --release -p cms-bench --bin experiments -- <ex0|ex1|...|ex9|all>
//! ```

use cms_bench::tables::{f1, f3};
use cms_bench::{average_outcomes, seeded_scenarios, standard_selectors, Table};
use cms_data::Instance;
use cms_ibench::{generate, NoiseConfig, Primitive, ScenarioConfig};
use cms_select::reduction::{closed_form_objective, is_cover_within_bound};
use cms_select::{
    build_reduction, BranchBound, CoverageModel, Greedy, Objective, ObjectiveWeights,
    PslCollective, Selector, SetCoverInstance,
};
use cms_tgd::parse_tgd;
use std::time::Instant;

const SEEDS: [u64; 3] = [11, 22, 33];

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let start = Instant::now();
    match which.as_str() {
        "ex0" => ex0(),
        "ex1" => ex1(),
        "ex2" => ex2(),
        "ex3" => ex3(),
        "ex4" => ex4(),
        "ex5" => ex5(),
        "ex6" => ex6(),
        "ex7" => ex7(),
        "ex8" => ex8(),
        "ex9" => ex9(),
        "all" => {
            for f in [ex0 as fn(), ex1, ex2, ex3, ex4, ex5, ex6, ex7, ex8, ex9] {
                f();
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment {other:?}; use ex0..ex9 or all");
            std::process::exit(2);
        }
    }
    eprintln!("[{} finished in {:.1?}]", which, start.elapsed());
}

fn quality_table(title: &str, points: Vec<(String, ScenarioConfig)>) {
    println!("## {title}\n");
    let mut table = Table::new(&[
        "point", "selector", "|M|", "F", "gold-F", "map-P", "map-R", "map-F1", "data-F1", "ms",
    ]);
    for (label, config) in points {
        let scenarios = seeded_scenarios(&config, &SEEDS);
        let rows = average_outcomes(
            &scenarios,
            &standard_selectors(),
            &ObjectiveWeights::unweighted(),
            true,
        );
        for r in rows {
            table.row(vec![
                label.clone(),
                r.selector.clone(),
                format!("{:.1}", r.selected),
                f1(r.objective),
                f1(r.gold_objective),
                f3(r.map_p),
                f3(r.map_r),
                f3(r.map_f1),
                f3(r.data_f1),
                format!("{:.0}", r.wall.as_secs_f64() * 1e3),
            ]);
        }
    }
    table.print();
}

/// EX0 — the appendix §I objective table, regenerated exactly.
fn ex0() {
    println!("## EX0 — appendix §I objective table (running example)\n");
    let mut src = cms_data::Schema::new("s");
    src.add_relation("proj", &["name", "code", "firm"]);
    src.add_relation("team", &["pcode", "emp"]);
    let mut tgt = cms_data::Schema::new("t");
    tgt.add_relation("task", &["pname", "emp", "oid"]);
    tgt.add_relation("org", &["oid", "firm"]);
    let theta1 = parse_tgd("proj(x,c,f) & team(c,e) -> task(x,e,o)", &src, &tgt).unwrap();
    let theta3 = parse_tgd(
        "proj(x,c,f) & team(c,e) -> task(x,e,o) & org(o,f)",
        &src,
        &tgt,
    )
    .unwrap();
    let mut i = Instance::new();
    i.insert_ground(src.rel_id("proj").unwrap(), &["BigData", "7", "IBM"]);
    i.insert_ground(src.rel_id("proj").unwrap(), &["ML", "9", "SAP"]);
    i.insert_ground(src.rel_id("team").unwrap(), &["7", "Bob"]);
    i.insert_ground(src.rel_id("team").unwrap(), &["9", "Alice"]);
    let mut j = Instance::new();
    j.insert_ground(tgt.rel_id("task").unwrap(), &["ML", "Alice", "111"]);
    j.insert_ground(tgt.rel_id("org").unwrap(), &["111", "SAP"]);
    j.insert_ground(tgt.rel_id("task").unwrap(), &["Web", "Carol", "333"]);
    j.insert_ground(tgt.rel_id("org").unwrap(), &["444", "Oracle"]);
    let model = CoverageModel::build(&i, &j, &[theta1, theta3]);
    let obj = Objective::new(&model, ObjectiveWeights::unweighted());
    let mut table = Table::new(&["M", "Σ 1−explains", "Σ error", "size", "Eq.(9)"]);
    for (label, sel) in [
        ("{}", vec![]),
        ("{θ1}", vec![0]),
        ("{θ3}", vec![1]),
        ("{θ1,θ3}", vec![0usize, 1]),
    ] {
        let (u, e, s) = obj.components(&sel);
        table.row(vec![
            label.into(),
            f3(u),
            format!("{e:.0}"),
            format!("{s:.0}"),
            f3(obj.value(&sel)),
        ]);
    }
    table.print();
    println!("\npaper values: 4 | 7 1/3 | 8 | 12  — must match row totals above.");
}

/// EX1 — Table I: scenario-generation parameters and resulting sizes.
fn ex1() {
    println!("## EX1 — Table I: scenario generation parameters\n");
    let config = ScenarioConfig::all_primitives(1);
    let mut params = Table::new(&["parameter", "value"]);
    params.row(vec![
        "primitives".into(),
        "CP, ADD, DL, ADL, ME, VP, VNM (×1 each)".into(),
    ]);
    params.row(vec![
        "add/remove range".into(),
        format!("{:?}", config.attr_change_range),
    ]);
    params.row(vec![
        "source arity range".into(),
        format!("{:?}", config.source_arity),
    ]);
    params.row(vec![
        "rows per relation".into(),
        config.rows_per_relation.to_string(),
    ]);
    params.row(vec![
        "value pool per column".into(),
        config.value_pool.to_string(),
    ]);
    params.row(vec![
        "πCorresp / πErrors / πUnexplained".into(),
        "sweep knobs (EX2–EX4)".into(),
    ]);
    params.print();

    let mut sizes = Table::new(&[
        "πCorresp",
        "src rels",
        "tgt rels",
        "corrs(true+noise)",
        "|C|",
        "|MG|",
        "|I|",
        "|J|",
    ]);
    for pi in [0.0, 50.0, 100.0] {
        let s = generate(&ScenarioConfig {
            noise: NoiseConfig {
                pi_corresp: pi,
                ..NoiseConfig::clean()
            },
            ..config.clone()
        })
        .stats;
        sizes.row(vec![
            format!("{pi:.0}%"),
            s.source_rels.to_string(),
            s.target_rels.to_string(),
            format!("{}+{}", s.true_corrs, s.noise_corrs),
            s.candidates.to_string(),
            s.gold_size.to_string(),
            s.source_tuples.to_string(),
            s.target_tuples.to_string(),
        ]);
    }
    println!();
    sizes.print();
}

/// EX2 — quality vs metadata noise (πCorresp sweep).
fn ex2() {
    let points = [0.0, 25.0, 50.0, 75.0, 100.0]
        .into_iter()
        .map(|pi| {
            (
                format!("πCorresp={pi:.0}%"),
                ScenarioConfig {
                    noise: NoiseConfig {
                        pi_corresp: pi,
                        pi_errors: 10.0,
                        pi_unexplained: 10.0,
                    },
                    ..ScenarioConfig::all_primitives(1)
                },
            )
        })
        .collect();
    quality_table("EX2 — quality vs metadata noise (πCorresp)", points);
}

/// EX3 — quality vs data noise: deleted gold tuples (πErrors sweep).
fn ex3() {
    let points = [0.0, 10.0, 25.0, 50.0]
        .into_iter()
        .map(|pi| {
            (
                format!("πErrors={pi:.0}%"),
                ScenarioConfig {
                    noise: NoiseConfig {
                        pi_corresp: 25.0,
                        pi_errors: pi,
                        pi_unexplained: 10.0,
                    },
                    ..ScenarioConfig::all_primitives(1)
                },
            )
        })
        .collect();
    quality_table("EX3 — quality vs data noise (πErrors)", points);
}

/// EX4 — quality vs data noise: added unexplained tuples (πUnexplained).
fn ex4() {
    let points = [0.0, 10.0, 25.0, 50.0]
        .into_iter()
        .map(|pi| {
            (
                format!("πUnexpl={pi:.0}%"),
                ScenarioConfig {
                    noise: NoiseConfig {
                        pi_corresp: 25.0,
                        pi_errors: 10.0,
                        pi_unexplained: pi,
                    },
                    ..ScenarioConfig::all_primitives(1)
                },
            )
        })
        .collect();
    quality_table("EX4 — quality vs data noise (πUnexplained)", points);
}

/// EX5 — per-primitive breakdown.
fn ex5() {
    let points = Primitive::ALL
        .into_iter()
        .map(|p| {
            (
                p.to_string(),
                ScenarioConfig {
                    noise: NoiseConfig::uniform(25.0),
                    ..ScenarioConfig::single_primitive(p, 2)
                },
            )
        })
        .collect();
    quality_table(
        "EX5 — per-primitive quality breakdown (uniform 25% noise)",
        points,
    );
}

/// EX6 — scalability: runtime vs scenario size.
fn ex6() {
    println!("## EX6 — scalability (runtime vs #invocations)\n");
    let mut table = Table::new(&[
        "invocations",
        "|C|",
        "|J|",
        "ground terms",
        "admm iters",
        "psl ms",
        "greedy ms",
        "b&b ms",
        "b&b note",
    ]);
    for n in [1usize, 2, 4, 8] {
        let config = ScenarioConfig {
            noise: NoiseConfig {
                pi_corresp: 50.0,
                pi_errors: 10.0,
                pi_unexplained: 10.0,
            },
            rows_per_relation: 15,
            seed: 5,
            ..ScenarioConfig::all_primitives(n)
        };
        let scenario = generate(&config);
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let weights = ObjectiveWeights::unweighted();

        let psl = PslCollective::default();
        let t0 = Instant::now();
        let run = psl.infer(&model, &weights).expect("psl infers");
        let sel = psl.select(&model, &weights).expect("psl selects");
        let psl_ms = t0.elapsed().as_secs_f64() * 1e3;
        let _ = sel;

        let t0 = Instant::now();
        let _ = Greedy.select(&model, &weights).expect("greedy selects");
        let greedy_ms = t0.elapsed().as_secs_f64() * 1e3;

        let bb = BranchBound {
            node_budget: Some(2_000_000),
        };
        let t0 = Instant::now();
        let bb_sel = bb.select(&model, &weights).expect("bb selects");
        let bb_ms = t0.elapsed().as_secs_f64() * 1e3;

        table.row(vec![
            (7 * n).to_string(),
            scenario.candidates.len().to_string(),
            scenario.target.total_len().to_string(),
            run.ground_terms.to_string(),
            run.iterations.to_string(),
            format!("{psl_ms:.0}"),
            format!("{greedy_ms:.0}"),
            format!("{bb_ms:.0}"),
            if bb_sel.note.is_empty() {
                "exact".into()
            } else {
                "budget hit".into()
            },
        ]);
    }
    table.print();
}

/// EX7 — the SET COVER reduction: exactness of search and relaxation.
fn ex7() {
    println!("## EX7 — NP-hardness construction (appendix §III)\n");
    let mut table = Table::new(&[
        "|U|",
        "sets",
        "n",
        "F(exact)",
        "F(psl)",
        "F(greedy)",
        "threshold 2n",
        "exact covers",
        "psl covers",
    ]);
    let families: Vec<SetCoverInstance> = vec![
        SetCoverInstance {
            universe: 4,
            sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            bound: 2,
        },
        SetCoverInstance {
            universe: 6,
            sets: vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![4, 5],
                vec![5, 0],
            ],
            bound: 3,
        },
        // Greedy-adversarial family: a big set that is optimal plus decoys.
        SetCoverInstance {
            universe: 8,
            sets: vec![
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
                vec![0, 4],
                vec![1, 5],
                vec![2, 6],
                vec![3, 7],
            ],
            bound: 2,
        },
    ];
    for sc in &families {
        let red = build_reduction(sc);
        let model = CoverageModel::build(&red.source, &red.target, &red.candidates);
        let w = ObjectiveWeights::unweighted();
        let exact = BranchBound::default()
            .select(&model, &w)
            .expect("bb selects");
        let psl = PslCollective::default()
            .select(&model, &w)
            .expect("psl selects");
        let greedy = Greedy.select(&model, &w).expect("greedy selects");
        // Cross-check closed form.
        assert!((closed_form_objective(sc, &exact.selected) - exact.objective).abs() < 1e-9);
        table.row(vec![
            sc.universe.to_string(),
            sc.sets.len().to_string(),
            sc.bound.to_string(),
            f1(exact.objective),
            f1(psl.objective),
            f1(greedy.objective),
            f1(2.0 * sc.bound as f64),
            is_cover_within_bound(sc, &exact.selected).to_string(),
            is_cover_within_bound(sc, &psl.selected).to_string(),
        ]);
    }
    table.print();
}

/// EX8 — ablations: objective weights, hinge shape, rounding repair.
fn ex8() {
    println!("## EX8 — weight & rounding ablations (fixed noisy batch)\n");
    let base = ScenarioConfig {
        noise: NoiseConfig::uniform(25.0),
        ..ScenarioConfig::all_primitives(1)
    };
    let scenarios = seeded_scenarios(&base, &SEEDS);

    let mut table = Table::new(&["variant", "map-F1", "data-F1", "F", "gold-F"]);
    let mut run = |label: &str, selector: &dyn Selector, weights: ObjectiveWeights| {
        let rows = average_outcomes(&scenarios, &[], &weights, false);
        let _ = rows;
        let n = scenarios.len() as f64;
        let (mut f1m, mut f1d, mut fo, mut fg) = (0.0, 0.0, 0.0, 0.0);
        for s in &scenarios {
            let o = cms_select::evaluate_scenario(s, selector, &weights).expect("selector runs");
            f1m += o.mapping.f1 / n;
            f1d += o.data.f1 / n;
            fo += o.selection.objective / n;
            fg += o.gold_objective / n;
        }
        table.row(vec![
            label.into(),
            f3(f1m),
            f3(f1d),
            tables_f1(fo),
            tables_f1(fg),
        ]);
    };

    let unit = ObjectiveWeights::unweighted();
    run("w=(1,1,1) linear+repair", &PslCollective::default(), unit);
    run(
        "w=(1,1,1) linear, no repair",
        &PslCollective {
            greedy_repair: false,
            ..PslCollective::default()
        },
        unit,
    );
    run(
        "w=(1,1,1) squared hinges",
        &PslCollective {
            squared: true,
            ..PslCollective::default()
        },
        unit,
    );
    for (label, w) in [
        (
            "w1=2 (favour coverage)",
            ObjectiveWeights {
                w_explain: 2.0,
                w_error: 1.0,
                w_size: 1.0,
            },
        ),
        (
            "w2=2 (punish errors)",
            ObjectiveWeights {
                w_explain: 1.0,
                w_error: 2.0,
                w_size: 1.0,
            },
        ),
        (
            "w3=2 (punish size)",
            ObjectiveWeights {
                w_explain: 1.0,
                w_error: 1.0,
                w_size: 2.0,
            },
        ),
        (
            "w3=0.25 (cheap mappings)",
            ObjectiveWeights {
                w_explain: 1.0,
                w_error: 1.0,
                w_size: 0.25,
            },
        ),
    ] {
        run(label, &PslCollective::default(), w);
    }
    table.print();
}

fn tables_f1(x: f64) -> String {
    format!("{x:.1}")
}

/// EX9 — collective vs non-collective selection across a noise grid.
fn ex9() {
    println!("## EX9 — collective (PSL) vs independent per-candidate selection\n");
    let mut table = Table::new(&[
        "uniform noise",
        "independent map-F1",
        "psl map-F1",
        "Δ",
        "independent data-F1",
        "psl data-F1",
    ]);
    for pct in [0.0, 10.0, 25.0, 50.0] {
        let base = ScenarioConfig {
            noise: NoiseConfig::uniform(pct),
            ..ScenarioConfig::all_primitives(1)
        };
        let scenarios = seeded_scenarios(&base, &SEEDS);
        let w = ObjectiveWeights::unweighted();
        let n = scenarios.len() as f64;
        let (mut ind_m, mut psl_m, mut ind_d, mut psl_d) = (0.0, 0.0, 0.0, 0.0);
        for s in &scenarios {
            let oi = cms_select::evaluate_scenario(s, &cms_select::IndependentBaseline, &w)
                .expect("baseline runs");
            let op =
                cms_select::evaluate_scenario(s, &PslCollective::default(), &w).expect("psl runs");
            ind_m += oi.mapping.f1 / n;
            psl_m += op.mapping.f1 / n;
            ind_d += oi.data.f1 / n;
            psl_d += op.data.f1 / n;
        }
        table.row(vec![
            format!("{pct:.0}%"),
            f3(ind_m),
            f3(psl_m),
            f3(psl_m - ind_m),
            f3(ind_d),
            f3(psl_d),
        ]);
    }
    table.print();
}
